"""A simulated hierarchical UNIX-style file system.

The paper's name-resolution algorithm (§6.5) "resolves aliases, symbolic
links and retrieves a unique absolute path name for the file within the
local host".  To exercise that algorithm without touching the real OS,
this module models just enough of a 1987 UNIX file system: directories,
regular files with inode identity (so hard links alias content), and
symbolic links (absolute or relative, resolved mid-path with a loop
limit).

Paths are POSIX-style strings; all API paths are absolute.  The root
directory always exists.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Tuple, Union

from repro.errors import (
    FileNotFoundInVfsError,
    NamingError,
    SymlinkLoopError,
)

_SYMLINK_LIMIT = 40


@dataclass
class FileNode:
    """A regular file.  Hard links are multiple entries to one node."""

    inode: int
    content: bytes = b""


@dataclass
class SymlinkNode:
    """A symbolic link holding a target path (absolute or relative)."""

    target: str


@dataclass
class DirectoryNode:
    """A directory mapping entry names to child nodes."""

    entries: Dict[str, "Node"] = field(default_factory=dict)


Node = Union[FileNode, SymlinkNode, DirectoryNode]


def split_path(path: str) -> List[str]:
    """Absolute path -> component list.  Normalises empty and '.' parts."""
    if not path.startswith("/"):
        raise NamingError(f"path must be absolute: {path!r}")
    return [part for part in path.split("/") if part not in ("", ".")]


def join_path(components: Iterable[str]) -> str:
    return "/" + "/".join(components)


class VirtualFileSystem:
    """One host's file tree."""

    def __init__(self) -> None:
        self._root = DirectoryNode()
        self._inode_counter = itertools.count(2)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def mkdir(self, path: str) -> None:
        """Create a directory, making parents as needed (mkdir -p)."""
        node = self._root
        for part in split_path(path):
            child = node.entries.get(part)
            if child is None:
                child = DirectoryNode()
                node.entries[part] = child
            if not isinstance(child, DirectoryNode):
                raise NamingError(f"{path!r}: {part!r} exists and is not a directory")
            node = child

    def write_file(self, path: str, content: bytes) -> FileNode:
        """Create or overwrite a regular file, making parent directories."""
        components = split_path(path)
        if not components:
            raise NamingError("cannot write to '/'")
        parent = self._ensure_parent(components)
        name = components[-1]
        existing = parent.entries.get(name)
        if isinstance(existing, FileNode):
            existing.content = content
            return existing
        if isinstance(existing, DirectoryNode):
            raise NamingError(f"{path!r} is a directory")
        node = FileNode(inode=next(self._inode_counter), content=content)
        parent.entries[name] = node
        return node

    def hard_link(self, existing_path: str, new_path: str) -> None:
        """Alias ``new_path`` to the same file node as ``existing_path``."""
        node = self._lookup(existing_path, follow_terminal=True)
        if not isinstance(node, FileNode):
            raise NamingError(f"hard link source {existing_path!r} is not a file")
        components = split_path(new_path)
        if not components:
            raise NamingError("cannot hard link at '/'")
        parent = self._ensure_parent(components)
        if components[-1] in parent.entries:
            raise NamingError(f"{new_path!r} already exists")
        parent.entries[components[-1]] = node

    def symlink(self, target: str, link_path: str) -> None:
        """Create a symbolic link at ``link_path`` pointing to ``target``."""
        components = split_path(link_path)
        if not components:
            raise NamingError("cannot create symlink at '/'")
        parent = self._ensure_parent(components)
        if components[-1] in parent.entries:
            raise NamingError(f"{link_path!r} already exists")
        parent.entries[components[-1]] = SymlinkNode(target)

    def remove(self, path: str) -> None:
        """Unlink a file, symlink, or empty directory."""
        components = split_path(path)
        if not components:
            raise NamingError("cannot remove '/'")
        parent = self._walk_directories(components[:-1])
        name = components[-1]
        node = parent.entries.get(name)
        if node is None:
            raise FileNotFoundInVfsError(path)
        if isinstance(node, DirectoryNode) and node.entries:
            raise NamingError(f"directory {path!r} is not empty")
        del parent.entries[name]

    def _ensure_parent(self, components: List[str]) -> DirectoryNode:
        node = self._root
        for part in components[:-1]:
            child = node.entries.get(part)
            if child is None:
                child = DirectoryNode()
                node.entries[part] = child
            if not isinstance(child, DirectoryNode):
                raise NamingError(f"{part!r} is not a directory")
            node = child
        return node

    def _walk_directories(self, components: List[str]) -> DirectoryNode:
        node = self._root
        for part in components:
            child = node.entries.get(part)
            if not isinstance(child, DirectoryNode):
                raise FileNotFoundInVfsError(join_path(components))
            node = child
        return node

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def exists(self, path: str) -> bool:
        try:
            self._lookup(path, follow_terminal=True)
            return True
        except NamingError:
            return False

    def read_file(self, path: str) -> bytes:
        node = self._lookup(path, follow_terminal=True)
        if not isinstance(node, FileNode):
            raise NamingError(f"{path!r} is not a regular file")
        return node.content

    def inode_of(self, path: str) -> int:
        node = self._lookup(path, follow_terminal=True)
        if not isinstance(node, FileNode):
            raise NamingError(f"{path!r} is not a regular file")
        return node.inode

    def list_directory(self, path: str) -> List[str]:
        node = self._lookup(path, follow_terminal=True) if path != "/" else self._root
        if not isinstance(node, DirectoryNode):
            raise NamingError(f"{path!r} is not a directory")
        return sorted(node.entries)

    def _lookup(self, path: str, follow_terminal: bool) -> Node:
        resolved, remainder = self.realpath_until(
            path, frozenset(), follow_terminal=follow_terminal
        )
        if remainder:
            raise FileNotFoundInVfsError(path)
        return self._node_at(resolved)

    def _node_at(self, canonical_path: str) -> Node:
        node: Node = self._root
        for part in split_path(canonical_path):
            if not isinstance(node, DirectoryNode):
                raise FileNotFoundInVfsError(canonical_path)
            child = node.entries.get(part)
            if child is None:
                raise FileNotFoundInVfsError(canonical_path)
            node = child
        return node

    # ------------------------------------------------------------------
    # canonicalisation (the heart of name resolution)
    # ------------------------------------------------------------------
    def realpath(self, path: str, follow_terminal: bool = True) -> str:
        """Fully resolve ``path``: symlinks followed, ``..`` collapsed."""
        resolved, remainder = self.realpath_until(
            path, frozenset(), follow_terminal=follow_terminal
        )
        if remainder:
            raise FileNotFoundInVfsError(path)
        return resolved

    def realpath_until(
        self,
        path: str,
        boundaries: FrozenSet[str],
        follow_terminal: bool = True,
    ) -> Tuple[str, List[str]]:
        """Resolve ``path`` until done or a boundary prefix is reached.

        ``boundaries`` is a set of canonical directory paths (NFS mount
        points) at which resolution must stop because the subtree below
        them lives on another host.  Returns ``(canonical_path,
        unresolved_components)``; the second element is non-empty only if
        a boundary was hit, in which case ``canonical_path`` is the
        boundary itself.

        Raises :class:`SymlinkLoopError` after 40 link traversals and
        :class:`FileNotFoundInVfsError` if a non-terminal component is
        missing.
        """
        pending: List[str] = split_path(path)
        resolved: List[str] = []
        node: Node = self._root
        hops = 0
        while pending:
            current = join_path(resolved)
            if current in boundaries:
                return current, pending
            part = pending.pop(0)
            if part == "..":
                if resolved:
                    resolved.pop()
                node = self._node_at(join_path(resolved))
                continue
            if not isinstance(node, DirectoryNode):
                raise FileNotFoundInVfsError(path)
            child = node.entries.get(part)
            if child is None:
                raise FileNotFoundInVfsError(path)
            if isinstance(child, SymlinkNode):
                is_terminal = not pending
                if is_terminal and not follow_terminal:
                    resolved.append(part)
                    break
                hops += 1
                if hops > _SYMLINK_LIMIT:
                    raise SymlinkLoopError(path, _SYMLINK_LIMIT)
                if child.target.startswith("/"):
                    resolved = []
                    node = self._root
                    pending = split_path(child.target) + pending
                else:
                    target_parts = [
                        p for p in child.target.split("/") if p not in ("", ".")
                    ]
                    pending = target_parts + pending
                    node = self._node_at(join_path(resolved))
                continue
            resolved.append(part)
            node = child
        final = join_path(resolved)
        if final in boundaries and not pending:
            return final, []
        return final, pending
