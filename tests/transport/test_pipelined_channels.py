"""request_many across the three carriers: ordering, faults, timing."""

import pytest

from repro.simnet.clock import SimulatedClock
from repro.simnet.link import CYPRESS_9600
from repro.transport.base import LoopbackChannel
from repro.transport.flaky import FailNextChannel
from repro.transport.sim import SimChannel
from repro.transport.tcp import TcpChannel, TcpChannelServer
from repro.errors import TransportClosedError


def tag_handler(payload: bytes) -> bytes:
    return b"reply:" + payload


class TestBaseRequestMany:
    def test_replies_in_request_order(self):
        channel = LoopbackChannel(tag_handler)
        replies = channel.request_many([b"a", b"b", b"c"])
        assert replies == [b"reply:a", b"reply:b", b"reply:c"]

    def test_empty_batch(self):
        channel = LoopbackChannel(tag_handler)
        assert channel.request_many([]) == []

    def test_failed_item_is_none_neighbours_survive(self):
        channel = FailNextChannel(LoopbackChannel(tag_handler))
        channel.schedule_failure(2)
        replies = channel.request_many([b"a", b"b", b"c"])
        assert replies == [b"reply:a", None, b"reply:c"]

    def test_closed_channel_raises(self):
        channel = LoopbackChannel(tag_handler)
        channel.close()
        with pytest.raises(TransportClosedError):
            channel.request_many([b"a"])

    def test_stats_skip_failed_items(self):
        channel = FailNextChannel(LoopbackChannel(tag_handler))
        channel.schedule_failure(1)
        channel.request_many([b"aaaa", b"bb"])
        # Only the delivered item is accounted at this layer.
        assert channel.stats.request_bytes == 2
        assert channel.stats.reply_bytes == len(b"reply:bb")


class TestSimChannelPipelining:
    # Small frames: per-message latency, not serialisation, dominates —
    # the regime batching is built for.
    PAYLOADS = [b"x" * 8 for _ in range(8)]

    def elapsed_sequential(self):
        clock = SimulatedClock()
        channel = SimChannel.over_link(tag_handler, CYPRESS_9600, clock)
        for payload in self.PAYLOADS:
            channel.request(payload)
        return clock.now()

    def elapsed_pipelined(self):
        clock = SimulatedClock()
        channel = SimChannel.over_link(tag_handler, CYPRESS_9600, clock)
        replies = channel.request_many(self.PAYLOADS)
        assert replies == [tag_handler(p) for p in self.PAYLOADS]
        return clock.now()

    def test_pipelining_beats_sequential_on_a_slow_link(self):
        sequential = self.elapsed_sequential()
        pipelined = self.elapsed_pipelined()
        # Sequential pays uplink + downlink per request, back to back.
        # Pipelined overlaps the two directions (the wire itself is
        # store-and-forward, so each frame still pays its own transfer),
        # approaching a 2x win as the batch grows.
        assert pipelined < sequential * 0.65

    def test_pipelined_timing_is_deterministic(self):
        assert self.elapsed_pipelined() == self.elapsed_pipelined()

    def test_clock_finishes_at_last_reply(self):
        clock = SimulatedClock()
        channel = SimChannel.over_link(tag_handler, CYPRESS_9600, clock)
        channel.request_many([b"a", b"b"])
        single = SimulatedClock()
        one = SimChannel.over_link(tag_handler, CYPRESS_9600, single)
        one.request(b"a")
        # Two pipelined requests cost strictly more than one, strictly
        # less than two sequential ones.
        assert single.now() < clock.now() < 2 * single.now()


class TestTcpPipelining:
    def test_ordered_replies_over_one_socket(self):
        server = TcpChannelServer(tag_handler, port=0)
        try:
            channel = TcpChannel("127.0.0.1", server.port, timeout=10.0)
            try:
                payloads = [f"msg-{i}".encode() for i in range(10)]
                replies = channel.request_many(payloads)
                assert replies == [tag_handler(p) for p in payloads]
                # The connection is still good for plain requests.
                assert channel.request(b"after") == b"reply:after"
            finally:
                channel.close()
        finally:
            server.close()

    def test_mid_batch_receive_failure_redials_no_stale_replies(self):
        # Replies carry no rid: correlation is positional.  If a receive
        # fails mid-batch, the server's replies for the remaining items
        # are still in flight on the old connection — reusing it would
        # hand those stale frames to the NEXT requests (silent reply
        # mis-attribution).  The channel must re-dial instead.
        import time

        def slow_on_request(payload: bytes) -> bytes:
            if payload == b"slow":
                time.sleep(1.5)
            return b"reply:" + payload

        server = TcpChannelServer(slow_on_request, port=0)
        try:
            channel = TcpChannel("127.0.0.1", server.port, timeout=0.4)
            try:
                channel._timeout = 5.0  # only the first dial is impatient
                replies = channel.request_many([b"a", b"slow", b"c"])
                # The timed-out tail comes back as replayable Nones...
                assert replies == [b"reply:a", None, None]
                # ...and the connection was replaced, so the next request
                # gets ITS OWN reply, not the old batch's buffered
                # b"reply:slow".
                assert channel.reconnects == 1
                assert channel.request(b"after") == b"reply:after"
            finally:
                channel.close()
        finally:
            server.close()
