"""End-to-end trace ids: one ``tid`` joins client, server, and job spans."""

from __future__ import annotations

import time

import pytest

from repro.core.protocol import Envelope
from repro.core.service import SimulatedDeployment, tcp_pair
from repro.resilience.session import ResilientSession
from repro.simnet.clock import SimulatedClock
from repro.simnet.link import CYPRESS_9600
from repro.transport.base import LoopbackChannel


def test_empty_tid_is_omitted_from_the_wire():
    bare = Envelope(rid="r-1", body=b"payload")
    assert bare.to_wire() == Envelope(rid="r-1", body=b"payload", tid="").to_wire()
    traced = Envelope(rid="r-1", body=b"payload", tid="t-1")
    assert traced.to_wire() != bare.to_wire()
    assert len(bare.to_wire()) < len(traced.to_wire())


def test_trace_ids_default_off_under_simulated_clock():
    echo = LoopbackChannel(lambda payload: payload)
    simulated = ResilientSession("c", echo, clock=SimulatedClock())
    assert simulated.trace_ids is False
    wall = ResilientSession("c", LoopbackChannel(lambda p: p))
    assert wall.trace_ids is True


def test_simulated_benchmarks_carry_no_trace_bytes():
    deployment = SimulatedDeployment.build(CYPRESS_9600)
    deployment.client.write_file("/data.dat", b"x" * 2048)
    session = deployment.client._sessions[
        deployment.client.environment.default_host
    ]
    assert session.trace_ids is False
    for trace in deployment.server.traces.snapshot():
        assert trace.trace_id == ""


def _wait_for(client, job_id, timeout=15.0):
    deadline = time.monotonic() + timeout
    while True:
        bundle = client.fetch_output(job_id)
        if bundle is not None:
            return bundle
        if time.monotonic() > deadline:
            pytest.fail(f"job {job_id} never finished")
        time.sleep(0.05)


def test_one_trace_id_spans_client_server_and_async_job_over_tcp():
    with tcp_pair(workers=2) as deployment:
        client = deployment.client
        client.write_file("/data.dat", b"hello shadow\n" * 64)
        job = client.submit("wc /data.dat", ["/data.dat"])
        _wait_for(client, job)

        client_submits = [
            trace
            for trace in client.traces.snapshot()
            if trace.kind == "submit"
        ]
        assert client_submits, "client recorded no submit span"
        tid = client_submits[-1].trace_id
        assert tid.startswith("t-")
        phase_names = [name for name, _ in client_submits[-1].phases]
        assert "encode" in phase_names
        assert any(name.startswith("attempt-") for name in phase_names)

        server_traces = [
            trace
            for trace in deployment.server.traces.snapshot()
            if trace.trace_id == tid
        ]
        kinds = {trace.kind for trace in server_traces}
        assert kinds == {"submit", "job"}, (
            f"expected request + async job spans for {tid}, got {kinds}"
        )
        submit_span = next(t for t in server_traces if t.kind == "submit")
        submit_phases = [name for name, _ in submit_span.phases]
        for expected in ("decode", "session-wait", "dispatch"):
            assert expected in submit_phases
        job_span = next(t for t in server_traces if t.kind == "job")
        assert "execute" in [name for name, _ in job_span.phases]


def test_every_tcp_request_gets_its_own_trace_id():
    with tcp_pair() as deployment:
        client = deployment.client
        client.write_file("/a.txt", b"one")
        client.write_file("/b.txt", b"two")
        ids = [
            trace.trace_id
            for trace in deployment.server.traces.snapshot()
            if trace.trace_id
        ]
        assert ids, "no traced requests on the server"
        assert len(set(ids)) == len(ids)
