"""Tests for file versions and version chains."""

import pytest

from repro.errors import VersioningError, VersionNotFoundError
from repro.versioning.version import FileVersion, VersionChain


@pytest.fixture
def chain():
    return VersionChain("local/ws:/data/file.dat")


class TestGrowth:
    def test_versions_number_from_one(self, chain):
        assert chain.add(b"v1").number == 1
        assert chain.add(b"v2").number == 2

    def test_latest_number_tracks_history(self, chain):
        chain.add(b"a")
        chain.add(b"b")
        assert chain.latest_number == 2

    def test_empty_chain_latest_number_zero(self, chain):
        assert chain.latest_number == 0

    def test_latest_on_empty_raises(self, chain):
        with pytest.raises(VersionNotFoundError):
            chain.latest()

    def test_checksum_computed(self, chain):
        version = chain.add(b"content")
        assert len(version.checksum) == 16

    def test_timestamp_recorded(self, chain):
        assert chain.add(b"x", timestamp=42.0).created_at == 42.0

    def test_versions_are_immutable(self, chain):
        version = chain.add(b"x")
        with pytest.raises(AttributeError):
            version.content = b"y"

    def test_size_property(self, chain):
        assert chain.add(b"12345").size == 5


class TestRetention:
    def test_limit_drops_oldest(self):
        chain = VersionChain("f", max_retained=2)
        chain.add(b"1")
        chain.add(b"2")
        chain.add(b"3")
        assert chain.retained_numbers == [2, 3]

    def test_limit_of_one_keeps_latest_only(self):
        chain = VersionChain("f", max_retained=1)
        for index in range(5):
            chain.add(b"v%d" % index)
        assert chain.retained_numbers == [5]

    def test_invalid_limit_rejected(self):
        with pytest.raises(VersioningError):
            VersionChain("f", max_retained=0)

    def test_numbers_keep_increasing_after_pruning(self):
        chain = VersionChain("f", max_retained=1)
        chain.add(b"a")
        chain.add(b"b")
        assert chain.add(b"c").number == 3

    def test_retained_is_contiguous_suffix(self):
        chain = VersionChain("f", max_retained=3)
        for index in range(7):
            chain.add(b"v%d" % index)
        numbers = chain.retained_numbers
        assert numbers == list(range(numbers[0], numbers[0] + len(numbers)))
        assert numbers[-1] == chain.latest_number


class TestAcknowledgementPruning:
    def test_prune_below_acknowledged(self):
        chain = VersionChain("f")
        for index in range(5):
            chain.add(b"v%d" % index)
        dropped = chain.prune_older_than(4)
        assert dropped == 3
        assert chain.retained_numbers == [4, 5]

    def test_latest_never_pruned(self):
        chain = VersionChain("f")
        chain.add(b"only")
        assert chain.prune_older_than(99) == 0
        assert chain.retained_numbers == [1]

    def test_prune_is_idempotent(self):
        chain = VersionChain("f")
        chain.add(b"a")
        chain.add(b"b")
        chain.prune_older_than(2)
        assert chain.prune_older_than(2) == 0


class TestQueries:
    def test_get_missing_raises_with_context(self):
        chain = VersionChain("file-x")
        chain.add(b"a")
        with pytest.raises(VersionNotFoundError) as excinfo:
            chain.get(7)
        assert excinfo.value.name == "file-x"
        assert excinfo.value.version == 7

    def test_retains(self):
        chain = VersionChain("f", max_retained=1)
        chain.add(b"a")
        chain.add(b"b")
        assert not chain.retains(1)
        assert chain.retains(2)

    def test_retained_bytes(self):
        chain = VersionChain("f")
        chain.add(b"12")
        chain.add(b"3456")
        assert chain.retained_bytes == 6

    def test_len(self):
        chain = VersionChain("f", max_retained=2)
        for index in range(4):
            chain.add(b"x")
        assert len(chain) == 2
