"""Job requests and job command files (§6.2).

"The submit command accepts a list of file names, the name of a job
command file and a few optional arguments.  The job command file contains
one or more lines where each line specifies a command (along with its
arguments) to be executed at the remote host."

A :class:`JobCommandFile` is that script; a :class:`JobRequest` is the
full submission: the script, the data files it needs, and the optional
arguments (output/error file names, target host, and — future work §8.3 —
a different *delivery* host for the output).
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import JobCommandError


@dataclass(frozen=True)
class JobCommand:
    """One line of a job command file: a program and its arguments."""

    program: str
    arguments: Tuple[str, ...] = ()

    def render(self) -> str:
        return " ".join([self.program, *self.arguments])


@dataclass(frozen=True)
class JobCommandFile:
    """An ordered list of commands to execute at the remote host."""

    commands: Tuple[JobCommand, ...]

    def __post_init__(self) -> None:
        if not self.commands:
            raise JobCommandError("job command file contains no commands")

    @classmethod
    def parse(cls, text: str) -> "JobCommandFile":
        """Parse script text: one command per line, '#' comments allowed."""
        commands: List[JobCommand] = []
        for line_number, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                parts = shlex.split(line)
            except ValueError as exc:
                raise JobCommandError(
                    f"line {line_number}: unparsable command {raw!r}: {exc}"
                ) from exc
            if not parts:
                continue
            commands.append(JobCommand(parts[0], tuple(parts[1:])))
        if not commands:
            raise JobCommandError("job command file contains no commands")
        return cls(tuple(commands))

    def render(self) -> str:
        return "\n".join(command.render() for command in self.commands) + "\n"

    def __len__(self) -> int:
        return len(self.commands)


@dataclass(frozen=True)
class JobRequest:
    """A remote-execution request as the user's submit command builds it.

    ``data_files`` are the *local* names of the files the commands need;
    the client resolves them to global names before anything crosses the
    wire.  ``output_file``/``error_file`` name where results land at the
    client; ``deliver_to_host`` routes output to a third host instead
    (§8.3: "routing the output to different hosts").
    """

    command_file: JobCommandFile
    data_files: Tuple[str, ...] = ()
    output_file: Optional[str] = None
    error_file: Optional[str] = None
    target_host: Optional[str] = None
    deliver_to_host: Optional[str] = None

    def __post_init__(self) -> None:
        seen = set()
        for name in self.data_files:
            if name in seen:
                raise JobCommandError(f"duplicate data file {name!r}")
            seen.add(name)

    @classmethod
    def build(
        cls,
        script: str,
        data_files: Sequence[str] = (),
        output_file: Optional[str] = None,
        error_file: Optional[str] = None,
        target_host: Optional[str] = None,
        deliver_to_host: Optional[str] = None,
    ) -> "JobRequest":
        """Parse ``script`` and assemble a request in one step."""
        return cls(
            command_file=JobCommandFile.parse(script),
            data_files=tuple(data_files),
            output_file=output_file,
            error_file=error_file,
            target_host=target_host,
            deliver_to_host=deliver_to_host,
        )
