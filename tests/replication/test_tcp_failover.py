"""Warm-standby failover over real TCP sockets, driven end to end.

The loopback matrix proves the record-boundary invariants; these tests
prove the *deployment shape*: a standby announcing itself over the wire
(`ReplicateHello` dial-back), a client holding a two-endpoint dial
list, the operator CLI (`shadow promote`, `shadow replication-status`),
and randomized journal-offset kills with byte-exact convergence on the
promoted standby.
"""

import os
import random

import pytest

from repro import cli
from repro.api import ShadowClient
from repro.core.protocol import Ok, ReplicateHello
from repro.core.server import ShadowServer
from repro.replication.manager import ReplicationManager
from repro.resilience.policy import RetryPolicy
from repro.resilience.session import RawSession, ResilienceConfig
from repro.transport.tcp import TcpChannel, TcpChannelServer
from repro.workload.files import make_text_file

FAST = ResilienceConfig(
    retry=RetryPolicy(max_attempts=8, base_delay=0.01, jitter=0.0)
)

#: Redial backoff tuned for tests: bounded, effectively instant.
QUICK_REDIAL = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


class TcpPair:
    """Primary + standby shadow servers, each behind a real listener."""

    def __init__(self, primary_dir, standby_dir):
        self.primary = ShadowServer(journal_dir=str(primary_dir))
        self.primary_repl = ReplicationManager(self.primary, role="primary")
        self.primary_listener = TcpChannelServer(self.primary.handle)
        self.standby = ShadowServer(journal_dir=str(standby_dir))
        self.standby_repl = ReplicationManager(self.standby, role="standby")
        self.standby_listener = TcpChannelServer(self.standby.handle)
        self.primary_down = False

    def announce(self):
        """The standby's hello: primary dials back and attaches a feed."""
        channel = TcpChannel(
            "127.0.0.1",
            self.primary_listener.port,
            redial_policy=QUICK_REDIAL,
        )
        try:
            reply = RawSession(channel).send(
                ReplicateHello(
                    sender=self.standby.name,
                    host="127.0.0.1",
                    port=self.standby_listener.port,
                    epoch=self.standby.epoch,
                )
            )
        finally:
            channel.close()
        assert isinstance(reply, Ok), f"attach failed: {reply!r}"
        return reply

    def dial_list(self):
        return (
            f"127.0.0.1:{self.primary_listener.port},"
            f"127.0.0.1:{self.standby_listener.port}"
        )

    def kill_primary(self):
        """kill -9 equivalent: sockets torn down, journal abandoned."""
        self.primary_down = True
        self.primary_listener.close(drain_seconds=0.0)
        self.primary.durability.abandon()
        self.primary.pipeline.close()

    def close(self):
        if not self.primary_down:
            self.primary_listener.close(drain_seconds=0.0)
        self.standby_listener.close(drain_seconds=0.0)
        self.standby.close()


def standby_content(pair, client, path):
    key = str(client.core.workspace.resolve(path))
    entry = pair.standby.cache.peek_entry(key)
    return None if entry is None else entry.content


def test_tcp_attach_promote_and_failover(tmp_path, capsys):
    pair = TcpPair(tmp_path / "p", tmp_path / "s")
    try:
        pair.announce()
        with ShadowClient.connect(
            transport=pair.dial_list(), client_id="alice@ws", resilience=FAST
        ) as client:
            payload_a = make_text_file(2_000, seed=1)
            client.edit("/data/a.dat", payload_a)
            # Shipped over the feed before the ack left the primary.
            assert standby_content(pair, client, "/data/a.dat") == payload_a

            # Operator view over the wire, pre-failover.
            code = cli.main(
                [
                    "replication-status",
                    f"127.0.0.1:{pair.standby_listener.port}",
                ]
            )
            out = capsys.readouterr().out
            assert code == 0
            assert "role = standby" in out

            pair.kill_primary()
            code = cli.main(
                ["promote", f"127.0.0.1:{pair.standby_listener.port}"]
            )
            out = capsys.readouterr().out
            assert code == 0
            assert "primary at epoch 2" in out

            # Same client, same dial list: the next edit fails over.
            payload_b = make_text_file(2_000, seed=2)
            client.edit("/data/b.dat", payload_b)
            assert standby_content(pair, client, "/data/b.dat") == payload_b

            code = cli.main(
                [
                    "replication-status",
                    f"127.0.0.1:{pair.standby_listener.port}",
                ]
            )
            out = capsys.readouterr().out
            assert code == 0
            assert "role = primary" in out
            assert "epoch = 2" in out
    finally:
        pair.close()


def test_tcp_randomized_journal_offset_kills(tmp_path):
    """Seeded random kill offsets over real sockets, three rounds.

    Each round writes ``TOTAL`` files, kills the primary cold after a
    random number of them (so the journal dies at a random record
    offset), promotes, and finishes the cycle on the standby.  Every
    acknowledged byte must be on the standby, exactly once, and the
    client's resync must find nothing to repair.
    """
    rng = random.Random(int(os.environ.get("PYTHONHASHSEED", "722")))
    total = 8
    paths = [f"/data/file{index}.dat" for index in range(total)]
    for round_index in range(3):
        kill_after = rng.randint(1, total - 1)
        pair = TcpPair(
            tmp_path / f"p{round_index}", tmp_path / f"s{round_index}"
        )
        try:
            pair.announce()
            with ShadowClient.connect(
                transport=pair.dial_list(),
                client_id="alice@ws",
                resilience=FAST,
            ) as client:
                contents = {
                    path: make_text_file(
                        2_000, seed=round_index * 100 + index
                    )
                    for index, path in enumerate(paths)
                }
                for path in paths[:kill_after]:
                    client.edit(path, contents[path])
                pair.kill_primary()
                pair.standby_repl.promote()
                for path in paths[kill_after:]:
                    client.edit(path, contents[path])

                # Byte-exact convergence on the survivor.
                for path in paths:
                    assert (
                        standby_content(pair, client, path) == contents[path]
                    ), f"round {round_index}: {path} diverged"
                report = client.core.reconnect("supercomputer")
                assert report["full"] == 0
                assert report["delta"] == 0
        finally:
            pair.close()


def test_dial_list_accepts_sequences_and_servers(tmp_path):
    """The api facade builds a failover channel from a mixed dial list."""
    server = ShadowServer(journal_dir=str(tmp_path / "j"))
    listener = TcpChannelServer(server.handle)
    try:
        with ShadowClient.connect(
            transport=[f"127.0.0.1:{listener.port}", server],
            client_id="bob@ws",
            resilience=FAST,
        ) as client:
            payload = make_text_file(1_000, seed=9)
            client.edit("/data/x.dat", payload)
            key = str(client.core.workspace.resolve("/data/x.dat"))
            assert server.cache.peek_entry(key).content == payload
    finally:
        listener.close(drain_seconds=0.0)
        server.close()
