"""Length-prefixed, CRC-protected message framing for stream transports.

The prototype ran its protocol over TCP (§7); TCP delivers a byte stream,
so message boundaries need framing.  Each frame is an 8-byte header —
4-byte big-endian payload length, then the CRC32 of the payload — followed
by the payload.  The checksum rejects garbled bytes *at the transport
layer* with :class:`~repro.errors.FrameCorruptionError`, instead of
letting corruption surface as confusing codec or protocol errors
downstream; with idempotent requests, a caller can simply retry.

:class:`FrameDecoder` is an incremental decoder for socket readers that
receive arbitrary chunks.  Its delivery contract is **pop-only**:
:meth:`FrameDecoder.feed` absorbs bytes and reports how many frames it
completed, and :meth:`FrameDecoder.pop` hands each completed frame out
exactly once.  (An earlier revision both *returned* completed frames
from ``feed`` and queued them for ``pop``, so a caller mixing the APIs
processed every frame twice.)

The decoder's buffering is built for the event-loop hot path: bytes
accumulate in one grow-only buffer and frames are *located*, not copied
— the header is parsed in place with ``struct.unpack_from`` and the CRC
runs over a :class:`memoryview` slice, so completing a frame allocates
nothing.  The only copy is the single ``bytes`` materialisation when
:meth:`FrameDecoder.pop` hands the payload to the codec (which needs an
owned buffer anyway); :meth:`FrameDecoder.popview` skips even that for
callers that can consume a view.  Consumed prefixes are reclaimed by
*amortised* compaction — the buffer slides only once
``compact_threshold`` bytes are dead — so a peer dribbling one byte per
segment costs O(bytes), not the quadratic re-copying a
delete-per-frame scheme pays.

:class:`FrameScanner` is the tolerant batch-mode sibling: it walks a
fully materialised buffer of concatenated frames (the durability
journal's on-disk format) and *reports* damage instead of raising, so a
torn tail ends the scan cleanly.
"""

from __future__ import annotations

import struct
import zlib
from collections import deque
from typing import Deque, Iterator, Optional, Tuple

from repro.errors import FrameCorruptionError, TransportError
from repro.transport.base import RequestChannel

#: 4-byte payload length + 4-byte CRC32 of the payload.
HEADER_SIZE = 8

#: Refuse absurd frames rather than allocating gigabytes on a bad header.
MAX_FRAME_SIZE = 64 * 1024 * 1024

#: Dead-prefix bytes tolerated before the decoder slides its buffer.
#: Large enough that compaction is rare under normal traffic, small
#: enough that a slow-loris sender can never pin more than this much
#: consumed garbage in memory.
DEFAULT_COMPACT_THRESHOLD = 64 * 1024


def encode_frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a length + CRC32 header."""
    return encode_frame_header(payload) + payload


def encode_frame_header(payload: bytes) -> bytes:
    """Just the 8-byte header for ``payload``.

    Write paths that buffer header and payload separately (the event
    loop's per-connection outbox) avoid concatenating — and therefore
    copying — a large payload only to split it into segments again.
    """
    if len(payload) > MAX_FRAME_SIZE:
        raise TransportError(
            f"frame of {len(payload)} bytes exceeds maximum {MAX_FRAME_SIZE}"
        )
    return struct.pack(">II", len(payload), zlib.crc32(payload))


def frame_overhead() -> int:
    """Bytes of framing added per message (for wire accounting)."""
    return HEADER_SIZE


class FrameDecoder:
    """Incremental frame decoder: feed chunks, pop complete frames.

    Contract: :meth:`feed` only *absorbs* bytes (returning the number of
    frames it completed, so select-style readers know whether to poll);
    :meth:`pop` is the single delivery path and yields each frame exactly
    once, in arrival order.

    A corrupt frame (bad CRC) raises :class:`FrameCorruptionError`; the
    stream position is unrecoverable after that, so stream owners should
    drop the connection (and, with idempotent requests, retry).
    """

    def __init__(
        self, compact_threshold: int = DEFAULT_COMPACT_THRESHOLD
    ) -> None:
        self._buffer = bytearray()
        #: Where header parsing resumes; everything before it is either
        #: a located frame (tracked in ``_spans``) or dead bytes.
        self._parse_pos = 0
        #: ``(body_start, length)`` of CRC-verified, not-yet-popped
        #: frames, in arrival order.  Offsets index into ``_buffer``.
        self._spans: Deque[Tuple[int, int]] = deque()
        self._compact_threshold = max(int(compact_threshold), HEADER_SIZE)

    def feed(self, chunk: bytes) -> int:
        """Absorb ``chunk``; return how many frames it completed."""
        self._compact()
        self._buffer += chunk
        completed = 0
        while self._locate_one():
            completed += 1
        return completed

    def _locate_one(self) -> bool:
        """Verify the next frame in place; never copies the payload."""
        buffer = self._buffer
        start = self._parse_pos
        if len(buffer) - start < HEADER_SIZE:
            return False
        length, expected_crc = struct.unpack_from(">II", buffer, start)
        if length > MAX_FRAME_SIZE:
            raise TransportError(
                f"incoming frame of {length} bytes exceeds maximum"
            )
        body_start = start + HEADER_SIZE
        if len(buffer) - body_start < length:
            return False
        with memoryview(buffer) as whole:
            with whole[body_start : body_start + length] as body:
                actual_crc = zlib.crc32(body)
        if actual_crc != expected_crc:
            raise FrameCorruptionError(
                f"frame CRC mismatch: header says {expected_crc:#010x}, "
                f"payload is {actual_crc:#010x}"
            )
        self._spans.append((body_start, length))
        self._parse_pos = body_start + length
        return True

    def _compact(self) -> None:
        """Reclaim the consumed prefix, amortised.

        Everything before the oldest unpopped frame's body (or, with no
        frames waiting, before the parse cursor) is dead.  A fully
        drained buffer is cleared outright; otherwise the buffer slides
        only once the dead prefix passes ``compact_threshold``, keeping
        per-byte cost O(1) even against a one-byte-per-segment sender.
        """
        if not self._spans and self._parse_pos == len(self._buffer):
            if self._parse_pos:
                self._buffer.clear()
                self._parse_pos = 0
            return
        dead = self._spans[0][0] if self._spans else self._parse_pos
        if dead < self._compact_threshold:
            return
        del self._buffer[:dead]
        self._parse_pos -= dead
        self._spans = deque(
            (start - dead, length) for start, length in self._spans
        )

    def pop(self) -> Optional[bytes]:
        """Take the next complete frame, or None.  The only delivery path.

        This materialises the payload as owned ``bytes`` — the one copy
        on the receive path, made at the codec handoff because the
        protocol layer outlives the decoder's buffer.
        """
        if not self._spans:
            return None
        start, length = self._spans.popleft()
        with memoryview(self._buffer) as whole:
            return bytes(whole[start : start + length])

    def popview(self) -> Optional[memoryview]:
        """Zero-copy :meth:`pop`: a view into the decoder's buffer.

        The view is only valid until the next :meth:`feed` — feeding
        while a view is alive raises ``BufferError`` (the underlying
        buffer cannot grow with exports outstanding).  Release or drop
        the view before feeding again.
        """
        if not self._spans:
            return None
        start, length = self._spans.popleft()
        return memoryview(self._buffer)[start : start + length]

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer) - self._parse_pos

    @property
    def ready_frames(self) -> int:
        """Frames completed but not yet popped."""
        return len(self._spans)

    @property
    def buffered_bytes(self) -> int:
        """Total bytes held, dead prefix included (compaction tests)."""
        return len(self._buffer)


class FrameScanner:
    """Tolerant sequential scan over a buffer of concatenated frames.

    Where :class:`FrameDecoder` serves live streams — damage there is
    fatal, the connection is dropped — the scanner serves *stored*
    frames (the durability journal's on-disk format, which reuses the
    wire framing byte for byte).  A stored file may legitimately end
    mid-frame after a crash, so the scanner never raises: the first torn
    header, absurd length, torn body, or CRC mismatch ends the scan,
    with ``truncation_reason`` saying why and ``offset`` marking where
    the valid prefix ends.  Payloads come back as :class:`memoryview`
    slices of ``raw`` — no copy per frame.

    ``noun`` names the framed unit in damage reports ("frame" on the
    wire, "record" in the journal).
    """

    def __init__(self, raw: bytes, noun: str = "frame") -> None:
        self._raw = raw
        self._noun = noun
        self.offset = 0
        self.truncation_reason = ""

    def next_payload(self) -> Optional[memoryview]:
        """The next valid payload, or None at the end of the prefix."""
        raw, start = self._raw, self.offset
        remaining = len(raw) - start
        if remaining == 0 or self.truncation_reason:
            return None
        if remaining < HEADER_SIZE:
            self.truncation_reason = "torn header"
            return None
        length, expected_crc = struct.unpack_from(">II", raw, start)
        if length > MAX_FRAME_SIZE:
            self.truncation_reason = f"absurd {self._noun} length {length}"
            return None
        body_start = start + HEADER_SIZE
        if len(raw) - body_start < length:
            self.truncation_reason = f"torn {self._noun} body"
            return None
        payload = memoryview(raw)[body_start : body_start + length]
        if zlib.crc32(payload) != expected_crc:
            payload.release()
            self.truncation_reason = "CRC mismatch"
            return None
        self.offset = body_start + length
        return payload

    def __iter__(self) -> Iterator[memoryview]:
        while True:
            payload = self.next_payload()
            if payload is None:
                return
            yield payload


def decode_single_frame(raw: bytes) -> bytes:
    """Decode exactly one frame from ``raw``; any deviation is corruption.

    For message-oriented carriers (request/reply channels) where one
    buffer must hold one whole frame: a short buffer, trailing bytes, a
    bad CRC, or a garbled length all raise
    :class:`FrameCorruptionError`.
    """
    decoder = FrameDecoder()
    try:
        decoder.feed(raw)
    except FrameCorruptionError:
        raise
    except TransportError as exc:
        # e.g. a bit flip in the length field claiming a gigabyte frame
        raise FrameCorruptionError(f"unframeable reply: {exc}") from exc
    frame = decoder.pop()
    if frame is None:
        raise FrameCorruptionError(
            f"buffer of {len(raw)} bytes does not hold a complete frame"
        )
    if decoder.pending_bytes or decoder.ready_frames:
        raise FrameCorruptionError(
            f"{decoder.pending_bytes} trailing bytes after frame"
        )
    return frame


class ChecksummedChannel(RequestChannel):
    """Frame + CRC-protect payloads over an unframed request channel.

    Stream transports (TCP) get framing for free; loopback and
    simulated channels carry bare payloads, so a fault injector's bit
    flips would otherwise reach the codec.  This wrapper encodes each
    request as a frame and validates the reply frame, converting
    corruption into :class:`FrameCorruptionError` — which the resilience
    layer treats as retryable.  Pair with :func:`checksummed_handler` on
    the responder side.
    """

    def __init__(self, inner: RequestChannel) -> None:
        super().__init__()
        self.inner = inner

    def _deliver(self, payload: bytes) -> bytes:
        return decode_single_frame(self.inner.request(encode_frame(payload)))

    def close(self) -> None:
        super().close()
        self.inner.close()


def checksummed_handler(handler):
    """Wrap a ChannelHandler to deframe requests and frame replies."""

    def wrapped(raw: bytes) -> bytes:
        return encode_frame(handler(decode_single_frame(raw)))

    return wrapped
