"""Ablation A12: N-shard fleet throughput on the simulated 1987 testbed.

The fleet's pitch is horizontal capacity: each shard owns a disjoint
slice of the ``(domain, file)`` key space, so N shards serve N slow
lines *concurrently*.  This ablation replays the same edit workload
against 1, 2, and 3 shards.  The consistent-hash ring partitions the
files exactly as ``FleetChannel`` would route them; each shard is an
independent :class:`SimulatedDeployment` (its own virtual clock and
9600-baud line, mirroring a real fleet where every shard terminates
its own links).  Aggregate wall time is the *slowest* shard's virtual
clock — the shard the ring loads heaviest bounds the fleet — so the
scaling factor directly exposes the ring's balance:

    aggregate throughput(N) = total ops / max per-shard elapsed

Consistent hashing is not a perfect splitter (that is the price of
moving only ~1/N keys on reshard, per ``tests/fleet/test_ring.py``),
so the acceptance bars are near-linear, not linear: >=1.8x at two
shards, >=2.6x at three.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

from conftest import publish

from repro.core.service import SimulatedDeployment
from repro.core.workspace import MappingWorkspace
from repro.fleet import HashRing
from repro.metrics.report import format_table
from repro.simnet.link import CYPRESS_9600
from repro.workload.edits import modify_percent
from repro.workload.files import make_text_file

FILES = [f"/data/a12-{index:03d}.dat" for index in range(144)]
FILE_SIZE = 1_200
EDIT_PERCENT = 5
SHARD_NAMES = ("alpha", "beta", "gamma")


def partition(shard_count: int) -> Dict[str, List[str]]:
    """Split FILES by ring owner of the resolved cache key."""
    names = SHARD_NAMES[:shard_count]
    ring = HashRing(list(names))
    resolver = MappingWorkspace()
    shares: Dict[str, List[str]] = {name: [] for name in names}
    for path in FILES:
        shares[ring.owner(str(resolver.resolve(path)))].append(path)
    return shares

def run_fleet(shard_count: int) -> Dict[str, float]:
    """Run the prime + edit cycle against ``shard_count`` shards."""
    shares = partition(shard_count)
    elapsed: Dict[str, float] = {}
    wire_bytes = 0
    operations = 0
    for name, paths in shares.items():
        deployment = SimulatedDeployment.build(
            CYPRESS_9600,
            client_id="bench@ws",
            server_name=name,
            workspace=MappingWorkspace(),
        )
        contents = {
            path: make_text_file(FILE_SIZE, seed=1200 + FILES.index(path))
            for path in paths
        }
        for path in paths:
            deployment.client.write_file(path, contents[path], host=name)
        for index, path in enumerate(paths):
            deployment.client.write_file(
                path,
                modify_percent(contents[path], EDIT_PERCENT, seed=77 + index),
                host=name,
            )
        # The shard holds exactly the ring's slice, nothing else.
        assert len(deployment.server.cache) == len(paths)
        elapsed[name] = deployment.clock.now()
        wire_bytes += deployment.total_wire_bytes
        operations += 2 * len(paths)
    return {
        "shards": shard_count,
        "operations": operations,
        "seconds": max(elapsed.values()),
        "wire_bytes": wire_bytes,
        "largest_share": max(len(paths) for paths in shares.values()),
    }


@lru_cache(maxsize=1)
def run_all() -> Tuple[Dict[str, float], ...]:
    return tuple(run_fleet(count) for count in (1, 2, 3))


def test_fleet_scaling_ablation(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    baseline = results[0]
    rows = []
    for stats in results:
        scaling = baseline["seconds"] / stats["seconds"]
        rows.append(
            [
                str(stats["shards"]),
                f"{stats['seconds']:.1f}s",
                f"{stats['operations'] / stats['seconds']:.2f}",
                f"{scaling:.2f}x",
                str(stats["largest_share"]),
            ]
        )
    publish(
        "ablation_a12_fleet",
        format_table(
            [
                "shards",
                "cycle (slowest shard)",
                "ops/sec aggregate",
                "scaling",
                "largest share",
            ],
            rows,
        ),
    )
    # Same workload, same total bytes — only the parallelism changes.
    assert all(
        stats["operations"] == baseline["operations"] for stats in results
    )
    two, three = results[1], results[2]
    assert baseline["seconds"] / two["seconds"] >= 1.8
    assert baseline["seconds"] / three["seconds"] >= 2.6
    # Elapsed tracks the ring's heaviest slice: near-linear, not linear.
    assert two["seconds"] >= baseline["seconds"] / 2
    assert three["seconds"] >= baseline["seconds"] / 3
