"""Tests for the byte-accurate link model and 1987 presets."""

import math

import pytest

from repro.errors import SimulationError
from repro.simnet.link import (
    ARPANET_56K,
    CYPRESS_9600,
    FREE_PROCESSING,
    LAN_10M,
    PRESET_LINKS,
    SUN3_PROCESSING,
    Link,
    LinkStats,
    ProcessingModel,
)


def simple_link(**overrides):
    defaults = dict(
        name="test",
        bits_per_second=8_000,
        latency_seconds=0.0,
        mtu_bytes=1_040,
        header_bytes=40,
        bits_per_byte=8,
    )
    defaults.update(overrides)
    return Link(**defaults)


class TestLinkMath:
    def test_effective_rate(self):
        # 8000 bps / 8 bits per byte = 1000 B/s.
        assert simple_link().effective_bytes_per_second == 1000.0

    def test_utilization_scales_rate(self):
        assert simple_link(utilization=0.5).effective_bytes_per_second == 500.0

    def test_async_serial_costs_ten_bits_per_byte(self):
        link = simple_link(bits_per_byte=10)
        assert link.effective_bytes_per_second == 800.0

    def test_packet_count_single(self):
        assert simple_link().packet_count(1000) == 1

    def test_packet_count_exact_boundary(self):
        link = simple_link()
        assert link.packet_count(link.payload_per_packet) == 1
        assert link.packet_count(link.payload_per_packet + 1) == 2

    def test_empty_payload_still_one_packet(self):
        assert simple_link().packet_count(0) == 1

    def test_negative_payload_rejected(self):
        with pytest.raises(SimulationError):
            simple_link().packet_count(-1)

    def test_wire_bytes_include_headers(self):
        link = simple_link()
        assert link.wire_bytes(1000) == 1000 + 40

    def test_transfer_time_is_wire_bytes_over_rate_plus_latency(self):
        link = simple_link(latency_seconds=0.5)
        expected = 0.5 + (1000 + 40) / 1000.0
        assert link.transfer_seconds(1000) == pytest.approx(expected)

    def test_round_trip_sums_both_directions(self):
        link = simple_link(latency_seconds=0.1)
        expected = link.transfer_seconds(100) + link.transfer_seconds(200)
        assert link.round_trip_seconds(100, 200) == pytest.approx(expected)

    def test_scaled_changes_only_utilization(self):
        link = simple_link()
        slower = link.scaled(utilization=0.25)
        assert slower.effective_bytes_per_second == 250.0
        assert slower.name == link.name

    def test_large_transfer_splits_into_many_packets(self):
        link = simple_link()
        payload = 100_000
        packets = math.ceil(payload / link.payload_per_packet)
        assert link.wire_bytes(payload) == payload + packets * 40


class TestLinkValidation:
    def test_zero_bandwidth_rejected(self):
        with pytest.raises(SimulationError):
            simple_link(bits_per_second=0)

    def test_utilization_bounds(self):
        with pytest.raises(SimulationError):
            simple_link(utilization=0.0)
        with pytest.raises(SimulationError):
            simple_link(utilization=1.5)

    def test_mtu_must_exceed_header(self):
        with pytest.raises(SimulationError):
            simple_link(mtu_bytes=40, header_bytes=40)

    def test_negative_latency_rejected(self):
        with pytest.raises(SimulationError):
            simple_link(latency_seconds=-0.1)


class TestPresets:
    def test_cypress_is_9600_baud_async(self):
        assert CYPRESS_9600.bits_per_second == 9_600
        assert CYPRESS_9600.bits_per_byte == 10

    def test_cypress_500k_transfer_in_paper_range(self):
        # Figure 1's top E-time line sits around 560-600 s.
        seconds = CYPRESS_9600.transfer_seconds(500_000)
        assert 500 < seconds < 650

    def test_arpanet_effective_rate_reflects_congestion(self):
        # Nominal 7000 B/s; the paper measured an order of magnitude less.
        assert ARPANET_56K.effective_bytes_per_second < 1000

    def test_arpanet_500k_transfer_in_paper_range(self):
        seconds = ARPANET_56K.transfer_seconds(500_000)
        assert 600 < seconds < 800

    def test_lan_is_fast(self):
        assert LAN_10M.transfer_seconds(500_000) < 1.0

    def test_preset_registry_contains_all(self):
        assert {"cypress-9600", "arpanet-56k", "clear-56k", "lan-10m"} <= set(
            PRESET_LINKS
        )


class TestLinkStats:
    def test_record_accumulates(self):
        stats = LinkStats()
        stats.record(100, 140, 1.0)
        stats.record(200, 240, 2.0)
        assert stats.transfers == 2
        assert stats.payload_bytes == 300
        assert stats.wire_bytes == 380
        assert stats.busy_seconds == pytest.approx(3.0)


class TestProcessingModel:
    def test_diff_cost_grows_with_size(self):
        model = ProcessingModel()
        assert model.diff_seconds(500_000) > model.diff_seconds(10_000)

    def test_sun3_diff_of_500k_is_tens_of_seconds(self):
        # This is what makes Figure 3's speedup plateau near 25x.
        assert 10 < SUN3_PROCESSING.diff_seconds(500_000) < 30

    def test_free_model_charges_nothing(self):
        assert FREE_PROCESSING.diff_seconds(1_000_000) == 0.0
        assert FREE_PROCESSING.patch_seconds(1_000_000) == 0.0

    def test_scaled_speeds_up(self):
        model = ProcessingModel()
        faster = model.scaled(10.0)
        assert faster.diff_seconds(100_000) < model.diff_seconds(100_000)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(SimulationError):
            ProcessingModel().scaled(0.0)
