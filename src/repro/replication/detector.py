"""Heartbeat-based failure detection for the replication pair.

A :class:`FailureDetector` answers one question — "has the primary been
silent for longer than the timeout?" — against an injected clock, so
the same detector drives deterministic virtual-time tests (pass the
simulated clock's ``now``) and live deployments (the default,
``time.monotonic``).

The detector is deliberately dumb: it never *acts* on expiry.  The
standby's operator (``shadow promote``), the ``--auto-promote`` serve
loop, or a test harness reads :meth:`expired` and decides; conflating
detection with promotion is how split-brain happens.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro.errors import ShadowError


class FailureDetector:
    """Tracks liveness of one peer from its heartbeat arrivals.

    ``interval`` is the sender's advertised beat cadence (kept here so
    :meth:`describe` can report both sides of the contract); ``timeout``
    is how long silence must last before :meth:`expired` fires.  The
    timeout must exceed the interval or every gap between beats would
    read as a death.
    """

    def __init__(
        self,
        interval: float = 1.0,
        timeout: float = 3.0,
        now_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        if timeout <= interval:
            raise ShadowError(
                f"detector timeout ({timeout}s) must exceed the "
                f"heartbeat interval ({interval}s)"
            )
        self.interval = interval
        self.timeout = timeout
        self._now = now_fn if now_fn is not None else time.monotonic
        self._last_beat: Optional[float] = None
        self.beats = 0

    def beat(self) -> None:
        """Record a liveness signal (heartbeat or any replicated traffic)."""
        self._last_beat = self._now()
        self.beats += 1

    def age(self) -> Optional[float]:
        """Seconds since the last beat; None before the first one."""
        if self._last_beat is None:
            return None
        return max(0.0, self._now() - self._last_beat)

    def expired(self) -> bool:
        """True once silence has outlasted the timeout.

        Before the first beat the peer was never alive from this
        detector's point of view, so it cannot have *died*: False.
        """
        age = self.age()
        return age is not None and age > self.timeout

    def reset(self) -> None:
        """Forget the peer (it was demoted, detached, or we promoted)."""
        self._last_beat = None

    def describe(self) -> Dict[str, Any]:
        age = self.age()
        return {
            "interval": self.interval,
            "timeout": self.timeout,
            "beats": self.beats,
            "last_beat_age": age,
            "expired": self.expired(),
        }
