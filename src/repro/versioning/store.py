"""The client-side version store.

Holds a :class:`~repro.versioning.version.VersionChain` per shadow file
and answers the two questions the protocol asks of it (§6.3.2):

* *record* — the shadow editor finished; snapshot the new content as the
  next version;
* *delta or full* — the server asked for the update relative to the base
  version it holds; return a delta if that base is still retained and the
  delta actually saves bytes, otherwise the full content.

Pruning follows the paper exactly: once the server acknowledges holding
version N of a file, every retained version below N is deleted.  An
additional per-user ``max_retained`` cap (shadow-environment
customisation) bounds disk usage regardless of acknowledgements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.diffing.model import Delta
from repro.diffing.selector import DEFAULT_ALGORITHM, compute_delta, worthwhile
from repro.errors import VersionNotFoundError, VersioningError
from repro.versioning.version import FileVersion, VersionChain


@dataclass(frozen=True)
class FullContent:
    """An update that must travel as the entire file.

    Produced when no usable base exists (first submission, pruned base,
    cache eviction at the server) or when a delta would not be smaller.
    """

    name: str
    number: int
    content: bytes

    @property
    def encoded_size(self) -> int:
        return len(self.content)


@dataclass(frozen=True)
class DeltaUpdate:
    """An update expressed as a delta from ``base_number``."""

    name: str
    number: int
    base_number: int
    delta: Delta

    @property
    def encoded_size(self) -> int:
        return self.delta.encoded_size


Update = Union[FullContent, DeltaUpdate]


class VersionStore:
    """All version chains for one user's shadow files."""

    def __init__(
        self,
        max_retained: Optional[int] = 8,
        diff_algorithm: str = DEFAULT_ALGORITHM,
    ) -> None:
        if max_retained is not None and max_retained < 1:
            raise VersioningError(f"max_retained must be >= 1, got {max_retained}")
        self.max_retained = max_retained
        self.diff_algorithm = diff_algorithm
        self._chains: Dict[str, VersionChain] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_edit(
        self, name: str, content: bytes, timestamp: float = 0.0
    ) -> FileVersion:
        """Snapshot ``content`` as the next version of ``name``."""
        chain = self._chains.get(name)
        if chain is None:
            chain = VersionChain(name, max_retained=self.max_retained)
            self._chains[name] = chain
        return chain.add(content, timestamp)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def names(self) -> List[str]:
        return sorted(self._chains)

    def chain(self, name: str) -> VersionChain:
        try:
            return self._chains[name]
        except KeyError:
            raise VersionNotFoundError(name, 0) from None

    def tracks(self, name: str) -> bool:
        return name in self._chains

    def latest(self, name: str) -> FileVersion:
        return self.chain(name).latest()

    def get(self, name: str, number: int) -> FileVersion:
        return self.chain(name).get(number)

    @property
    def retained_bytes(self) -> int:
        return sum(chain.retained_bytes for chain in self._chains.values())

    # ------------------------------------------------------------------
    # update production (the server's pull request lands here)
    # ------------------------------------------------------------------
    def update_from(
        self,
        name: str,
        server_base: Optional[int],
        target: Optional[int] = None,
    ) -> Update:
        """Produce the update the server asked for.

        ``server_base`` is the version number the server says it holds
        (``None`` or 0 meaning none).  ``target`` defaults to the latest
        version.  Per §6.3.2: "the client may transmit a completely new
        version (if the specified version is not available for computing
        the differences), or the difference between the current version
        and the previous version specified by the server."
        """
        chain = self.chain(name)
        target_version = chain.get(target if target is not None else chain.latest_number)
        if not server_base or not chain.retains(server_base):
            return FullContent(name, target_version.number, target_version.content)
        if server_base == target_version.number:
            # The server is already current; an empty delta says so.
            base = chain.get(server_base)
            delta = compute_delta(base.content, base.content, self.diff_algorithm)
            return DeltaUpdate(name, target_version.number, server_base, delta)
        base = chain.get(server_base)
        delta = compute_delta(
            base.content, target_version.content, self.diff_algorithm
        )
        if not worthwhile(delta, len(target_version.content)):
            return FullContent(name, target_version.number, target_version.content)
        return DeltaUpdate(name, target_version.number, server_base, delta)

    # ------------------------------------------------------------------
    # acknowledgement-driven pruning
    # ------------------------------------------------------------------
    def acknowledge(self, name: str, number: int) -> int:
        """The server confirmed holding version ``number`` of ``name``.

        Prunes every older version; returns how many were dropped.
        """
        return self.chain(name).prune_older_than(number)
