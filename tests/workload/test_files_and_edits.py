"""Tests for workload file and edit generators."""

import pytest

from repro.errors import ShadowError
from repro.workload.edits import (
    delete_percent,
    insert_percent,
    measured_change_percent,
    modify_percent,
)
from repro.workload.files import (
    FIGURE_FILE_SIZES,
    make_binary_file,
    make_repetitive_file,
    make_text_file,
)


class TestFileGenerators:
    @pytest.mark.parametrize("size", [0, 1, 2, 100, 9_999, 100_000])
    def test_exact_size(self, size):
        assert len(make_text_file(size)) == size

    def test_deterministic(self):
        assert make_text_file(5_000, seed=1) == make_text_file(5_000, seed=1)

    def test_seeds_differ(self):
        assert make_text_file(5_000, seed=1) != make_text_file(5_000, seed=2)

    def test_line_structured(self):
        content = make_text_file(10_000)
        lines = content.split(b"\n")
        assert len(lines) > 100
        assert content.endswith(b"\n")

    def test_negative_size_rejected(self):
        with pytest.raises(ShadowError):
            make_text_file(-1)

    def test_binary_exact_size_and_entropy(self):
        data = make_binary_file(10_000, seed=3)
        assert len(data) == 10_000
        assert len(set(data)) > 200  # roughly uniform

    def test_repetitive_repeats(self):
        data = make_repetitive_file(10_000, period=100, seed=4)
        assert len(data) == 10_000
        assert data[:100] == data[100:200]

    def test_figure_sizes_match_paper(self):
        assert FIGURE_FILE_SIZES == {
            "10k": 10_000,
            "50k": 50_000,
            "100k": 100_000,
            "200k": 200_000,
            "500k": 500_000,
        }


class TestModifyPercent:
    @pytest.fixture
    def base(self):
        return make_text_file(50_000, seed=10)

    @pytest.mark.parametrize("percent", [1, 5, 10, 20, 40, 60, 80])
    def test_modified_share_close_to_requested(self, base, percent):
        edited = modify_percent(base, percent, seed=10)
        measured = measured_change_percent(base, edited)
        assert measured == pytest.approx(percent, rel=0.35, abs=0.5)

    def test_size_preserved(self, base):
        assert len(modify_percent(base, 20, seed=10)) == len(base)

    def test_zero_percent_identity(self, base):
        assert modify_percent(base, 0, seed=10) is base

    def test_deterministic(self, base):
        assert modify_percent(base, 5, seed=1) == modify_percent(
            base, 5, seed=1
        )

    def test_seeds_scatter_differently(self, base):
        assert modify_percent(base, 5, seed=1) != modify_percent(
            base, 5, seed=2
        )

    def test_clustered_edits_are_contiguous(self, base):
        edited = modify_percent(base, 10, seed=10, clustered=True)
        base_lines = base.split(b"\n")
        edited_lines = edited.split(b"\n")
        changed = [
            index
            for index, (a, b) in enumerate(zip(base_lines, edited_lines))
            if a != b
        ]
        # Contiguous modulo wrap-around: spread == count.
        assert changed
        span = changed[-1] - changed[0] + 1
        assert span == len(changed) or len(base_lines) - span < len(changed)

    def test_out_of_range_rejected(self, base):
        with pytest.raises(ShadowError):
            modify_percent(base, 101)
        with pytest.raises(ShadowError):
            modify_percent(base, -1)

    def test_empty_input(self):
        assert modify_percent(b"", 50) == b""


class TestInsertDelete:
    @pytest.fixture
    def base(self):
        return make_text_file(20_000, seed=11)

    def test_insert_grows_by_percent(self, base):
        grown = insert_percent(base, 10, seed=11)
        assert len(grown) == pytest.approx(len(base) * 1.1, rel=0.02)

    def test_insert_preserves_original_lines(self, base):
        grown = insert_percent(base, 5, seed=11)
        for line in base.split(b"\n")[:10]:
            assert line in grown

    def test_delete_shrinks_by_percent(self, base):
        shrunk = delete_percent(base, 10, seed=11)
        assert len(shrunk) == pytest.approx(len(base) * 0.9, rel=0.05)

    def test_delete_never_empties(self, base):
        assert len(delete_percent(base, 100, seed=11)) > 0

    def test_zero_percent_identity(self, base):
        assert insert_percent(base, 0) is base
        assert delete_percent(base, 0) is base


class TestMeasuredChange:
    def test_identical_is_zero(self):
        content = make_text_file(1_000, seed=12)
        assert measured_change_percent(content, content) == 0.0

    def test_empty_base(self):
        assert measured_change_percent(b"", b"x") == 100.0
        assert measured_change_percent(b"", b"") == 0.0
