"""Span trees across failover: one trace id, three processes, no orphans.

The acceptance bar for distributed tracing is the ugly path: a client
edit whose first attempt dies with the primary and whose retry lands on
the freshly promoted standby must still reassemble — from the client's
ring plus both servers' rings — into a single tree rooted at the
client RPC span, with every server span parented and zero orphans.
"""

from repro.api import ShadowClient
from repro.telemetry.spans import assemble, render_tree
from repro.workload.files import make_text_file

from tests.replication.test_tcp_failover import FAST, TcpPair


def all_span_records(pair, client):
    records = [span.as_dict() for span in client.core.spans.snapshot()]
    records += [span.as_dict() for span in pair.primary.spans.snapshot()]
    records += [span.as_dict() for span in pair.standby.spans.snapshot()]
    return records


def client_trace_ids(client):
    """Trace ids of the client's RPC root spans, oldest first."""
    seen = []
    for span in client.core.spans.snapshot():
        if span.name == "client.rpc" and span.trace_id not in seen:
            seen.append(span.trace_id)
    return seen


def test_span_tree_reassembles_across_failover(tmp_path):
    pair = TcpPair(tmp_path / "p", tmp_path / "s")
    try:
        pair.announce()
        with ShadowClient.connect(
            transport=pair.dial_list(), client_id="alice@ws", resilience=FAST
        ) as client:
            client.edit("/data/a.dat", make_text_file(1_000, seed=1))
            before_kill = set(client_trace_ids(client))

            pair.kill_primary()
            pair.standby_repl.promote()
            client.edit("/data/b.dat", make_text_file(1_000, seed=2))

            failover_tids = [
                tid
                for tid in client_trace_ids(client)
                if tid not in before_kill
            ]
            assert failover_tids, "failover edit minted no trace ids"
            records = all_span_records(pair, client)

            # Every trace the client started — before and after the
            # kill — assembles into fully parented trees.
            for tid in client_trace_ids(client):
                tree = assemble(records, tid)
                assert tree["spans"] >= 1, tid
                assert tree["orphans"] == [], render_tree(tree)
                assert [root["name"] for root in tree["roots"]] == [
                    "client.rpc"
                ], tid

            # At least one failover-era trace crossed the wire onto the
            # promoted standby: client RPC root with the standby's
            # server.request parented directly beneath it.
            crossed = []
            for tid in failover_tids:
                sites = {
                    record["site"]
                    for record in records
                    if record.get("trace_id") == tid
                }
                if any(site.startswith("server:") for site in sites):
                    crossed.append(assemble(records, tid))
            assert crossed, "no failover trace reached the standby"
            tree = crossed[-1]
            root_id = tree["roots"][0]["span_id"]
            server_roots = [
                span
                for span in tree["children"][root_id]
                if span["name"] == "server.request"
            ]
            assert server_roots, render_tree(tree)
            rendered = render_tree(tree)
            assert "client.rpc" in rendered
            assert "server.request" in rendered
    finally:
        pair.close()


def test_pre_failover_trace_includes_replication_ship_child(tmp_path):
    """While the feed is attached, the per-record ship shows up as a
    child span of the request that produced the journal record."""
    pair = TcpPair(tmp_path / "p", tmp_path / "s")
    try:
        pair.announce()
        with ShadowClient.connect(
            transport=pair.dial_list(), client_id="bob@ws", resilience=FAST
        ) as client:
            client.edit("/data/a.dat", make_text_file(1_000, seed=3))
            records = all_span_records(pair, client)
            ship_names = {
                record["name"]
                for record in records
                if record["name"].startswith("replication.")
            }
            assert "replication.ship" in ship_names
            for tid in client_trace_ids(client):
                tree = assemble(records, tid)
                assert tree["orphans"] == [], render_tree(tree)
    finally:
        pair.close()
