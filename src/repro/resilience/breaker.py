"""Circuit breaker: stop hammering a link that is plainly down.

Failures counted here are *whole requests* that exhausted their retry
budget — not individual attempts — so a run of bad luck inside one
request does not trip the breaker, but a genuinely dead link does after
``failure_threshold`` consecutive dead requests.  While open, callers
are refused instantly with :class:`~repro.errors.CircuitOpenError`; the
client layer uses that to *park* notifications locally and replay them
when the link heals (§5.1's graceful degradation).  After
``reset_after`` seconds the breaker half-opens and admits one probe:
success closes it, failure re-opens it.

Time is whatever clock the owner passes to :meth:`allows` /
:meth:`record_failure` — simulated seconds under the benchmark rig,
wall seconds over TCP — so behaviour is deterministic in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShadowError


@dataclass(frozen=True)
class BreakerPolicy:
    """Tuning for one :class:`CircuitBreaker`."""

    #: Consecutive exhausted requests before the breaker opens.
    failure_threshold: int = 3
    #: Seconds the breaker stays open before admitting a probe.
    reset_after: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ShadowError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.reset_after < 0:
            raise ShadowError(
                f"reset_after must be non-negative, got {self.reset_after}"
            )


class CircuitBreaker:
    """Closed -> open -> half-open state machine over consecutive failures."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, policy: BreakerPolicy = BreakerPolicy()) -> None:
        self.policy = policy
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.times_opened = 0

    def allows(self, now: float) -> bool:
        """May a request be attempted at time ``now``?

        An open breaker whose cool-down elapsed moves to half-open and
        admits the caller as its probe.
        """
        if self.state == self.OPEN:
            if now - self.opened_at >= self.policy.reset_after:
                self.state = self.HALF_OPEN
                return True
            return False
        return True

    def record_success(self) -> None:
        """A request fully succeeded; the link is healthy again."""
        self.state = self.CLOSED
        self.consecutive_failures = 0

    def record_failure(self, now: float) -> bool:
        """A request exhausted its retries; returns True if this opened
        the breaker (newly or re-opened from half-open)."""
        self.consecutive_failures += 1
        if (
            self.state == self.HALF_OPEN
            or self.consecutive_failures >= self.policy.failure_threshold
        ):
            was_open = self.state == self.OPEN
            self.state = self.OPEN
            self.opened_at = now
            if not was_open:
                self.times_opened += 1
                return True
        return False

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state}, "
            f"failures={self.consecutive_failures})"
        )
