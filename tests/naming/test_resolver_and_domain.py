"""Tests for global names, the mapping function, and Tilde trees."""

import pytest

from repro.errors import NamingError
from repro.naming.domain import DomainId, GlobalName
from repro.naming.resolver import NameResolver
from repro.naming.tilde import TildeNamespace


class TestDomainId:
    def test_valid(self):
        assert str(DomainId("nsf-128-10")) == "nsf-128-10"

    @pytest.mark.parametrize("bad", ["", "has/slash", "has:colon"])
    def test_invalid(self, bad):
        with pytest.raises(NamingError):
            DomainId(bad)


class TestGlobalName:
    def test_render_parse_roundtrip(self):
        name = GlobalName(DomainId("d1"), "hostA", "/usr/foo")
        assert GlobalName.parse(name.render()) == name

    def test_file_id_combines_host_and_path(self):
        name = GlobalName(DomainId("d1"), "hostA", "/usr/foo")
        assert name.file_id == "hostA:/usr/foo"

    def test_relative_path_rejected(self):
        with pytest.raises(NamingError):
            GlobalName(DomainId("d"), "h", "usr/foo")

    def test_empty_host_rejected(self):
        with pytest.raises(NamingError):
            GlobalName(DomainId("d"), "", "/x")

    @pytest.mark.parametrize("bad", ["nodomainsep", "d/nopathsep"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(NamingError):
            GlobalName.parse(bad)

    def test_parse_keeps_colons_in_path(self):
        name = GlobalName.parse("d/h:/weird:path")
        assert name.path == "/weird:path"


class TestNameResolver:
    def test_aliases_collapse_to_one_global_name(self, nfs_paper_scenario):
        _, resolver = nfs_paper_scenario
        assert resolver.resolve("A", "/projl/foo") == resolver.resolve(
            "B", "/others/foo"
        )

    def test_hard_links_collapse_when_enabled(self, nfs_paper_scenario):
        env, resolver = nfs_paper_scenario
        env.host("C").vfs.hard_link("/usr/foo", "/usr/foo-alias")
        first = resolver.resolve("A", "/projl/foo")
        second = resolver.resolve("A", "/projl/foo-alias")
        assert first == second

    def test_hard_links_kept_distinct_when_disabled(self, nfs_paper_scenario):
        env, _ = nfs_paper_scenario
        env.host("C").vfs.hard_link("/usr/foo", "/usr/foo-alias")
        resolver = NameResolver(
            env, DomainId("d"), canonicalize_hard_links=False
        )
        first = resolver.resolve("A", "/projl/foo")
        second = resolver.resolve("A", "/projl/foo-alias")
        assert first != second

    def test_domain_stamped(self, nfs_paper_scenario):
        _, resolver = nfs_paper_scenario
        name = resolver.resolve("A", "/projl/foo")
        assert str(name.domain) == "nsf-128-10"

    def test_read_through_resolution(self, nfs_paper_scenario):
        _, resolver = nfs_paper_scenario
        assert resolver.read("A", "/projl/foo") == b"shared content\n"


class TestTildeTrees:
    @pytest.fixture
    def namespace(self):
        namespace = TildeNamespace()
        namespace.create_tree("purdue.cs.comer", "hostA", "/home/comer")
        namespace.create_tree("purdue.cs.shared", "hostB", "/projects")
        namespace.bind("comer", "home", "purdue.cs.comer")
        namespace.bind("comer", "proj", "purdue.cs.shared")
        namespace.bind("grif", "work", "purdue.cs.shared")
        return namespace

    def test_resolve_within_tree(self, namespace):
        assert namespace.resolve("comer", "~home/src/paper.tex") == (
            "hostA",
            "/home/comer/src/paper.tex",
        )

    def test_different_users_same_tree_different_names(self, namespace):
        comer = namespace.resolve("comer", "~proj/data")
        grif = namespace.resolve("grif", "~work/data")
        assert comer == grif

    def test_same_tilde_name_may_mean_different_trees(self, namespace):
        namespace.create_tree("purdue.cs.grif", "hostC", "/home/grif")
        namespace.bind("grif", "home", "purdue.cs.grif")
        assert namespace.resolve("comer", "~home/x") != namespace.resolve(
            "grif", "~home/x"
        )

    def test_canonical_name_is_location_independent(self, namespace):
        before = namespace.canonical_name("comer", "~proj/data")
        namespace.migrate_tree("purdue.cs.shared", "hostZ", "/moved")
        after = namespace.canonical_name("comer", "~proj/data")
        assert before == after == "purdue.cs.shared:/data"

    def test_migration_changes_physical_location(self, namespace):
        namespace.migrate_tree("purdue.cs.shared", "hostZ", "/moved")
        assert namespace.resolve("comer", "~proj/data") == (
            "hostZ",
            "/moved/data",
        )

    def test_unknown_tilde_name_raises(self, namespace):
        with pytest.raises(NamingError):
            namespace.resolve("comer", "~nope/x")

    def test_unknown_user_raises(self, namespace):
        with pytest.raises(NamingError):
            namespace.resolve("stranger", "~home/x")

    def test_non_tilde_name_rejected(self, namespace):
        with pytest.raises(NamingError):
            namespace.parse("/absolute/path")

    def test_duplicate_tree_rejected(self, namespace):
        with pytest.raises(NamingError):
            namespace.create_tree("purdue.cs.comer", "x", "/y")

    def test_bind_requires_existing_tree(self, namespace):
        with pytest.raises(NamingError):
            namespace.bind("comer", "x", "no.such.tree")

    def test_bindings_listed(self, namespace):
        assert namespace.bindings("comer") == {
            "home": "purdue.cs.comer",
            "proj": "purdue.cs.shared",
        }
