"""Tests for the simulated NFS environment and §6.5 resolution."""

import pytest

from repro.errors import MountError, NamingError
from repro.naming.nfs import NfsEnvironment


@pytest.fixture
def env(nfs_paper_scenario):
    return nfs_paper_scenario[0]


class TestPaperScenario:
    """The exact example from §5.3 of the paper."""

    def test_a_sees_file_through_projl(self, env):
        assert env.resolve("A", "/projl/foo") == ("C", "/usr/foo")

    def test_b_sees_file_through_others(self, env):
        assert env.resolve("B", "/others/foo") == ("C", "/usr/foo")

    def test_both_aliases_resolve_identically(self, env):
        assert env.resolve("A", "/projl/foo") == env.resolve(
            "B", "/others/foo"
        )

    def test_content_readable_through_either(self, env):
        assert env.read_file("A", "/projl/foo") == b"shared content\n"
        assert env.read_file("B", "/others/foo") == b"shared content\n"

    def test_write_through_mount_lands_on_exporter(self, env):
        env.write_file("A", "/projl/bar", b"from A")
        assert env.host("C").vfs.read_file("/usr/bar") == b"from A"
        assert env.read_file("B", "/others/bar") == b"from A"


class TestExportsAndMounts:
    def test_mount_requires_export(self):
        env = NfsEnvironment()
        env.add_host("x")
        env.add_host("y")
        env.host("y").vfs.mkdir("/data")
        with pytest.raises(MountError):
            env.mount("x", "/mnt", "y", "/data")

    def test_cannot_mount_own_export(self):
        env = NfsEnvironment()
        env.add_host("x")
        env.host("x").vfs.mkdir("/data")
        env.export("x", "/data")
        with pytest.raises(MountError):
            env.mount("x", "/mnt", "x", "/data")

    def test_double_mount_at_same_point_rejected(self, env):
        with pytest.raises(MountError):
            env.mount("A", "/projl", "C", "/usr")

    def test_duplicate_host_rejected(self, env):
        with pytest.raises(NamingError):
            env.add_host("A")

    def test_unknown_host_rejected(self, env):
        with pytest.raises(NamingError):
            env.resolve("ghost", "/anything")

    def test_is_exported(self, env):
        assert env.is_exported("C", "/usr")
        assert not env.is_exported("C", "/etc")


class TestResolution:
    def test_local_file_resolves_locally(self, env):
        env.host("A").vfs.write_file("/local.txt", b"mine")
        assert env.resolve("A", "/local.txt") == ("A", "/local.txt")

    def test_symlink_into_mount_crosses_hosts(self, env):
        a = env.host("A")
        a.vfs.mkdir("/home")
        a.vfs.symlink("/projl/foo", "/home/shortcut")
        assert env.resolve("A", "/home/shortcut") == ("C", "/usr/foo")

    def test_remote_symlink_resolved_on_exporter(self, env):
        c = env.host("C")
        c.vfs.symlink("foo", "/usr/foolink")
        assert env.resolve("A", "/projl/foolink") == ("C", "/usr/foo")

    def test_two_hop_mount_chain(self):
        # A mounts from B; B's subtree contains a mount from C.
        env = NfsEnvironment()
        for name in ("A", "B", "C"):
            env.add_host(name)
        c = env.host("C")
        c.vfs.write_file("/store/data", b"deep")
        env.export("C", "/store")
        env.mount("B", "/mid", "C", "/store")
        b = env.host("B")
        env.export("B", "/mid")
        env.mount("A", "/top", "B", "/mid")
        assert env.resolve("A", "/top/data") == ("C", "/store/data")

    def test_mount_point_itself_resolves_to_export_root(self, env):
        assert env.resolve("A", "/projl") == ("C", "/usr")

    def test_exists_through_mount(self, env):
        assert env.exists("A", "/projl/foo")
        assert not env.exists("A", "/projl/ghost")

    def test_resolve_for_write_missing_terminal(self, env):
        owner, path = env.resolve_for_write("A", "/projl/newfile")
        assert (owner, path) == ("C", "/usr/newfile")

    def test_circular_mounts_detected(self):
        env = NfsEnvironment()
        env.add_host("p")
        env.add_host("q")
        env.host("p").vfs.mkdir("/a")
        env.host("q").vfs.mkdir("/b")
        env.export("p", "/a")
        env.export("q", "/b")
        env.mount("p", "/a/loop", "q", "/b")
        env.mount("q", "/b/loop", "p", "/a")
        with pytest.raises(MountError):
            env.resolve("p", "/a/loop/loop/loop/loop/loop/loop/loop/loop/"
                        "loop/loop/loop/loop/loop/loop/loop/loop/loop/loop/"
                        "loop/loop/loop/loop/loop/loop/loop/loop/loop/loop/"
                        "loop/loop/loop/loop/loop/x")
