#!/usr/bin/env python3
"""A live shadow service over real TCP sockets (§7).

The prototype ran clients and servers as UNIX processes speaking TCP/IP;
this example does the same on localhost: a shadow server listening on a
real socket, a client connecting through it, and a
:class:`LocalExecutor` that runs the job's commands as genuine
subprocesses (``wc``, ``sort``, ``grep``...).

Run:  python examples/live_tcp_service.py
"""

from repro.core.editor import ShadowEditor
from repro.core.service import tcp_pair
from repro.jobs.executor import LocalExecutor


def main() -> None:
    deployment = tcp_pair(executor=LocalExecutor())
    try:
        client = deployment.client
        print(
            f"shadow server listening on "
            f"127.0.0.1:{deployment.listener.port} (real socket)\n"
        )

        # Edit through the shadow editor wrapper: a "user editor" that
        # appends a line each session.
        def appending_editor(path: str, old: bytes) -> bytes:
            count = old.count(b"\n") + 1
            return old + b"observation %d: photon flux nominal\n" % count

        editor = ShadowEditor(client, appending_editor, editor_name="demo-ed")
        for _ in range(3):
            editor.edit("/lab/observations.txt")
        print(f"editing sessions: {editor.sessions}, "
              f"versions created: {editor.versions_created}")

        job_id = client.submit(
            "wc observations.txt\nsort observations.txt > sorted.txt",
            ["/lab/observations.txt"],
        )
        print(f"submitted {job_id} (runs as real subprocesses)")
        bundle = client.fetch_output(job_id)
        print(f"exit code : {bundle.exit_code}")
        print(f"wc output : {bundle.stdout.decode().strip()}")
        print(f"sorted.txt: {bundle.output_files['sorted.txt'].decode()!r}")

        records = client.job_status(job_id)
        print(f"status    : {records[0]['state']}")
    finally:
        deployment.close()
    print("\nserver closed.")


if __name__ == "__main__":
    main()
