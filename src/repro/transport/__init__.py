"""Interchangeable transports: loopback, simulated wire, real TCP (§7)."""

from repro.transport.base import (
    ChannelHandler,
    ChannelStats,
    LoopbackChannel,
    RequestChannel,
)
from repro.transport.framing import (
    HEADER_SIZE,
    MAX_FRAME_SIZE,
    ChecksummedChannel,
    FrameDecoder,
    checksummed_handler,
    decode_single_frame,
    encode_frame,
    frame_overhead,
)
from repro.transport.flaky import FailNextChannel, FlakyChannel
from repro.transport.sim import RouteWire, SimChannel, Wire
from repro.transport.tcp import TcpChannel, TcpChannelServer

__all__ = [
    "HEADER_SIZE",
    "MAX_FRAME_SIZE",
    "ChannelHandler",
    "ChannelStats",
    "ChecksummedChannel",
    "FailNextChannel",
    "FlakyChannel",
    "FrameDecoder",
    "LoopbackChannel",
    "RequestChannel",
    "RouteWire",
    "SimChannel",
    "TcpChannel",
    "TcpChannelServer",
    "Wire",
    "checksummed_handler",
    "decode_single_frame",
    "encode_frame",
    "frame_overhead",
]
