"""Tests for congestion / background-traffic models."""

import pytest

from repro.errors import SimulationError
from repro.simnet.link import CLEAR_56K
from repro.simnet.traffic import (
    BurstyTraffic,
    CongestedLink,
    ConstantTraffic,
    DiurnalTraffic,
)


class TestConstantTraffic:
    def test_default_is_uncongested(self):
        assert ConstantTraffic().utilization_at(123.0) == 1.0

    def test_fixed_level(self):
        assert ConstantTraffic(available=0.4).utilization_at(0.0) == 0.4

    def test_rejects_zero(self):
        with pytest.raises(SimulationError):
            ConstantTraffic(available=0.0).utilization_at(0.0)


class TestDiurnalTraffic:
    def test_quietest_at_phase_zero(self):
        model = DiurnalTraffic(peak_load=0.8, base_load=0.1)
        night = model.utilization_at(0.0)
        midday = model.utilization_at(43_200.0)
        assert night > midday

    def test_midday_availability_matches_peak_load(self):
        model = DiurnalTraffic(peak_load=0.8, base_load=0.1)
        assert model.utilization_at(43_200.0) == pytest.approx(0.2)

    def test_period_repeats(self):
        model = DiurnalTraffic()
        assert model.utilization_at(1000.0) == pytest.approx(
            model.utilization_at(1000.0 + 86_400.0)
        )

    def test_invalid_loads_rejected(self):
        with pytest.raises(SimulationError):
            DiurnalTraffic(peak_load=0.1, base_load=0.5).utilization_at(0.0)


class TestBurstyTraffic:
    def test_deterministic_per_seed(self):
        a = BurstyTraffic(seed=7)
        b = BurstyTraffic(seed=7)
        times = [0.0, 31.0, 200.0, 999.0]
        assert [a.utilization_at(t) for t in times] == [
            b.utilization_at(t) for t in times
        ]

    def test_different_seeds_differ(self):
        a = BurstyTraffic(seed=1)
        b = BurstyTraffic(seed=2)
        times = [30.0 * slot for slot in range(40)]
        assert [a.utilization_at(t) for t in times] != [
            b.utilization_at(t) for t in times
        ]

    def test_constant_within_a_slot(self):
        model = BurstyTraffic(slot_seconds=30.0)
        assert model.utilization_at(60.0) == model.utilization_at(89.9)

    def test_always_in_range(self):
        model = BurstyTraffic()
        for slot in range(100):
            value = model.utilization_at(slot * 30.0)
            assert 0 < value <= 1

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            BurstyTraffic().utilization_at(-1.0)


class TestCongestedLink:
    def test_congestion_slows_transfers(self):
        congested = CongestedLink(CLEAR_56K, ConstantTraffic(available=0.5))
        clear = CLEAR_56K.transfer_seconds(10_000)
        assert congested.transfer_seconds(10_000) > clear

    def test_link_at_samples_model(self):
        congested = CongestedLink(
            CLEAR_56K, DiurnalTraffic(peak_load=0.8, base_load=0.0)
        )
        night_link = congested.link_at(0.0)
        midday_link = congested.link_at(43_200.0)
        assert (
            night_link.effective_bytes_per_second
            > midday_link.effective_bytes_per_second
        )

    def test_wire_bytes_independent_of_congestion(self):
        congested = CongestedLink(CLEAR_56K, ConstantTraffic(available=0.5))
        assert congested.wire_bytes(1000) == CLEAR_56K.wire_bytes(1000)
