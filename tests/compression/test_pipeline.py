"""Tests for the composable compression pipeline."""

import pytest

from repro.compression.pipeline import (
    HUFFMAN,
    LZ77,
    REGISTRY,
    RLE,
    Codec,
    Pipeline,
    register,
)
from repro.errors import CompressionError
from repro.workload.files import make_binary_file, make_text_file


class TestFraming:
    def test_roundtrip_default_pipeline(self):
        pipeline = Pipeline.default()
        data = make_text_file(10_000, seed=41)
        assert pipeline.decompress(pipeline.compress(data)) == data

    def test_identity_pipeline_roundtrip(self):
        pipeline = Pipeline.identity()
        data = b"untouched"
        framed = pipeline.compress(data)
        assert framed.endswith(data)
        assert pipeline.decompress(framed) == data

    def test_any_pipeline_can_decode_any_frame(self):
        # The frame is self-describing: a receiver configured differently
        # still decodes.
        data = make_text_file(5_000, seed=42)
        framed = Pipeline([LZ77, HUFFMAN]).compress(data)
        assert Pipeline.identity().decompress(framed) == data

    def test_bad_magic_rejected(self):
        with pytest.raises(CompressionError):
            Pipeline.default().decompress(b"NOPE....")

    def test_truncated_header_rejected(self):
        with pytest.raises(CompressionError):
            Pipeline.default().decompress(b"SCP1")

    def test_unknown_codec_name_rejected(self):
        framed = bytearray(Pipeline.identity().compress(b"x"))
        framed[4] = 1  # claim one stage
        framed[5:5] = b"\x05ghost"
        with pytest.raises(CompressionError):
            Pipeline.default().decompress(bytes(framed))


class TestExpansionGuard:
    def test_incompressible_data_ships_unchanged(self):
        data = make_binary_file(4_000, seed=43)
        framed = Pipeline.default().compress(data)
        # Only the 5-byte empty frame header is added.
        assert len(framed) == len(data) + 5
        assert Pipeline.default().decompress(framed) == data

    def test_compressible_data_shrinks(self):
        data = make_text_file(20_000, seed=44)
        framed = Pipeline.default().compress(data)
        assert len(framed) < len(data)

    def test_ratio_empty_input(self):
        assert Pipeline.default().ratio(b"") == 1.0

    def test_ratio_below_one_for_text(self):
        assert Pipeline.default().ratio(make_text_file(20_000, seed=45)) < 1.0


class TestRegistry:
    def test_builtins_present(self):
        assert {"rle", "lz77", "huffman"} <= set(REGISTRY)

    def test_named_builds_pipeline(self):
        pipeline = Pipeline.named(["rle", "huffman"])
        assert [codec.name for codec in pipeline.codecs] == ["rle", "huffman"]

    def test_named_rejects_unknown(self):
        with pytest.raises(CompressionError):
            Pipeline.named(["zstd"])

    def test_register_rejects_duplicates(self):
        with pytest.raises(CompressionError):
            register(Codec("rle", bytes, bytes))

    def test_registered_codec_usable(self):
        name = "test-reverse"
        if name not in REGISTRY:
            register(Codec(name, lambda d: d[::-1], lambda d: d[::-1]))
        pipeline = Pipeline.named([name])
        # Reversal never shrinks, so the guard skips it — but framing works.
        assert pipeline.decompress(pipeline.compress(b"abc")) == b"abc"


class TestStacking:
    def test_rle_then_huffman(self):
        pipeline = Pipeline([RLE, HUFFMAN])
        data = b"a" * 5_000 + make_text_file(5_000, seed=46)
        assert pipeline.decompress(pipeline.compress(data)) == data

    def test_order_recorded_in_frame(self):
        data = make_text_file(10_000, seed=47)
        framed = Pipeline([LZ77, HUFFMAN]).compress(data)
        stage_count = framed[4]
        assert stage_count >= 1  # at least LZ77 applied on text
