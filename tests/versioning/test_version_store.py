"""Tests for the client-side version store and update production."""

import pytest

from repro.diffing.model import decode_delta
from repro.errors import VersionNotFoundError, VersioningError
from repro.versioning.store import DeltaUpdate, FullContent, VersionStore
from repro.workload.edits import modify_percent
from repro.workload.files import make_text_file

KEY = "local/ws:/data/file.dat"


@pytest.fixture
def store():
    return VersionStore()


class TestRecording:
    def test_record_creates_chain(self, store):
        version = store.record_edit(KEY, b"content")
        assert version.number == 1
        assert store.tracks(KEY)

    def test_separate_files_have_separate_chains(self, store):
        store.record_edit(KEY, b"a")
        store.record_edit("other", b"b")
        assert store.latest(KEY).content == b"a"
        assert store.latest("other").content == b"b"

    def test_names_sorted(self, store):
        store.record_edit("b", b"")
        store.record_edit("a", b"")
        assert store.names == ["a", "b"]

    def test_unknown_file_raises(self, store):
        with pytest.raises(VersionNotFoundError):
            store.latest("ghost")

    def test_retained_bytes_sums_chains(self, store):
        store.record_edit("a", b"12")
        store.record_edit("b", b"345")
        assert store.retained_bytes == 5

    def test_invalid_max_retained(self):
        with pytest.raises(VersioningError):
            VersionStore(max_retained=0)


class TestUpdateProduction:
    def test_first_update_is_full(self, store):
        store.record_edit(KEY, b"v1 content")
        update = store.update_from(KEY, server_base=None)
        assert isinstance(update, FullContent)
        assert update.content == b"v1 content"
        assert update.number == 1

    def test_zero_base_means_full(self, store):
        store.record_edit(KEY, b"v1")
        assert isinstance(store.update_from(KEY, server_base=0), FullContent)

    def test_small_edit_becomes_delta(self, store):
        base = make_text_file(10_000, seed=50)
        store.record_edit(KEY, base)
        edited = modify_percent(base, 2, seed=50)
        store.record_edit(KEY, edited)
        update = store.update_from(KEY, server_base=1)
        assert isinstance(update, DeltaUpdate)
        assert update.base_number == 1
        assert update.number == 2
        assert update.encoded_size < len(edited)

    def test_delta_reconstructs_target(self, store):
        base = make_text_file(5_000, seed=51)
        edited = modify_percent(base, 5, seed=51)
        store.record_edit(KEY, base)
        store.record_edit(KEY, edited)
        update = store.update_from(KEY, server_base=1)
        assert isinstance(update, DeltaUpdate)
        rebuilt = decode_delta(update.delta.encode()).apply(base)
        assert rebuilt == edited

    def test_pruned_base_falls_back_to_full(self):
        store = VersionStore(max_retained=1)
        store.record_edit(KEY, b"v1")
        store.record_edit(KEY, b"v2")
        update = store.update_from(KEY, server_base=1)
        assert isinstance(update, FullContent)

    def test_rewritten_file_falls_back_to_full(self, store):
        # When the delta would exceed the full file, ship the file.
        store.record_edit(KEY, make_text_file(2_000, seed=52))
        store.record_edit(KEY, make_text_file(2_000, seed=53))
        update = store.update_from(KEY, server_base=1)
        assert isinstance(update, FullContent)

    def test_server_already_current_gets_empty_delta(self, store):
        store.record_edit(KEY, b"same\ncontent\n")
        update = store.update_from(KEY, server_base=1)
        assert isinstance(update, DeltaUpdate)
        assert update.delta.ops == ()

    def test_explicit_target_version(self, store):
        store.record_edit(KEY, b"v1\n")
        store.record_edit(KEY, b"v2\n")
        store.record_edit(KEY, b"v3\n")
        update = store.update_from(KEY, server_base=1, target=2)
        assert update.number == 2

    def test_respects_configured_algorithm(self):
        store = VersionStore(diff_algorithm="tichy")
        base = make_text_file(5_000, seed=54)
        store.record_edit(KEY, base)
        store.record_edit(KEY, modify_percent(base, 2, seed=54))
        update = store.update_from(KEY, server_base=1)
        assert isinstance(update, DeltaUpdate)
        assert update.delta.algorithm == "tichy"


class TestAcknowledgement:
    def test_acknowledge_prunes_older(self, store):
        for index in range(4):
            store.record_edit(KEY, b"v%d" % index)
        dropped = store.acknowledge(KEY, 3)
        assert dropped == 2
        assert store.chain(KEY).retained_numbers == [3, 4]

    def test_after_acknowledge_delta_from_acked_base_works(self, store):
        base = make_text_file(3_000, seed=55)
        store.record_edit(KEY, base)
        store.acknowledge(KEY, 1)
        edited = modify_percent(base, 3, seed=55)
        store.record_edit(KEY, edited)
        update = store.update_from(KEY, server_base=1)
        assert isinstance(update, DeltaUpdate)
