"""The server-side job queue (§5.2, §6.4).

"Depending on the system state, the server may process such a request
immediately or queue it up for later processing."  Jobs wait here until
their shadow files are current and the scheduler says the machine can
take more work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import JobError, UnknownJobError
from repro.jobs.spec import JobRequest


@dataclass
class QueuedJob:
    """A submission waiting at the supercomputer."""

    job_id: str
    owner: str
    request: JobRequest
    file_keys: Tuple[str, ...]
    file_versions: Dict[str, int]
    #: Optional content identity per key ("" = not supplied, skip checks).
    file_checksums: Dict[str, str] = field(default_factory=dict)
    enqueued_at: float = 0.0
    priority: int = 0
    #: End-to-end trace id of the Submit that enqueued this job; the
    #: async execution's trace carries it so client span, request span
    #: and job span join into one trace.
    trace_id: str = ""
    #: Root span id of the Submit request that enqueued this job; the
    #: async execution's span parents on it, so the job hangs off the
    #: submit in the assembled span tree ("" = submit recorded no span).
    parent_span: str = ""

    def __post_init__(self) -> None:
        if set(self.file_versions) != set(self.file_keys):
            raise JobError(
                f"job {self.job_id}: file_versions must cover file_keys"
            )


class JobQueue:
    """Priority-then-FIFO queue of jobs awaiting execution."""

    def __init__(self) -> None:
        self._jobs: List[QueuedJob] = []

    def push(self, job: QueuedJob) -> None:
        self._jobs.append(job)

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: str) -> bool:
        return any(job.job_id == job_id for job in self._jobs)

    def peek_ready(self, is_ready) -> Optional[QueuedJob]:
        """Best runnable job: highest priority, then earliest submission."""
        candidates = [job for job in self._jobs if is_ready(job)]
        if not candidates:
            return None
        return min(candidates, key=lambda job: (-job.priority, job.enqueued_at))

    def pop(self, job_id: str) -> QueuedJob:
        for index, job in enumerate(self._jobs):
            if job.job_id == job_id:
                return self._jobs.pop(index)
        raise UnknownJobError(job_id)

    def remove_for_owner(self, owner: str) -> List[QueuedJob]:
        """Drop all of one client's queued jobs (disconnect handling)."""
        kept, removed = [], []
        for job in self._jobs:
            (removed if job.owner == owner else kept).append(job)
        self._jobs = kept
        return removed

    def snapshot(self) -> List[QueuedJob]:
        return list(self._jobs)
