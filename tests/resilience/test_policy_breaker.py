"""Unit tests for the resilience layer: policy, breaker, session."""

import random

import pytest

from repro.core.protocol import Envelope, Notify, Ok, decode_message
from repro.core.server import ShadowServer
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    RetryExhaustedError,
    ShadowError,
    TransportClosedError,
    TransportError,
)
from repro.metrics.recorder import ResilienceStats
from repro.resilience.breaker import BreakerPolicy, CircuitBreaker
from repro.resilience.policy import RetryPolicy
from repro.resilience.session import RawSession, ResilientSession
from repro.simnet.clock import SimulatedClock
from repro.transport.base import LoopbackChannel
from repro.transport.flaky import FailNextChannel


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay_for(attempt, rng) for attempt in (1, 2, 3)]
        assert delays == [1.0, 2.0, 4.0]

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=10.0, max_delay=5.0, jitter=0.0
        )
        assert policy.delay_for(4, random.Random(0)) == 5.0

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.25)
        rng = random.Random(7)
        for _ in range(200):
            delay = policy.delay_for(1, rng)
            assert 0.75 <= delay <= 1.25

    def test_jitter_is_deterministic_under_a_seed(self):
        policy = RetryPolicy()
        a = [policy.delay_for(i, random.Random(3)) for i in (1, 2, 3)]
        b = [policy.delay_for(i, random.Random(3)) for i in (1, 2, 3)]
        assert a == b

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ShadowError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ShadowError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ShadowError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ShadowError):
            RetryPolicy(deadline=0.0)

    def test_none_policy_is_single_attempt(self):
        assert RetryPolicy.none().max_attempts == 1


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3))
        assert breaker.record_failure(0.0) is False
        assert breaker.record_failure(1.0) is False
        assert breaker.record_failure(2.0) is True
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allows(2.5)

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2))
        breaker.record_failure(0.0)
        breaker.record_success()
        assert breaker.record_failure(1.0) is False
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_after_cooldown(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, reset_after=10.0)
        )
        breaker.record_failure(0.0)
        assert not breaker.allows(5.0)
        assert breaker.allows(10.0)  # the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, reset_after=10.0)
        )
        breaker.record_failure(0.0)
        assert breaker.allows(10.0)
        assert breaker.record_failure(11.0) is True
        assert not breaker.allows(12.0)


def _notify(version=1):
    return Notify(
        client_id="alice@ws",
        key="//d/f",
        version=version,
        size=3,
        checksum="abc",
    )


class _CountingChannel(LoopbackChannel):
    """Loopback that also records decoded request ids."""

    def __init__(self, handler):
        super().__init__(handler)
        self.rids = []

    def _deliver(self, payload):
        message = decode_message(payload)
        if isinstance(message, Envelope):
            self.rids.append(message.rid)
        return super()._deliver(payload)


class TestResilientSession:
    def build(self, policy=None, breaker=None, handler=None, clock=None):
        handler = handler or (lambda payload: Ok(detail="fine").to_wire())
        channel = FailNextChannel(_CountingChannel(handler))
        stats = ResilienceStats()
        session = ResilientSession(
            client_id="alice@ws",
            channel=channel,
            policy=policy or RetryPolicy(base_delay=0.01, jitter=0.0),
            breaker=breaker or CircuitBreaker(),
            clock=clock,
            stats=stats,
        )
        return session, channel, stats

    def test_envelopes_every_request(self):
        session, channel, _ = self.build()
        session.send(_notify())
        assert len(channel.inner.rids) == 1

    def test_retry_reuses_the_same_request_id(self):
        # The heart of idempotency: the retry IS the same request.
        session, channel, stats = self.build()
        channel.fail_next(count=2)
        reply = session.send(_notify())
        assert isinstance(reply, Ok)
        assert len(set(channel.inner.rids)) == 1
        assert stats.retries == 2

    def test_distinct_requests_get_distinct_ids(self):
        session, channel, _ = self.build()
        session.send(_notify(1))
        session.send(_notify(2))
        assert len(set(channel.inner.rids)) == 2

    def test_two_sessions_never_share_ids(self):
        # Same seed, same client id: a rebuilt session must not collide
        # with replies cached for the previous incarnation.
        first, channel, _ = self.build()
        first.send(_notify())
        second = ResilientSession(
            client_id="alice@ws", channel=channel, policy=RetryPolicy.none()
        )
        second.send(_notify())
        assert len(set(channel.inner.rids)) == 2

    def test_exhaustion_raises_retry_exhausted(self):
        session, channel, stats = self.build(
            policy=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        )
        channel.fail_next(count=3)
        with pytest.raises(RetryExhaustedError):
            session.send(_notify())
        assert stats.giveups == 1
        assert stats.attempts == 3

    def test_closed_channel_not_retried(self):
        session, channel, stats = self.build()
        channel.close()
        with pytest.raises(TransportClosedError):
            session.send(_notify())
        assert stats.retries == 0

    def test_backoff_charges_simulated_clock(self):
        clock = SimulatedClock()
        session, channel, _ = self.build(
            policy=RetryPolicy(
                max_attempts=3, base_delay=1.0, multiplier=2.0, jitter=0.0
            ),
            clock=clock,
        )
        channel.fail_next(count=2)
        session.send(_notify())
        assert clock.now() == pytest.approx(1.0 + 2.0)  # two waits, no sleep

    def test_deadline_bounds_the_whole_request(self):
        clock = SimulatedClock()
        session, channel, stats = self.build(
            policy=RetryPolicy(
                max_attempts=10,
                base_delay=1.0,
                multiplier=2.0,
                jitter=0.0,
                deadline=2.0,
            ),
            clock=clock,
        )
        channel.fail_next(count=10)
        with pytest.raises(DeadlineExceededError):
            session.send(_notify())
        assert stats.deadline_exceeded == 1
        assert clock.now() <= 2.0

    def test_breaker_short_circuits_without_touching_wire(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1))
        session, channel, stats = self.build(
            policy=RetryPolicy(max_attempts=1), breaker=breaker
        )
        channel.fail_next(count=1)
        with pytest.raises(RetryExhaustedError):
            session.send(_notify())
        seen = channel.requests_seen
        with pytest.raises(CircuitOpenError):
            session.send(_notify())
        assert channel.requests_seen == seen  # nothing hit the wire
        assert stats.breaker_short_circuits == 1
        assert stats.breaker_opened == 1

    def test_server_dedupes_replayed_request_id(self):
        # Reply lost after processing; the retry must not double-apply.
        server = ShadowServer()
        channel = FailNextChannel(LoopbackChannel(server.handle))
        session = ResilientSession(
            client_id="alice@ws",
            channel=channel,
            policy=RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0),
        )
        from repro.core.protocol import Hello, Submit, SubmitReply

        session.send(Hello(client_id="alice@ws", domain="//ws"))
        channel.fail_next(count=1, lose_reply=True)
        reply = session.send(
            Submit(client_id="alice@ws", script="echo once", files=())
        )
        assert isinstance(reply, SubmitReply)
        assert len(server.status) == 1  # processed exactly once
        assert server.resilience.duplicate_replies_served == 1


class TestRawSession:
    def test_no_envelope_no_retry(self):
        server = ShadowServer()
        channel = FailNextChannel(_CountingChannel(server.handle))
        session = RawSession(channel)
        from repro.core.protocol import Hello

        session.send(Hello(client_id="alice@ws", domain="//ws"))
        assert channel.inner.rids == []  # bare message, no envelope
        channel.fail_next(count=1)
        with pytest.raises(TransportError):
            session.send(Hello(client_id="alice@ws", domain="//ws"))
