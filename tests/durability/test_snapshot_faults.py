"""Snapshot rotation under disk pressure: ENOSPC and short writes.

The cadence snapshot rotates the live journal aside *before* writing
the new snapshot.  If the snapshot write then dies (full disk, torn
write), nothing acknowledged may be at risk: the old snapshot plus the
rotated ``journal.wal.old`` plus whatever lands in the fresh
``journal.wal`` must remain a complete recovery source, and the request
that happened to trigger the snapshot must still succeed.
"""

import errno
import os

import pytest

from repro.core.client import ShadowClient
from repro.core.server import ShadowServer
from repro.core.workspace import MappingWorkspace
from repro.durability.manager import JOURNAL_FILE, JOURNAL_ROTATED, SNAPSHOT_FILE
from repro.transport.base import LoopbackChannel
from repro.workload.files import make_text_file


def connect(server):
    client = ShadowClient("alice@ws", MappingWorkspace())
    client.connect(server.name, LoopbackChannel(server.handle))
    return client


def content_for(index, size=1_200):
    return make_text_file(size, seed=index)


def no_space(path, state):
    raise OSError(errno.ENOSPC, "No space left on device")


def counter_value(server, name):
    snapshot = server.telemetry.snapshot()
    values = {entry["name"]: entry["value"] for entry in snapshot["counters"]}
    return values.get(name, 0.0)


def test_enospc_snapshot_keeps_journal_as_recovery_source(
    tmp_path, monkeypatch
):
    server = ShadowServer(journal_dir=str(tmp_path), snapshot_every=4)
    client = connect(server)
    monkeypatch.setattr("repro.durability.manager.write_snapshot", no_space)

    # Enough edits to cross the cadence (each edit journals >= 2 records
    # plus a reply record): the snapshot attempt fails mid-request, but
    # every write is acknowledged normally — disk pressure on the
    # background snapshot never surfaces on the request path.
    for index in range(4):
        assert client.write_file(f"/data/f{index}.dat", content_for(index)) == 1

    assert counter_value(server, "journal_snapshot_failures") >= 1
    # The rotation happened, the snapshot did not: records live in .old.
    assert os.path.exists(os.path.join(str(tmp_path), JOURNAL_ROTATED))
    assert not os.path.exists(os.path.join(str(tmp_path), SNAPSHOT_FILE))

    # Crash here.  Recovery must rebuild everything from .old + .wal.
    server.durability.abandon()
    monkeypatch.undo()
    revived = ShadowServer(journal_dir=str(tmp_path))
    for index in range(4):
        key = str(client.workspace.resolve(f"/data/f{index}.dat"))
        entry = revived.cache.peek_entry(key)
        assert entry is not None, f"f{index} lost to the failed snapshot"
        assert entry.version == 1
        assert entry.content == content_for(index)
    revived.close()


def test_second_failure_appends_to_old_instead_of_clobbering(
    tmp_path, monkeypatch
):
    """Two failed snapshots in a row: the second rotation must append
    the live journal behind ``.old``, not replace it — replacing would
    silently drop every record the first rotation set aside."""
    server = ShadowServer(journal_dir=str(tmp_path), snapshot_every=3)
    client = connect(server)
    monkeypatch.setattr("repro.durability.manager.write_snapshot", no_space)

    total = 8  # enough edits to trip the cadence at least twice
    for index in range(total):
        client.write_file(f"/data/f{index}.dat", content_for(index))
    assert counter_value(server, "journal_snapshot_failures") >= 2

    server.durability.abandon()
    monkeypatch.undo()
    revived = ShadowServer(journal_dir=str(tmp_path))
    for index in range(total):
        key = str(client.workspace.resolve(f"/data/f{index}.dat"))
        entry = revived.cache.peek_entry(key)
        assert entry is not None, f"f{index} dropped by the second rotation"
        assert entry.content == content_for(index)
    revived.close()


def test_short_write_torn_snapshot_falls_back_to_journal(tmp_path):
    """A snapshot torn mid-write (short write + crash) must be treated
    as absent: recovery falls back to replaying the journal files."""
    server = ShadowServer(journal_dir=str(tmp_path), snapshot_every=10_000)
    client = connect(server)
    for index in range(3):
        client.write_file(f"/data/f{index}.dat", content_for(index))
    server.durability.flush()
    server.durability.abandon()

    # The machine died halfway through writing snapshot.bin directly
    # (no tmp-rename discipline — e.g. a partial restore from backup).
    snapshot_path = os.path.join(str(tmp_path), SNAPSHOT_FILE)
    with open(snapshot_path, "wb") as handle:
        handle.write(b"\x00\x01torn")

    revived = ShadowServer(journal_dir=str(tmp_path))
    for index in range(3):
        key = str(client.workspace.resolve(f"/data/f{index}.dat"))
        entry = revived.cache.peek_entry(key)
        assert entry is not None
        assert entry.content == content_for(index)
    revived.close()


def test_recovery_after_failure_then_success_uses_fresh_snapshot(
    tmp_path, monkeypatch
):
    """Disk pressure clears: the next cadence crossing snapshots
    successfully, removes ``.old``, and recovery uses the snapshot."""
    server = ShadowServer(journal_dir=str(tmp_path), snapshot_every=3)
    client = connect(server)

    monkeypatch.setattr("repro.durability.manager.write_snapshot", no_space)
    for index in range(3):
        client.write_file(f"/data/f{index}.dat", content_for(index))
    assert counter_value(server, "journal_snapshot_failures") >= 1
    monkeypatch.undo()  # the disk frees up

    for index in range(3, 6):
        client.write_file(f"/data/f{index}.dat", content_for(index))
    assert counter_value(server, "journal_snapshots") >= 1
    # Success cleaned up the rotated file and wrote a real snapshot.
    assert not os.path.exists(os.path.join(str(tmp_path), JOURNAL_ROTATED))
    assert os.path.exists(os.path.join(str(tmp_path), SNAPSHOT_FILE))

    server.durability.abandon()
    revived = ShadowServer(journal_dir=str(tmp_path))
    assert revived.durability.last_recovery["had_snapshot"] is True
    for index in range(6):
        key = str(client.workspace.resolve(f"/data/f{index}.dat"))
        entry = revived.cache.peek_entry(key)
        assert entry is not None
        assert entry.content == content_for(index)
    revived.close()
