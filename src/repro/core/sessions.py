"""Per-client session state at the shadow server (§6.1).

"A server process listens at a well-known port for connections from
clients" — and under the TCP transport every connection is its own
thread, so everything the server keeps *per client* must be safe to
touch from many threads at once.  This module gathers that state into
one :class:`ClientSession` object per client id:

* the traffic account (§2.2 volume charging);
* the bounded idempotent-reply cache (retried requests answered
  verbatim, exactly-once effects over at-least-once delivery);
* the registered callback channel for server->client pushes;
* the session's naming domain and greeted flag (has it said Hello?).

Each session carries its own re-entrant lock.  The server serialises
request handling *per session*: two requests from the same client run
one after the other (so a retry can never race its original), while
requests from different clients never contend.  The
:class:`SessionRegistry` guards only the id->session map itself.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ProtocolError
from repro.telemetry.registry import MetricsRegistry
from repro.transport.base import RequestChannel

#: Most concurrent partial chunk streams one session may hold.  A
#: client's flow-control window keeps it at a handful; anything beyond
#: this is a protocol violation, not load.
MAX_CHUNK_ASSEMBLIES = 16

#: Largest total payload a chunked stream may declare, bounding the
#: reassembly buffer a single client can pin.
MAX_CHUNK_PAYLOAD_BYTES = 256 * 1024 * 1024


class _ChunkAssembly:
    """Reassembly buffer for one in-flight ``(key, version)`` stream."""

    __slots__ = ("total", "size", "parts")

    def __init__(self, total: int, size: int) -> None:
        self.total = total
        self.size = size
        self.parts: Dict[int, bytes] = {}


class TrafficAccount:
    """Per-client traffic totals (§2.2: "users will be charged for their
    use of network services in proportion to the volume of traffic
    generated").

    A compat view over :class:`~repro.telemetry.registry.MetricsRegistry`
    counters named ``traffic_<field>_total``; when owned by a
    :class:`ClientSession` the series carry a ``client`` label in the
    server's registry, so per-tenant byte charging shows up directly in
    ``Stats`` snapshots and Prometheus scrapes.  Constructed bare it
    backs itself with a private registry (the old value-object usage).
    """

    COUNTERS: Tuple[str, ...] = (
        "requests",
        "bytes_in",
        "bytes_out",
        "pushed_bytes",
    )

    def __init__(
        self,
        requests: int = 0,
        bytes_in: int = 0,
        bytes_out: int = 0,
        pushed_bytes: int = 0,
        registry: Optional[MetricsRegistry] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self._registry = registry if registry is not None else MetricsRegistry()
        self._labels = dict(labels or {})
        for name in self.COUNTERS:
            self._registry.counter(self._metric(name), self._labels)
        for name, value in (
            ("requests", requests),
            ("bytes_in", bytes_in),
            ("bytes_out", bytes_out),
            ("pushed_bytes", pushed_bytes),
        ):
            if value:
                setattr(self, name, value)

    @staticmethod
    def _metric(name: str) -> str:
        return f"traffic_{name}_total"

    @property
    def total_bytes(self) -> int:
        return self.bytes_in + self.bytes_out + self.pushed_bytes

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.COUNTERS}

    def __repr__(self) -> str:
        return f"TrafficAccount({self.as_dict()})"


def _traffic_counter(name: str) -> property:
    metric = TrafficAccount._metric(name)

    def fget(self: TrafficAccount) -> int:
        return int(self._registry.counter(metric, self._labels).value)

    def fset(self: TrafficAccount, value: int) -> None:
        self._registry.counter(metric, self._labels).set(value)

    return property(fget, fset)


for _name in TrafficAccount.COUNTERS:
    setattr(TrafficAccount, _name, _traffic_counter(_name))
del _name


class ClientSession:
    """Everything the server keeps for one client id."""

    def __init__(
        self,
        client_id: str,
        reply_cache_size: int = 1024,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.client_id = client_id
        #: Serialises request handling for this client.  Re-entrant: a
        #: handler that recursively feeds a message back through the
        #: server (background pulls do) must not self-deadlock.
        self.lock = threading.RLock()
        labels = {"client": client_id} if registry is not None else None
        self.account = TrafficAccount(registry=registry, labels=labels)
        self.reply_cache_size = reply_cache_size
        self._replies: "OrderedDict[str, bytes]" = OrderedDict()
        self.domain: str = ""
        #: True between Hello and Bye; requests other than Hello are
        #: refused while False.
        self.greeted = False
        self.callback: Optional[RequestChannel] = None
        #: (key, version) -> partial chunked-update reassembly.  Same-
        #: client requests serialise on :attr:`lock`, so no extra
        #: locking is needed here.
        self._assemblies: Dict[Tuple[str, int], _ChunkAssembly] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def greet(self, domain: str) -> None:
        """Start a session incarnation: replies cached for an earlier
        life of this client can only ever be wrong answers now."""
        self.domain = domain
        self.greeted = True
        self._replies.clear()
        self._assemblies.clear()

    def farewell(self) -> None:
        """End the incarnation but keep the traffic account: volume
        charges outlive connections (§2.2)."""
        self.greeted = False
        self.callback = None
        self._replies.clear()
        self._assemblies.clear()

    # ------------------------------------------------------------------
    # chunked-update reassembly
    # ------------------------------------------------------------------
    def chunk_add(
        self,
        key: str,
        version: int,
        seq: int,
        total: int,
        size: int,
        data: bytes,
    ) -> Optional[bytes]:
        """Buffer one chunk; the full payload once every chunk arrived.

        Chunks may arrive out of order (a retried chunk lands after its
        successors) and duplicated (a replay whose rid fell out of the
        reply cache); both are absorbed.  Malformed streams raise
        :class:`ProtocolError` and drop the assembly, so a bad client
        cannot pin buffer space.
        """
        if total < 1:
            raise ProtocolError(f"bad chunk total {total}")
        if not 0 <= seq < total:
            raise ProtocolError(f"chunk seq {seq} outside 0..{total - 1}")
        if not 0 <= size <= MAX_CHUNK_PAYLOAD_BYTES:
            raise ProtocolError(f"bad chunked payload size {size}")
        stream = (key, version)
        assembly = self._assemblies.get(stream)
        if assembly is None:
            if len(self._assemblies) >= MAX_CHUNK_ASSEMBLIES:
                raise ProtocolError(
                    "too many partial chunk streams "
                    f"(max {MAX_CHUNK_ASSEMBLIES})"
                )
            assembly = _ChunkAssembly(total, size)
            self._assemblies[stream] = assembly
        if assembly.total != total or assembly.size != size:
            del self._assemblies[stream]
            raise ProtocolError(
                f"chunk stream for {key} v{version} changed shape mid-flight"
            )
        assembly.parts[seq] = data
        if len(assembly.parts) < assembly.total:
            return None
        del self._assemblies[stream]
        payload = b"".join(assembly.parts[i] for i in range(assembly.total))
        if len(payload) != assembly.size:
            raise ProtocolError(
                f"chunked payload for {key} v{version} reassembled to "
                f"{len(payload)} bytes, declared {assembly.size}"
            )
        return payload

    def chunks_received(self, key: str, version: int) -> int:
        assembly = self._assemblies.get((key, version))
        return len(assembly.parts) if assembly is not None else 0

    @property
    def chunk_assemblies(self) -> int:
        """Partial chunk streams currently buffered."""
        return len(self._assemblies)

    # ------------------------------------------------------------------
    # idempotent reply cache
    # ------------------------------------------------------------------
    def cached_reply(self, request_id: str) -> Optional[bytes]:
        """The stored reply for a retried request id, freshened to MRU."""
        reply = self._replies.get(request_id)
        if reply is not None:
            self._replies.move_to_end(request_id)
        return reply

    def store_reply(self, request_id: str, encoded: bytes) -> None:
        self._replies[request_id] = encoded
        while len(self._replies) > self.reply_cache_size:
            self._replies.popitem(last=False)

    @property
    def reply_cache_entries(self) -> int:
        return len(self._replies)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def charge(self, bytes_in: int, bytes_out: int) -> None:
        self.account.requests += 1
        self.account.bytes_in += bytes_in
        self.account.bytes_out += bytes_out

    def __repr__(self) -> str:
        return (
            f"ClientSession({self.client_id!r}, greeted={self.greeted}, "
            f"requests={self.account.requests})"
        )


class SessionRegistry:
    """Thread-safe id -> :class:`ClientSession` map.

    Sessions are created on first contact (even a malformed or
    pre-Hello request is accounted) and survive Bye — only the greeted
    flag, callback, and reply cache reset, so traffic totals persist the
    way the old global ledger did.
    """

    def __init__(
        self,
        reply_cache_size: int = 1024,
        telemetry: Optional[MetricsRegistry] = None,
    ) -> None:
        if reply_cache_size < 0:
            raise ProtocolError(
                f"reply_cache_size must be >= 0, got {reply_cache_size}"
            )
        self.reply_cache_size = reply_cache_size
        self.telemetry = telemetry
        self._lock = threading.Lock()
        self._sessions: Dict[str, ClientSession] = {}
        if telemetry is not None:
            telemetry.gauge(
                "sessions_known",
                callback=lambda: float(len(self)),
            )
            telemetry.gauge(
                "sessions_live",
                callback=lambda: float(len(self.greeted_clients())),
            )
            telemetry.gauge(
                "sessions_reply_cache_entries",
                callback=lambda: float(self.reply_cache_entries()),
            )

    def ensure(self, client_id: str) -> ClientSession:
        """The session for ``client_id``, created on first contact."""
        with self._lock:
            session = self._sessions.get(client_id)
            if session is None:
                session = ClientSession(
                    client_id,
                    reply_cache_size=self.reply_cache_size,
                    registry=self.telemetry,
                )
                self._sessions[client_id] = session
            return session

    def get(self, client_id: str) -> Optional[ClientSession]:
        with self._lock:
            return self._sessions.get(client_id)

    def greeted(self, client_id: str) -> bool:
        session = self.get(client_id)
        return session is not None and session.greeted

    def greeted_clients(self) -> Dict[str, str]:
        """client id -> domain for every live (greeted) session."""
        with self._lock:
            return {
                client_id: session.domain
                for client_id, session in self._sessions.items()
                if session.greeted
            }

    def accounts(self) -> Dict[str, TrafficAccount]:
        """client id -> traffic account for every accounted client."""
        with self._lock:
            return {
                client_id: session.account
                for client_id, session in self._sessions.items()
                if session.account.requests
            }

    def callbacks(self) -> Dict[str, RequestChannel]:
        with self._lock:
            return {
                client_id: session.callback
                for client_id, session in self._sessions.items()
                if session.callback is not None
            }

    def all_sessions(self) -> List[ClientSession]:
        with self._lock:
            return list(self._sessions.values())

    def reply_cache_entries(self) -> int:
        return sum(
            session.reply_cache_entries for session in self.all_sessions()
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)
