"""Zero-copy decoder mechanics: in-place location, amortised compaction,
view-based delivery, and the tolerant batch scanner."""

import pytest

from repro.transport.framing import (
    DEFAULT_COMPACT_THRESHOLD,
    HEADER_SIZE,
    FrameDecoder,
    FrameScanner,
    encode_frame,
    encode_frame_header,
)


class TestByteAtATime:
    def test_one_byte_at_a_time_decodes_every_frame(self):
        """Satellite: slow-loris delivery — one byte per feed — must
        produce every frame intact, in order."""
        frames = [b"alpha", b"", b"b" * 300, b"gamma!"]
        stream = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        popped = []
        for index in range(len(stream)):
            completed = decoder.feed(stream[index : index + 1])
            for _ in range(completed):
                popped.append(decoder.pop())
        assert popped == frames

    def test_one_byte_at_a_time_stays_within_compaction_bound(self):
        """Feeding byte-by-byte must not accumulate unbounded dead bytes:
        buffered_bytes stays under threshold + one frame's footprint."""
        frame = encode_frame(b"z" * 100)
        decoder = FrameDecoder(compact_threshold=256)
        ceiling = 256 + len(frame)
        for _ in range(50):  # 50 frames dribbled one byte at a time
            for index in range(len(frame)):
                decoder.feed(frame[index : index + 1])
                assert decoder.buffered_bytes <= ceiling
            assert decoder.pop() == b"z" * 100

    def test_drained_buffer_clears_outright(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(b"payload"))
        decoder.pop()
        decoder.feed(b"")  # feed triggers compaction of the drained buffer
        assert decoder.buffered_bytes == 0

    def test_compaction_preserves_unpopped_spans(self):
        """Sliding the buffer must not corrupt frames located but not yet
        popped — their offsets are rebased, not invalidated."""
        decoder = FrameDecoder(compact_threshold=32)
        first, second, third = b"one" * 20, b"two" * 20, b"three" * 20
        decoder.feed(encode_frame(first) + encode_frame(second))
        assert decoder.pop() == first
        # The dead prefix (first frame) now exceeds the tiny threshold;
        # the next feed slides the buffer under the remaining span.
        decoder.feed(encode_frame(third))
        assert decoder.pop() == second
        assert decoder.pop() == third

    def test_custom_threshold_floor_is_header_size(self):
        decoder = FrameDecoder(compact_threshold=0)
        assert decoder._compact_threshold == HEADER_SIZE

    def test_default_threshold_bounds_dead_prefix(self):
        """At the default threshold, even a huge consumed prefix is
        reclaimed once it crosses 64 KB."""
        decoder = FrameDecoder()
        big = b"p" * (DEFAULT_COMPACT_THRESHOLD + 1)
        decoder.feed(encode_frame(big))
        assert decoder.pop() == big
        decoder.feed(encode_frame(b"after"))
        assert decoder.pop() == b"after"
        assert decoder.buffered_bytes < DEFAULT_COMPACT_THRESHOLD


class TestPopview:
    def test_popview_returns_payload_without_copy(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(b"view me"))
        view = decoder.popview()
        assert view is not None
        assert bytes(view) == b"view me"
        assert view.obj is decoder._buffer  # a real view, not a copy
        view.release()

    def test_popview_is_valid_until_next_feed(self):
        """The documented lifetime: a live view blocks the buffer from
        growing, so the next feed raises BufferError."""
        decoder = FrameDecoder()
        decoder.feed(encode_frame(b"held"))
        view = decoder.popview()
        with pytest.raises(BufferError):
            decoder.feed(encode_frame(b"more"))
        view.release()
        decoder.feed(encode_frame(b"more"))
        assert decoder.pop() == b"more"

    def test_popview_empty_returns_none(self):
        assert FrameDecoder().popview() is None


class TestEncodeHeader:
    def test_header_plus_payload_equals_encode_frame(self):
        payload = b"split encoding"
        assert encode_frame_header(payload) + payload == encode_frame(payload)

    def test_header_is_fixed_size(self):
        assert len(encode_frame_header(b"")) == HEADER_SIZE
        assert len(encode_frame_header(b"x" * 1000)) == HEADER_SIZE


class TestFrameScanner:
    def test_scans_all_frames_in_order(self):
        frames = [b"first", b"second", b"third"]
        raw = b"".join(encode_frame(f) for f in frames)
        scanner = FrameScanner(raw)
        assert [bytes(v) for v in scanner] == frames
        assert scanner.truncation_reason == ""
        assert scanner.offset == len(raw)

    def test_empty_buffer_is_clean(self):
        scanner = FrameScanner(b"")
        assert scanner.next_payload() is None
        assert scanner.truncation_reason == ""

    def test_torn_header_reported_not_raised(self):
        raw = encode_frame(b"whole") + b"\x00\x01\x02"  # 3 bytes < header
        scanner = FrameScanner(raw)
        assert bytes(scanner.next_payload()) == b"whole"
        assert scanner.next_payload() is None
        assert scanner.truncation_reason == "torn header"
        assert scanner.offset == len(encode_frame(b"whole"))

    def test_torn_body_reported(self):
        raw = encode_frame(b"whole") + encode_frame(b"cut here")[:-3]
        scanner = FrameScanner(raw)
        assert bytes(scanner.next_payload()) == b"whole"
        assert scanner.next_payload() is None
        assert scanner.truncation_reason == "torn frame body"

    def test_noun_names_the_unit_in_reports(self):
        raw = encode_frame(b"rec")[:-2]
        scanner = FrameScanner(raw, noun="record")
        assert scanner.next_payload() is None
        assert scanner.truncation_reason == "torn record body"

    def test_crc_mismatch_ends_scan(self):
        bad = bytearray(encode_frame(b"garbled"))
        bad[-1] ^= 0xFF
        raw = encode_frame(b"good") + bytes(bad) + encode_frame(b"never seen")
        scanner = FrameScanner(raw)
        assert bytes(scanner.next_payload()) == b"good"
        assert scanner.next_payload() is None
        assert scanner.truncation_reason == "CRC mismatch"
        assert scanner.offset == len(encode_frame(b"good"))

    def test_absurd_length_ends_scan(self):
        import struct

        raw = struct.pack(">II", 2**31, 0) + b"x" * 16
        scanner = FrameScanner(raw)
        assert scanner.next_payload() is None
        assert "absurd frame length" in scanner.truncation_reason

    def test_scan_sticks_after_damage(self):
        """Once damaged, the scanner stays ended — no resyncing into
        garbage."""
        scanner = FrameScanner(encode_frame(b"x")[:-1])
        assert scanner.next_payload() is None
        assert scanner.next_payload() is None
        assert scanner.truncation_reason == "torn frame body"
