"""Figure 3: the ARPANET speedup-factor table.

Paper values (Speedup Factor = conventional time / shadow time):

    File Size   1%     5%     10%    20%
    10k         13.5   9.3    6.5    3.7
    50k         22.5   11.9   7.1    4.3
    100k        24.2   12.0   7.5    4.3
    500k        24.9   12.5   7.6    4.3

Shape claims reproduced here: speedup grows with file size at fixed %,
shrinks as % grows, plateaus for large files (the diff-CPU floor), and
reaches roughly an order of magnitude at small modification percentages.
Our small-file speedups run below the paper's because we charge every
protocol round trip where the paper estimated transfer-only FTP times
(recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from functools import lru_cache

from conftest import publish

from repro.metrics.report import format_speedup_table
from repro.simnet.link import ARPANET_56K
from repro.workload.cycles import ExperimentConfig, figure_data
from repro.workload.edits import TABLE_PERCENTAGES

FILE_SIZES = (10_000, 50_000, 100_000, 500_000)

PAPER_SPEEDUPS = {
    (10_000, 1): 13.5, (10_000, 5): 9.3, (10_000, 10): 6.5, (10_000, 20): 3.7,
    (50_000, 1): 22.5, (50_000, 5): 11.9, (50_000, 10): 7.1, (50_000, 20): 4.3,
    (100_000, 1): 24.2, (100_000, 5): 12.0, (100_000, 10): 7.5, (100_000, 20): 4.3,
    (500_000, 1): 24.9, (500_000, 5): 12.5, (500_000, 10): 7.6, (500_000, 20): 4.3,
}


@lru_cache(maxsize=1)
def run_figure3():
    config = ExperimentConfig(link=ARPANET_56K)
    figure = figure_data(
        "Figure 3 sweep", FILE_SIZES, TABLE_PERCENTAGES, config
    )
    return figure.speedups()


def test_figure3_speedup_table(benchmark):
    speedups = benchmark.pedantic(run_figure3, rounds=1, iterations=1)
    measured = format_speedup_table(
        speedups, sizes=FILE_SIZES, percents=TABLE_PERCENTAGES
    )
    paper = format_speedup_table(
        PAPER_SPEEDUPS, sizes=FILE_SIZES, percents=TABLE_PERCENTAGES
    )
    publish(
        "figure3_speedup",
        "Measured (this reproduction):\n" + measured
        + "\n\nPaper (Figure 3):\n" + paper,
    )

    # Every cell shows a genuine speedup.
    assert all(value > 1.0 for value in speedups.values())

    # Speedup decreases as the modification percentage grows (rows).
    for size in FILE_SIZES:
        row = [speedups[(size, p)] for p in TABLE_PERCENTAGES]
        assert row == sorted(row, reverse=True)

    # Speedup increases with file size at fixed percentage (columns).
    for percent in TABLE_PERCENTAGES:
        column = [speedups[(size, percent)] for size in FILE_SIZES]
        assert column == sorted(column)

    # Magnitudes: ~20x+ for large files at 1 %, and the plateau —
    # 100k and 500k land within ~35 % of each other at every percentage.
    assert speedups[(500_000, 1)] > 18
    for percent in TABLE_PERCENTAGES:
        big = speedups[(500_000, percent)]
        mid = speedups[(100_000, percent)]
        assert big / mid < 1.45


def test_section81_claims(benchmark):
    """§8.1: '<=20% modified => ~4x'; '<=5% on >=100k files => up to 20x'."""
    speedups = benchmark.pedantic(run_figure3, rounds=1, iterations=1)
    for size in (100_000, 500_000):
        assert speedups[(size, 20)] > 3.0
        assert speedups[(size, 5)] > 8.0
    assert speedups[(500_000, 1)] > 18.0
