"""The shadow environment: per-user customisation database (§6.3).

"The shadow environment is a database that contains the information about
the status of all the jobs submitted and customization information for
each user. ... Though the environment is set up automatically, a user has
an option to customize it according to his own choice."

:class:`ShadowEnvironment` holds the customisable parameters with sane
defaults (the paper's "Transparency" objective: the system works with no
user setup at all) and validates every override (the "Customizability"
objective).  The job-status half of the environment database lives in the
client's :class:`~repro.jobs.status.StatusTable`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields, replace
from typing import Any, Dict

from repro.diffing.selector import ALGORITHMS, DEFAULT_ALGORITHM
from repro.errors import EnvironmentError_


@dataclass(frozen=True)
class ShadowEnvironment:
    """Defaults plus per-user overrides for client behaviour."""

    #: Supercomputer to submit to when the user names none (§6.2).
    default_host: str = "supercomputer"
    #: The wrapped editor's name, purely informational (EDITOR-style).
    editor: str = "ed"
    #: Which differencing algorithm update computation uses.
    diff_algorithm: str = DEFAULT_ALGORITHM
    #: Try every algorithm and ship the smallest delta (§8.3).
    use_best_delta: bool = False
    #: Compress update payloads with the LZ77+Huffman pipeline (§8.3).
    compress_updates: bool = False
    #: "a user may specify ... a limit on the number of older versions
    #: that should be retained at any time" (§6.3.2).
    max_retained_versions: int = 8
    #: Ask the server to send output as deltas against prior runs (§8.3).
    reverse_shadow: bool = False
    #: Default names for result files when the submit names none.
    output_suffix: str = ".out"
    error_suffix: str = ".err"
    #: Ship large updates as windowed chunk streams.  Off by default:
    #: the single-Update wire image is the paper-faithful baseline.
    chunk_updates: bool = False
    #: Smallest payload worth chunking (bytes).
    chunk_threshold_bytes: int = 65_536
    #: Bytes of payload per chunk frame.
    chunk_bytes: int = 16_384
    #: Chunk frames pipelined per flow-control window.
    chunk_window: int = 4
    #: Most items one batch-notify / batch-update frame may carry.
    batch_max_items: int = 32
    #: Payload budget per batch-update frame; bigger updates ship alone.
    batch_max_bytes: int = 49_152

    def __post_init__(self) -> None:
        if not self.default_host:
            raise EnvironmentError_("default_host must be non-empty")
        if self.diff_algorithm not in ALGORITHMS:
            raise EnvironmentError_(
                f"unknown diff algorithm {self.diff_algorithm!r}; "
                f"known: {sorted(ALGORITHMS)}"
            )
        if self.max_retained_versions < 1:
            raise EnvironmentError_(
                f"max_retained_versions must be >= 1, "
                f"got {self.max_retained_versions}"
            )
        for name in (
            "chunk_threshold_bytes",
            "chunk_bytes",
            "chunk_window",
            "batch_max_items",
            "batch_max_bytes",
        ):
            value = getattr(self, name)
            if value < 1:
                raise EnvironmentError_(f"{name} must be >= 1, got {value}")

    def customized(self, **overrides: Any) -> "ShadowEnvironment":
        """A copy with ``overrides`` applied (validated)."""
        known = {field_info.name for field_info in dataclass_fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise EnvironmentError_(
                f"unknown environment parameters: {sorted(unknown)}"
            )
        return replace(self, **overrides)

    def describe(self) -> Dict[str, Any]:
        """The full parameter set, for status displays and tests."""
        return {
            field_info.name: getattr(self, field_info.name)
            for field_info in dataclass_fields(self)
        }
