#!/usr/bin/env python3
"""Pipelined batch transfer: a multi-file edit burst without the waits.

Two things at once:

1. the ``repro.api.ShadowClient`` facade — the one import a program
   needs, with context-manager lifetime and the edit/submit/status/
   fetch verb set;
2. the pipelined batch engine underneath it — a ten-file edit cycle
   on the 9600-baud Cypress line, first as sequential notify/update
   round trips, then coalesced into batch frames with every request
   in flight at once.

Run:  python examples/pipelined_batch.py
"""

from repro import CYPRESS_9600, SimulatedDeployment
from repro.api import ShadowClient
from repro.core.server import ShadowServer
from repro.workload.edits import modify_percent
from repro.workload.files import make_text_file

FILES = [f"/home/alice/src/f{index}.c" for index in range(10)]


def facade_tour() -> None:
    """The documented entry point, end to end on a loopback server."""
    server = ShadowServer()
    with ShadowClient.connect(transport=server) as client:
        with client.batch():                     # edits coalesce...
            for index, path in enumerate(FILES):
                client.edit(path, make_text_file(800, seed=29 + index))
        job_id = client.submit("wc f0.c", [FILES[0]])      # ...flush here
        bundle = client.fetch(job_id)
        print("facade tour:")
        print(f"  submitted {len(FILES)} files, job {job_id} "
              f"exit={bundle.exit_code}")
        print(f"  server cache holds {len(server.cache)} shadows\n")


def timed_cycle(batched: bool) -> float:
    """One ten-file edit cycle on the Cypress link; virtual seconds."""
    deployment = SimulatedDeployment.build(CYPRESS_9600)
    client = deployment.client
    originals = {
        path: make_text_file(500, seed=7 + index)
        for index, path in enumerate(FILES)
    }
    for path, content in originals.items():      # seed shadows (untimed)
        client.write_file(path, content)
    start = deployment.clock.now()
    if batched:
        client.write_files(
            {
                path: modify_percent(content, 10, seed=11)
                for path, content in originals.items()
            }
        )
    else:
        for path, content in originals.items():
            client.write_file(path, modify_percent(content, 10, seed=11))
    return deployment.clock.now() - start


def main() -> None:
    facade_tour()
    sequential = timed_cycle(batched=False)
    batched = timed_cycle(batched=True)
    print("ten-file edit cycle, 9600-baud Cypress link:")
    print(f"  sequential round trips : {sequential:6.1f} virtual seconds")
    print(f"  pipelined batch frames : {batched:6.1f} virtual seconds")
    print(f"  speedup                : {sequential / batched:.1f}x")


if __name__ == "__main__":
    main()
