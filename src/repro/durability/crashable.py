"""Deterministic crash/restart harness for the journaled server.

Chaos testing the durability layer needs the server to die at an *exact*
protocol step — mid-Update, between a journal append and its reply,
mid-job — then come back from its journal while the clients keep using
the same channel objects.  :class:`CrashableService` provides that:

* it owns the current :class:`~repro.core.server.ShadowServer` and a
  ``handle`` dispatch indirection, so channels built once keep pointing
  at whichever incarnation is alive;
* :meth:`channel` hands out a
  :class:`~repro.transport.flaky.FailNextChannel` whose
  ``schedule_crash(ordinal, after_handling=...)`` is wired to
  :meth:`crash` — the crash fires on the scheduled request, 1-based
  from the next one, exactly like ``schedule_failure``;
* :meth:`crash` simulates ``kill -9``: the journal handle is abandoned
  (no final snapshot, no flush beyond the per-record ones), in-memory
  state is discarded, live TCP sockets are torn down without draining;
* :meth:`restart` builds a fresh server over the same journal directory
  — recovery runs in its constructor — and, under TCP, rebinds the same
  port so clients reconnect to the address they already know.

A crash that fires *while* a request is being handled (a
:class:`CrashingExecutor` killing the server mid-job) must not surface
as a clean ErrorReply — the router catches ShadowErrors — so
:meth:`handle` re-checks the incarnation after the inner handle and
raises :class:`~repro.errors.ServerCrashedError` at the transport level
instead, exactly what a torn connection looks like to the client.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Callable, Dict, List, Optional

from repro.core.server import ShadowServer
from repro.errors import JournalError, ServerCrashedError
from repro.jobs.executor import Executor, SimulatedExecutor
from repro.simnet.clock import SimulatedClock
from repro.simnet.link import CYPRESS_9600
from repro.transport.base import LoopbackChannel, RequestChannel
from repro.transport.flaky import FailNextChannel
from repro.transport.sim import SimChannel, Wire
from repro.transport.tcp import TcpChannel, TcpChannelServer

TRANSPORTS = ("loopback", "sim", "tcp")


class CrashingExecutor(Executor):
    """An executor that can take the server down mid-job.

    The crash fires *after* the armed execution ran but *before* the
    pipeline journals its completion — the exact window where a real
    machine loses a finished computation whose output never became
    fetchable.  Execution counting persists across restarts, so "crash
    on the 2nd execution" stays deterministic through the whole matrix.
    """

    def __init__(
        self, inner: Optional[Executor], service: "CrashableService"
    ) -> None:
        self.inner = inner if inner is not None else SimulatedExecutor()
        self.service = service
        self.executions = 0
        self._crash_at: Optional[int] = None

    def schedule_crash(self, at_execution: int = 1) -> None:
        """Kill the server right after the ``at_execution``-th run
        (1-based, counted across restarts)."""
        if at_execution <= self.executions:
            raise JournalError(
                f"execution {at_execution} already happened "
                f"({self.executions} so far)"
            )
        self._crash_at = at_execution

    def execute(self, command_file, inputs):
        self.executions += 1
        result = self.inner.execute(command_file, inputs)
        if self._crash_at is not None and self.executions >= self._crash_at:
            self._crash_at = None
            self.service.crash()
        return result


class CrashableService:
    """One journaled server plus the machinery to kill and revive it."""

    def __init__(
        self,
        journal_dir: str,
        transport: str = "loopback",
        link=None,
        clock: Optional[SimulatedClock] = None,
        server_factory: Optional[
            Callable[["CrashableService"], ShadowServer]
        ] = None,
        **server_kwargs: Any,
    ) -> None:
        if transport not in TRANSPORTS:
            raise JournalError(
                f"transport must be one of {TRANSPORTS}, got {transport!r}"
            )
        self.journal_dir = str(journal_dir)
        self.transport = transport
        self.link = link if link is not None else CYPRESS_9600
        self.clock = clock
        if self.clock is None and transport == "sim":
            self.clock = SimulatedClock()
        self._server_factory = server_factory
        self._server_kwargs = server_kwargs
        #: For server factories: an executor that kills the server
        #: mid-job on command (see :class:`CrashingExecutor`).
        self.crashing_executor = CrashingExecutor(None, self)
        self.server: Optional[ShadowServer] = None
        self._tcp: Optional[TcpChannelServer] = None
        self._port = 0
        self.generation = 0
        self.crashes = 0
        #: Every sim wire ever created, dead incarnations included —
        #: bytes-on-wire across crashes is the whole point.
        self.wires: List[Wire] = []
        self.channels: List[FailNextChannel] = []
        self.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> ShadowServer:
        """Boot a server incarnation (recovery runs in its constructor)."""
        if self.server is not None:
            raise JournalError("server already running; crash() it first")
        if self._server_factory is not None:
            self.server = self._server_factory(self)
        else:
            self.server = ShadowServer(
                journal_dir=self.journal_dir,
                clock=self.clock,
                **self._server_kwargs,
            )
        self.generation += 1
        if self.transport == "tcp":
            self._tcp = TcpChannelServer(self.handle, port=self._port)
            self._port = self._tcp.port
        return self.server

    def crash(self) -> None:
        """Simulate ``kill -9``: drop the journal handle (no snapshot,
        no goodbye), discard in-memory state, tear down live sockets."""
        server, self.server = self.server, None
        if server is None:
            return
        self.crashes += 1
        if server.durability is not None:
            server.durability.abandon()
        server.pipeline.close()  # a dead process takes its workers along
        self._kill_tcp()

    def restart(self) -> Dict[str, Any]:
        """Crash (if still up) and boot a fresh incarnation from the
        journal; returns the recovery report."""
        if self.server is not None:
            self.crash()
        self.start()
        assert self.server is not None
        if self.server.durability is None:
            return {}
        return dict(self.server.durability.last_recovery)

    def close(self) -> None:
        """Graceful end-of-test shutdown (final snapshot included)."""
        server, self.server = self.server, None
        self._kill_tcp()
        if server is not None:
            server.close()

    # ------------------------------------------------------------------
    # the dispatch indirection
    # ------------------------------------------------------------------
    def handle(self, payload: bytes) -> bytes:
        server = self.server
        if server is None:
            raise ServerCrashedError("the server is down")
        reply = server.handle(payload)
        if self.server is not server:
            # Died while handling (mid-job crash): the reply must not
            # escape as a clean protocol answer — the client sees the
            # same torn connection a real kill produces.
            raise ServerCrashedError(
                "the server died while handling this request"
            )
        return reply

    # ------------------------------------------------------------------
    # client plumbing
    # ------------------------------------------------------------------
    def channel(self) -> FailNextChannel:
        """A fault-injectable channel to the current (and every future)
        incarnation.

        Loopback and sim channels dispatch through :meth:`handle`, so
        they survive restarts untouched.  A TCP channel holds a real
        socket: after a restart call ``channel.inner.reconnect()``.
        """
        inner: RequestChannel
        if self.transport == "tcp":
            assert self._tcp is not None, "TCP server is down"
            host, port = self._tcp.address
            inner = TcpChannel(host, port)
        elif self.transport == "sim":
            uplink = Wire(self.link, self.clock)
            downlink = Wire(self.link, self.clock)
            self.wires.extend((uplink, downlink))
            inner = SimChannel(self.handle, uplink, downlink)
        else:
            inner = LoopbackChannel(self.handle)
        channel = FailNextChannel(inner)
        channel.crash_hook = self.crash
        self.channels.append(channel)
        return channel

    def total_wire_bytes(self) -> int:
        """Bytes that crossed every sim wire, crashes included."""
        return sum(wire.stats.wire_bytes for wire in self.wires)

    @property
    def tcp_port(self) -> int:
        if self._tcp is None:
            raise JournalError("no TCP server is running")
        return self._tcp.port

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _kill_tcp(self) -> None:
        """Tear the TCP transport down without draining.

        May run on one of the transport's own connection threads (a
        crash scheduled mid-request), so it never joins the current
        thread — sockets are closed and every *other* thread reaped.
        """
        tcp, self._tcp = self._tcp, None
        if tcp is None:
            return
        current = threading.current_thread()
        tcp._stop.set()
        tcp._draining.set()
        try:
            tcp._listener.close()
        except OSError:
            pass
        with tcp._conn_lock:
            sockets = list(tcp._connections)
        for sock in sockets:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        for thread in (tcp._accept_thread, *tcp._threads):
            if thread is not current:
                thread.join(timeout=2.0)
