"""Exporters: Prometheus text format and JSON snapshots."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.export import (
    parse_prometheus_line,
    render_json,
    render_prometheus,
)
from repro.telemetry.registry import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("frames_total", {"direction": "in"}).inc(4)
    registry.counter("frames_total", {"direction": "out"}).inc(3)
    registry.gauge("queue_depth").set(2)
    histogram = registry.histogram("request_seconds", buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(5.0)
    return registry


def test_every_sample_line_parses():
    text = render_prometheus(populated_registry())
    samples = []
    for line in text.splitlines():
        parsed = parse_prometheus_line(line)
        if parsed is not None:
            samples.append(parsed)
        else:
            assert line.startswith("# TYPE")
    names = {sample["name"] for sample in samples}
    assert "repro_frames_total" in names
    assert "repro_queue_depth" in names
    assert "repro_request_seconds_bucket" in names
    assert "repro_request_seconds_sum" in names
    assert "repro_request_seconds_count" in names


def test_counter_and_gauge_values_round_trip():
    text = render_prometheus(populated_registry())
    samples = [
        parsed
        for parsed in map(parse_prometheus_line, text.splitlines())
        if parsed is not None
    ]
    by_key = {
        (sample["name"], tuple(sorted(sample["labels"].items()))): sample[
            "value"
        ]
        for sample in samples
    }
    assert by_key[("repro_frames_total", (("direction", "in"),))] == 4
    assert by_key[("repro_frames_total", (("direction", "out"),))] == 3
    assert by_key[("repro_queue_depth", ())] == 2


def test_histogram_buckets_are_cumulative_and_inf_matches_count():
    text = render_prometheus(populated_registry())
    buckets = []
    count = None
    for line in text.splitlines():
        parsed = parse_prometheus_line(line)
        if parsed is None:
            continue
        if parsed["name"] == "repro_request_seconds_bucket":
            buckets.append((parsed["labels"]["le"], parsed["value"]))
        if parsed["name"] == "repro_request_seconds_count":
            count = parsed["value"]
    values = [value for _, value in buckets]
    assert values == sorted(values)
    assert buckets[-1][0] == "+Inf"
    assert buckets[-1][1] == count == 3


def test_label_values_are_escaped():
    registry = MetricsRegistry()
    registry.counter("odd_total", {"k": 'quote " back \\ nl \n end'}).inc()
    text = render_prometheus(registry)
    sample_lines = [
        line for line in text.splitlines() if not line.startswith("#")
    ]
    assert len(sample_lines) == 1
    parsed = parse_prometheus_line(sample_lines[0])
    assert parsed["labels"]["k"] == 'quote " back \\ nl \n end'


def test_prefix_is_configurable_and_empty_registry_renders_empty():
    registry = MetricsRegistry()
    assert render_prometheus(registry) == ""
    registry.counter("x_total").inc()
    assert render_prometheus(registry, prefix="shadow_").startswith(
        "# TYPE shadow_x_total counter"
    )


def test_render_json_matches_snapshot_and_text_round_trips():
    registry = populated_registry()
    snapshot = render_json(registry)
    assert snapshot == registry.snapshot()
    text = render_json(registry, as_text=True)
    assert json.loads(text) == snapshot


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        parse_prometheus_line('bad{k="unclosed} x')


def test_callback_gauge_round_trips():
    registry = MetricsRegistry()
    registry.gauge("live_now", {"pool": "tcp"}, callback=lambda: 17.0)
    samples = [
        parsed
        for parsed in map(
            parse_prometheus_line, render_prometheus(registry).splitlines()
        )
        if parsed is not None
    ]
    assert samples == [
        {"name": "repro_live_now", "labels": {"pool": "tcp"}, "value": 17.0}
    ]


def test_every_emitted_sample_round_trips_exactly():
    """Everything render_prometheus emits, parse_prometheus_line reads
    back: escaped label values, every histogram bucket (including +Inf),
    _sum and _count, plain and callback gauges, multi-label series."""
    registry = MetricsRegistry()
    registry.counter("requests_total", {"type": "submit", "outcome": "ok"}).inc(9)
    registry.counter("odd_total", {"path": 'a\\b"c\nd'}).inc(2)
    registry.gauge("depth").set(3.5)
    registry.gauge("cb_gauge", callback=lambda: 7.0)
    histogram = registry.histogram(
        "latency_seconds", {"type": "edit"}, buckets=(0.01, 0.1, 1.0)
    )
    for value in (0.005, 0.05, 0.5, 5.0):
        histogram.observe(value)

    text = render_prometheus(registry)
    samples = {}
    for line in text.splitlines():
        parsed = parse_prometheus_line(line)
        if parsed is None:
            assert line.startswith("# TYPE")
            continue
        key = (parsed["name"], tuple(sorted(parsed["labels"].items())))
        assert key not in samples, f"duplicate sample {key}"
        samples[key] = parsed["value"]

    assert samples[
        ("repro_requests_total", (("outcome", "ok"), ("type", "submit")))
    ] == 9
    assert samples[("repro_odd_total", (("path", 'a\\b"c\nd'),))] == 2
    assert samples[("repro_depth", ())] == 3.5
    assert samples[("repro_cb_gauge", ())] == 7.0
    buckets = {
        labels: value
        for (name, labels), value in samples.items()
        if name == "repro_latency_seconds_bucket"
    }
    expected = {"0.01": 1, "0.1": 2, "1": 3, "+Inf": 4}
    for le, count in expected.items():
        assert buckets[(("le", le), ("type", "edit"))] == count
    assert samples[("repro_latency_seconds_sum", (("type", "edit"),))] == (
        pytest.approx(5.555)
    )
    assert samples[("repro_latency_seconds_count", (("type", "edit"),))] == 4
