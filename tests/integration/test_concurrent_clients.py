"""Concurrency tests for the multi-tenant server core.

Two halves:

* Targeted regressions that fail on the pre-refactor server: concurrent
  requests racing the reply cache and the traffic accounts (the old
  ``handle`` had no per-session lock, so ``account.requests += 1`` lost
  increments and duplicate-rid retries could both miss the replay check
  and create two jobs).
* A full multi-client TCP integration test: four clients over real
  sockets, two jobs executing concurrently off-path while a third
  client's Update round-trips, byte-exact shadow convergence, exactly
  one job per submit, and no cross-client traffic-account bleed.
"""

import sys
import threading
import time

import pytest

from repro.core.protocol import Envelope, Hello, Notify, Submit, decode_message
from repro.core.server import ShadowServer
from repro.core.service import tcp_service
from repro.core.workspace import MappingWorkspace
from repro.jobs.executor import ExecutionResult, Executor, SimulatedExecutor


class SlowExecutor(Executor):
    """Holds each execution briefly, widening the replay-race window."""

    def __init__(self, delay: float = 0.02):
        self.inner = SimulatedExecutor()
        self.delay = delay

    def execute(self, command_file, inputs) -> ExecutionResult:
        time.sleep(self.delay)
        return self.inner.execute(command_file, inputs)


@pytest.fixture
def fast_switching():
    """Force frequent thread switches so races surface deterministically."""
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(old)


def _greet(server, client_id):
    server.handle(Hello(client_id=client_id, domain="d").to_wire())


class TestSameClientRaces:
    def test_concurrent_requests_account_exactly(self, fast_switching):
        """K threads firing enveloped requests for ONE client must leave
        an exact request count: the per-session lock serialises them.

        On the old server the unlocked ``requests += 1`` read-modify-write
        loses increments under contention and this count comes up short.
        """
        server = ShadowServer()
        _greet(server, "alice@ws")
        threads_n, per_thread = 8, 25
        barrier = threading.Barrier(threads_n)
        errors = []

        def fire(worker):
            try:
                barrier.wait()
                for index in range(per_thread):
                    notify = Notify(
                        client_id="alice@ws",
                        key=f"local:ws:/f{worker}-{index}",
                        version=1,
                    )
                    wire = Envelope(
                        rid=f"w{worker}-r{index}", body=notify.to_wire()
                    ).to_wire()
                    server.handle(wire)
            except Exception as exc:  # noqa: BLE001 - collect for assert
                errors.append(exc)

        workers = [
            threading.Thread(target=fire, args=(worker,))
            for worker in range(threads_n)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert errors == []
        # hello + every notify, no lost increments.
        assert server.ledger["alice@ws"].requests == 1 + threads_n * per_thread

    def test_duplicate_rid_submit_creates_one_job(self, fast_switching):
        """Concurrent retries of the SAME enveloped Submit must yield one
        job and identical cached replies (exactly-once over
        at-least-once).

        On the old server every thread that enters ``handle`` before the
        first one stores its reply misses the replay check and mints its
        own job — with the dispatch held open even a moment, all eight
        retries create eight jobs for one rid.  The per-session lock
        serialises them: one dispatch, seven replays.
        """
        for trial in range(3):
            server = ShadowServer(executor=SlowExecutor())
            _greet(server, "alice@ws")
            wire = Envelope(
                rid="submit-once",
                body=Submit(
                    client_id="alice@ws", script="echo once"
                ).to_wire(),
            ).to_wire()
            threads_n = 8
            barrier = threading.Barrier(threads_n)
            replies, errors = [], []
            replies_lock = threading.Lock()

            def retry():
                try:
                    barrier.wait()
                    encoded = server.handle(wire)
                    with replies_lock:
                        replies.append(encoded)
                except Exception as exc:  # noqa: BLE001 - collect
                    errors.append(exc)

            workers = [
                threading.Thread(target=retry) for _ in range(threads_n)
            ]
            for thread in workers:
                thread.start()
            for thread in workers:
                thread.join()
            assert errors == []
            assert len(set(replies)) == 1  # every retry saw the same reply
            assert server._job_counter == 1, f"extra jobs in trial {trial}"
            assert decode_message(replies[0]).TYPE == "submit-reply"

    def test_no_cross_client_account_bleed(self, fast_switching):
        """Concurrent traffic from four clients stays in four ledgers."""
        server = ShadowServer()
        clients = [f"user{index}@ws" for index in range(4)]
        for client_id in clients:
            _greet(server, client_id)
        per_client = 40
        barrier = threading.Barrier(len(clients))
        errors = []

        def fire(client_id):
            try:
                barrier.wait()
                for index in range(per_client):
                    notify = Notify(
                        client_id=client_id,
                        key=f"local:ws:/{client_id}/f{index}",
                        version=1,
                    )
                    wire = Envelope(
                        rid=f"{client_id}-r{index}", body=notify.to_wire()
                    ).to_wire()
                    server.handle(wire)
            except Exception as exc:  # noqa: BLE001 - collect for assert
                errors.append(exc)

        workers = [
            threading.Thread(target=fire, args=(client_id,))
            for client_id in clients
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert errors == []
        for client_id in clients:
            assert server.ledger[client_id].requests == 1 + per_client


class GateExecutor(Executor):
    """Holds each execution at a gate until released (see jobs tests)."""

    def __init__(self):
        self.inner = SimulatedExecutor()
        self.release = threading.Event()
        self.entries = threading.Semaphore(0)

    def execute(self, command_file, inputs) -> ExecutionResult:
        self.entries.release()
        assert self.release.wait(timeout=10.0), "gate never released"
        return self.inner.execute(command_file, inputs)


class TestMultiClientTcpService:
    def test_four_clients_concurrent_over_real_sockets(self):
        """The acceptance scenario: two clients' jobs execute concurrently
        on the off-path pool while a third client's Update round-trips
        without waiting; shadows converge byte-exactly; one job per
        submit; per-client ledgers stay exact."""
        gate = GateExecutor()
        contents = {
            "alice@ws1": b"alpha shadow payload\n" * 40,
            "bob@ws2": b"bravo shadow payload\n" * 30,
            "carol@ws3": b"carol mid-run edit\n" * 20,
        }
        with tcp_service(executor=gate, workers=2) as service:
            sessions = {}
            for index, client_id in enumerate(
                ("alice@ws1", "bob@ws2", "carol@ws3", "dave@ws4"), start=1
            ):
                workspace = MappingWorkspace(host=f"ws{index}")
                client, channel = service.connect(
                    client_id, workspace=workspace
                )
                sessions[client_id] = (client, channel)
            alice, _ = sessions["alice@ws1"]
            bob, _ = sessions["bob@ws2"]
            carol, _ = sessions["carol@ws3"]

            try:
                # Each submitting client ships one shadowed input file.
                alice.write_file("/home/alice/data.txt", contents["alice@ws1"])
                bob.write_file("/home/bob/data.txt", contents["bob@ws2"])
                job_a = alice.submit("echo alpha", ["/home/alice/data.txt"])
                job_b = bob.submit("echo bravo", ["/home/bob/data.txt"])

                # Both jobs are inside the executor at once...
                assert gate.entries.acquire(timeout=5.0)
                assert gate.entries.acquire(timeout=5.0)
                assert service.server.pipeline.describe()["inflight"] == 2

                # ...while a third client's Update round-trips unimpeded
                # and the submitters can poll without blocking.
                version = carol.write_file(
                    "/home/carol/notes.txt", contents["carol@ws3"]
                )
                assert version == 1
                assert alice.fetch_output(job_a) is None  # still running

                gate.release.set()
                assert service.server.pipeline.drain(timeout=10.0)
                assert (
                    service.server.pipeline.describe()["max_concurrent"] >= 2
                )

                bundle_a = alice.fetch_output(job_a)
                bundle_b = bob.fetch_output(job_b)
                assert bundle_a is not None and bundle_a.exit_code == 0
                assert bundle_b is not None and bundle_b.exit_code == 0

                # Exactly one job per submit, despite retries/concurrency.
                assert service.server._job_counter == 2
                assert job_a != job_b

                # Byte-exact shadow convergence for every written file.
                server_cache = service.server.cache
                for client, path in (
                    (alice, "/home/alice/data.txt"),
                    (bob, "/home/bob/data.txt"),
                    (carol, "/home/carol/notes.txt"),
                ):
                    key = str(client.workspace.resolve(path))
                    entry = server_cache.get(key)
                    assert entry.content == client.workspace.read(path)
            finally:
                gate.release.set()
                for client, channel in sessions.values():
                    client.disconnect(service.server.name)
                    channel.close()

            # No cross-client traffic-account bleed: every ledger holds
            # exactly its own requests.  hello=1, write_file=2 (notify +
            # immediate pull), submit=1, one fetch that answered
            # not-ready=1, final fetch=1, bye=1.
            ledger = service.server.ledger
            assert ledger["alice@ws1"].requests == 7
            assert ledger["bob@ws2"].requests == 6  # no mid-run poll
            assert ledger["carol@ws3"].requests == 4  # hello + write + bye
            assert ledger["dave@ws4"].requests == 2  # hello + bye
