"""Tests for the job queue, load-aware scheduler, and output delivery."""

import pytest

from repro.errors import JobError, UnknownJobError
from repro.jobs.executor import ExecutionResult
from repro.jobs.output import DeliveryPlan, OutputBundle, store_bundle
from repro.jobs.queue import JobQueue, QueuedJob
from repro.jobs.scheduler import (
    ConstantLoad,
    PullPolicy,
    Scheduler,
    SeededRandomLoad,
    SinusoidalLoad,
)
from repro.jobs.spec import JobRequest


def queued(job_id, owner="alice", priority=0, enqueued_at=0.0, files=()):
    return QueuedJob(
        job_id=job_id,
        owner=owner,
        request=JobRequest.build("echo hi"),
        file_keys=tuple(files),
        file_versions={key: 1 for key in files},
        enqueued_at=enqueued_at,
        priority=priority,
    )


class TestJobQueue:
    def test_fifo_among_equal_priority(self):
        queue = JobQueue()
        queue.push(queued("a", enqueued_at=1.0))
        queue.push(queued("b", enqueued_at=2.0))
        assert queue.peek_ready(lambda job: True).job_id == "a"

    def test_priority_beats_age(self):
        queue = JobQueue()
        queue.push(queued("old", enqueued_at=1.0))
        queue.push(queued("urgent", enqueued_at=9.0, priority=5))
        assert queue.peek_ready(lambda job: True).job_id == "urgent"

    def test_readiness_filter(self):
        queue = JobQueue()
        queue.push(queued("blocked", files=("f",)))
        queue.push(queued("free", enqueued_at=5.0))
        ready = queue.peek_ready(lambda job: not job.file_keys)
        assert ready.job_id == "free"

    def test_empty_queue_returns_none(self):
        assert JobQueue().peek_ready(lambda job: True) is None

    def test_pop_removes(self):
        queue = JobQueue()
        queue.push(queued("a"))
        queue.pop("a")
        assert len(queue) == 0

    def test_pop_unknown_raises(self):
        with pytest.raises(UnknownJobError):
            JobQueue().pop("ghost")

    def test_remove_for_owner(self):
        queue = JobQueue()
        queue.push(queued("a", owner="alice"))
        queue.push(queued("b", owner="bob"))
        removed = queue.remove_for_owner("alice")
        assert [job.job_id for job in removed] == ["a"]
        assert "b" in queue

    def test_versions_must_cover_keys(self):
        with pytest.raises(JobError):
            QueuedJob(
                job_id="x",
                owner="o",
                request=JobRequest.build("echo hi"),
                file_keys=("f1",),
                file_versions={},
            )


class TestLoadModels:
    def test_constant(self):
        assert ConstantLoad(level=0.3).load_at(999.0) == 0.3

    def test_constant_validates(self):
        with pytest.raises(JobError):
            ConstantLoad(level=1.5).load_at(0.0)

    def test_sinusoidal_peak_at_half_period(self):
        model = SinusoidalLoad(peak=0.9, trough=0.1, period_seconds=100.0)
        assert model.load_at(50.0) == pytest.approx(0.9)
        assert model.load_at(0.0) == pytest.approx(0.1)

    def test_seeded_random_deterministic(self):
        a = SeededRandomLoad(seed=1)
        b = SeededRandomLoad(seed=1)
        assert [a.load_at(t * 60.0) for t in range(10)] == [
            b.load_at(t * 60.0) for t in range(10)
        ]

    def test_seeded_random_bounded(self):
        model = SeededRandomLoad()
        for slot in range(200):
            assert 0.0 <= model.load_at(slot * 60.0) <= 1.0


class TestSchedulerPullDecisions:
    def test_immediate_always_pulls(self):
        scheduler = Scheduler(pull_policy=PullPolicy.IMMEDIATE)
        assert scheduler.should_pull_on_notify(0.0)

    def test_on_submit_never_pulls_on_notify(self):
        scheduler = Scheduler(pull_policy=PullPolicy.ON_SUBMIT)
        assert not scheduler.should_pull_on_notify(0.0)

    def test_load_aware_pulls_when_idle(self):
        scheduler = Scheduler(
            pull_policy=PullPolicy.LOAD_AWARE,
            load_model=ConstantLoad(level=0.1),
        )
        assert scheduler.should_pull_on_notify(0.0)

    def test_load_aware_defers_when_busy(self):
        scheduler = Scheduler(
            pull_policy=PullPolicy.LOAD_AWARE,
            load_model=ConstantLoad(level=0.9),
        )
        assert not scheduler.should_pull_on_notify(0.0)

    def test_threshold_validated(self):
        with pytest.raises(JobError):
            Scheduler(pull_load_threshold=0.0)


class TestSchedulerStartDelay:
    def test_idle_machine_starts_now(self):
        scheduler = Scheduler(load_model=ConstantLoad(level=0.1))
        assert scheduler.start_delay(0.0, queue_depth=1) == 0.0

    def test_busy_machine_delays(self):
        scheduler = Scheduler(load_model=ConstantLoad(level=1.0))
        assert scheduler.start_delay(0.0, queue_depth=1) > 0.0

    def test_deep_queue_adds_pressure(self):
        scheduler = Scheduler(load_model=ConstantLoad(level=0.6))
        shallow = scheduler.start_delay(0.0, queue_depth=2)
        deep = scheduler.start_delay(0.0, queue_depth=10)
        assert deep >= shallow

    def test_delay_capped(self):
        scheduler = Scheduler(
            load_model=ConstantLoad(level=1.0), max_start_delay_seconds=60.0
        )
        assert scheduler.start_delay(0.0, queue_depth=100) <= 60.0

    def test_negative_depth_rejected(self):
        with pytest.raises(JobError):
            Scheduler().start_delay(0.0, queue_depth=-1)


class TestOutputDelivery:
    def make_bundle(self):
        result = ExecutionResult(
            exit_code=0,
            stdout=b"the answer",
            stderr=b"",
            output_files={"table.csv": b"1,2\n"},
            cpu_seconds=1.5,
        )
        return OutputBundle.from_result("job-1", result)

    def test_bundle_from_result(self):
        bundle = self.make_bundle()
        assert bundle.exit_code == 0
        assert bundle.payload_bytes == len(b"the answer") + len(b"1,2\n")

    def test_plan_defaults_to_submitter(self):
        plan = DeliveryPlan.for_request(
            "job-1", JobRequest.build("echo hi"), client_host="alice@ws"
        )
        assert plan.destination_host == "alice@ws"
        assert not plan.is_third_party
        assert plan.output_file == "job-1.out"

    def test_plan_honours_routing(self):
        request = JobRequest.build("echo hi", deliver_to_host="printer")
        plan = DeliveryPlan.for_request("job-1", request, client_host="alice")
        assert plan.destination_host == "printer"
        assert plan.is_third_party

    def test_plan_honours_custom_names(self):
        request = JobRequest.build(
            "echo hi", output_file="res.txt", error_file="errs.txt"
        )
        plan = DeliveryPlan.for_request("job-1", request, client_host="a")
        assert plan.output_file == "res.txt"
        assert plan.error_file == "errs.txt"

    def test_plan_requires_client_host(self):
        with pytest.raises(JobError):
            DeliveryPlan.for_request(
                "job-1", JobRequest.build("echo hi"), client_host=""
            )

    def test_store_bundle_writes_streams(self):
        sink = {}
        plan = DeliveryPlan.for_request(
            "job-1", JobRequest.build("echo hi"), client_host="a"
        )
        written = store_bundle(self.make_bundle(), plan, sink)
        assert sink["job-1.out"] == b"the answer"
        assert sink["table.csv"] == b"1,2\n"
        assert "job-1.err" not in sink  # empty stderr writes nothing
        assert set(written) == {"job-1.out", "table.csv"}

    def test_store_bundle_writes_stderr_when_present(self):
        sink = {}
        bundle = OutputBundle(
            job_id="j", exit_code=1, stdout=b"", stderr=b"oops"
        )
        plan = DeliveryPlan.for_request(
            "j", JobRequest.build("echo hi"), client_host="a"
        )
        store_bundle(bundle, plan, sink)
        assert sink["j.err"] == b"oops"
