"""FleetSupervisor: detection, confirmation, recovery, republication.

The chaos matrix (``tests/chaos/``) proves the end-to-end guarantee;
these tests pin the supervisor's *mechanics* — when it declares death,
what it publishes, who learns the map — and the degraded-mode client
semantics around an unserved range.
"""

import pytest

from repro.chaos import ChaosFleet
from repro.core.client import ShadowClient
from repro.core.protocol import (
    HealthQuery,
    HealthReply,
    MapPublish,
    Probe,
    ProbeReply,
    decode_message,
)
from repro.core.server import ShadowServer
from repro.core.workspace import MappingWorkspace
from repro.errors import ShadowError
from repro.fleet import FleetMember, FleetSupervisor, ShardMap
from repro.resilience.policy import RetryPolicy
from repro.resilience.session import RawSession, ResilienceConfig

FAST = ResilienceConfig(
    retry=RetryPolicy(max_attempts=10, base_delay=0.0, jitter=0.0)
)


class TestProbeVerb:
    def test_solo_server_answers_a_probe(self):
        server = ShadowServer(name="solo")
        raw = server.handle(Probe(sender="sup", nonce=7).to_wire())
        reply = decode_message(raw)
        assert isinstance(reply, ProbeReply)
        assert reply.shard == "solo"
        assert reply.role == "solo"
        assert reply.serving is True
        assert reply.nonce == 7
        assert reply.shard_map == {}  # fleet off: nothing advertised

    def test_fleet_member_advertises_its_map(self):
        shard_map = ShardMap({"alpha": "loop:alpha"}, epoch=4)
        server = ShadowServer(name="alpha")
        FleetMember(server, shard_map)
        reply = decode_message(server.handle(Probe(sender="sup").to_wire()))
        assert reply.map_epoch == 4
        assert reply.shard_map["epoch"] == 4

    def test_map_publish_adopts_only_newer_epochs(self):
        shard_map = ShardMap({"alpha": "loop:alpha"}, epoch=2)
        server = ShadowServer(name="alpha")
        member = FleetMember(server, shard_map)
        newer = shard_map.with_shards({"alpha": "elsewhere:alpha"})
        raw = server.handle(
            MapPublish(sender="sup", shard_map=newer.to_payload()).to_wire()
        )
        assert b"adopted" in raw
        assert member.shard_map.epoch == 3
        assert member.maps_adopted == 1
        # Republishing the same epoch is an idempotent no-op.
        raw = server.handle(
            MapPublish(sender="sup", shard_map=newer.to_payload()).to_wire()
        )
        assert b"stale" in raw
        assert member.maps_adopted == 1


class TestDetection:
    def test_baseline_tick_beats_every_shard(self, tmp_path):
        fleet = ChaosFleet(str(tmp_path))
        status = fleet.supervisor.status()
        assert all(
            shard["alive"] and shard["last_beat_age"] == 0.0
            for shard in status["shards"].values()
        )
        fleet.close()

    def test_one_silent_probe_is_not_a_death(self, tmp_path):
        fleet = ChaosFleet(str(tmp_path), auto_heal=False)
        fleet.kill("beta")
        # One interval of silence: suspect, but under the timeout.
        fleet.clock.advance(fleet.supervisor.probe_interval)
        assert fleet.tick() == []
        assert fleet.supervisor.shard_map.epoch == 1
        fleet.close()

    def test_death_needs_timeout_plus_confirmation(self, tmp_path):
        fleet = ChaosFleet(str(tmp_path), auto_heal=False)
        fleet.kill("beta")
        heals = fleet.heal_now()
        assert [heal["shard"] for heal in heals] == ["beta"]
        assert heals[0]["action"] == "replace"
        # Detection is bounded: timeout + a confirmation round.
        bound = (
            fleet.supervisor.probe_timeout
            + 2 * fleet.supervisor.probe_interval
        )
        assert heals[0]["heal_seconds"] <= bound
        fleet.close()

    def test_recovered_shard_clears_suspicion(self, tmp_path):
        fleet = ChaosFleet(str(tmp_path), auto_heal=False)
        fleet.kill("beta")
        fleet.clock.advance(fleet.supervisor.probe_interval)
        fleet.tick()
        fleet.resurrect("beta")
        fleet.clock.advance(fleet.supervisor.probe_interval)
        fleet.tick()
        status = fleet.supervisor.status()["shards"]["beta"]
        assert status["alive"] and status["last_beat_age"] == 0.0
        # No heal happened: the shard came back under its own power.
        assert fleet.supervisor.heals == []
        fleet.close()


class TestRepublication:
    def test_members_adopt_the_published_map(self, tmp_path):
        fleet = ChaosFleet(str(tmp_path), replicated=("alpha",))
        fleet.kill("alpha")
        assert fleet.heal_now()
        new_map = fleet.supervisor.shard_map
        assert new_map.epoch == 2
        for shard in ("beta", "gamma"):
            member = fleet.serving_server(shard).fleet
            assert member.shard_map.epoch == new_map.epoch
        # The promoted standby leads the healed shard's dial list.
        assert new_map.dial("alpha").startswith("alpha@s")
        fleet.close()

    def test_subscribers_hear_every_publication(self, tmp_path):
        fleet = ChaosFleet(str(tmp_path), replicated=("alpha",))
        seen = []
        fleet.supervisor.subscribe(lambda m: seen.append(m.epoch))
        fleet.kill("alpha")
        assert fleet.heal_now()
        assert seen == [2]
        fleet.close()

    def test_heal_metrics_count(self, tmp_path):
        fleet = ChaosFleet(str(tmp_path), replicated=("alpha",))
        fleet.kill("alpha")
        assert fleet.heal_now()
        snapshot = fleet.supervisor.telemetry.snapshot()
        counters = {
            series["name"]: series["value"]
            for series in snapshot["counters"]
        }
        assert counters["fleet_deaths_confirmed_total"] == 1
        assert counters["fleet_promotions_total"] == 1
        assert counters["fleet_maps_published_total"] == 1
        assert counters["fleet_probes_total"] > 3
        fleet.close()


class TestDegradedMode:
    def test_live_shards_keep_serving_while_a_range_is_unserved(
        self, tmp_path
    ):
        fleet = ChaosFleet(
            str(tmp_path), spawn_replacements=False, auto_heal=False
        )
        channel = fleet.client_channel()
        client = ShadowClient("alice@ws", MappingWorkspace(), resilience=FAST)
        client.connect("supercomputer", channel)
        fleet.kill("beta")
        assert fleet.heal_now() == []  # nothing to promote or spawn
        assert fleet.supervisor.unserved == ["beta"]
        shard_map = fleet.supervisor.shard_map
        wrote = 0
        for index in range(24):
            path = f"/data/deg{index:02d}.dat"
            key = str(client.workspace.resolve(path))
            if shard_map.owner(key) == "beta":
                continue
            assert client.write_file(path, b"degraded but alive\n") == 1
            wrote += 1
        assert wrote > 0
        client.disconnect("supercomputer")
        fleet.close()

    def test_health_broadcast_surfaces_partial_availability(self, tmp_path):
        fleet = ChaosFleet(
            str(tmp_path), spawn_replacements=False, auto_heal=False
        )
        channel = fleet.client_channel()
        client = ShadowClient("alice@ws", MappingWorkspace(), resilience=FAST)
        client.connect("supercomputer", channel)
        fleet.kill("beta")
        reply = RawSession(channel).send(HealthQuery(client_id="alice@ws"))
        assert isinstance(reply, HealthReply)
        assert reply.status == "critical"
        shards = reply.report["shards"]
        assert shards["beta"]["status"] == "critical"
        assert shards["alpha"]["status"] == "ok"
        fleet.close()


class TestSupervisorConfig:
    def test_supervisor_is_default_off(self):
        # Nothing in the core server or fleet member references the
        # supervisor: constructing a fleet without one changes nothing.
        server = ShadowServer(name="alpha")
        FleetMember(server, ShardMap({"alpha": "loop:alpha"}))
        assert not hasattr(server, "supervisor")

    def test_unknown_shard_probe_raises_clean_errors(self):
        supervisor = FleetSupervisor(
            ShardMap({"alpha": "127.0.0.1:1"}),
            now_fn=lambda: 0.0,
        )
        with pytest.raises(ShadowError):
            supervisor.shard_map.dial("nope")
        supervisor.close()
