"""Tests for the real-filesystem workspace used by the CLI."""

import os

import pytest

from repro.core.workspace import LocalDirectoryWorkspace
from repro.errors import FileNotFoundInVfsError, NamingError


@pytest.fixture
def workspace(tmp_path):
    return LocalDirectoryWorkspace(str(tmp_path), domain="testfs", host="testhost")


class TestLocalDirectoryWorkspace:
    def test_write_read_roundtrip(self, workspace):
        workspace.write("sub/dir/file.dat", b"on disk")
        assert workspace.read("sub/dir/file.dat") == b"on disk"

    def test_missing_file_raises(self, workspace):
        with pytest.raises(FileNotFoundInVfsError):
            workspace.read("nope.txt")

    def test_exists(self, workspace):
        workspace.write("present", b"")
        assert workspace.exists("present")
        assert not workspace.exists("absent")

    def test_resolve_is_canonical(self, workspace, tmp_path):
        workspace.write("real.txt", b"x")
        name = workspace.resolve("real.txt")
        assert name.host == "testhost"
        assert name.path == str(tmp_path / "real.txt")

    def test_symlink_aliases_collapse(self, workspace, tmp_path):
        workspace.write("target.txt", b"content")
        os.symlink(tmp_path / "target.txt", tmp_path / "alias.txt")
        assert workspace.resolve("alias.txt") == workspace.resolve(
            "target.txt"
        )
        assert workspace.read("alias.txt") == b"content"

    def test_escape_rejected(self, workspace):
        with pytest.raises(NamingError):
            workspace.read("../../etc/passwd")

    def test_symlink_escape_rejected(self, workspace, tmp_path):
        os.symlink("/etc", tmp_path / "sneaky")
        with pytest.raises(NamingError):
            workspace.read("sneaky/passwd")

    def test_absolute_path_inside_root_ok(self, workspace, tmp_path):
        workspace.write("direct.txt", b"y")
        assert workspace.read(str(tmp_path / "direct.txt")) == b"y"

    def test_root_probe_resolves(self, workspace):
        name = workspace.resolve("/")
        assert name.path == "/"
