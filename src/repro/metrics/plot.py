"""ASCII rendering of the paper's figures.

The original Figures 1 and 2 are line plots: S-time curves rising with
the modification percentage under horizontal E-time lines.  This module
draws the same picture in plain text so benchmark output and
EXPERIMENTS.md can show the *shape*, not just the numbers — much like
the hand-drawn plots in the 1987 technical report.
"""

from __future__ import annotations

from typing import List

from repro.errors import ShadowError
from repro.metrics.recorder import FigureData

_MARKERS = "abcdefgh"


def ascii_plot(
    figure: FigureData, width: int = 68, height: int = 22
) -> str:
    """Render S-time curves and E-time levels as a text plot.

    Each file size gets a letter marker for its S-time curve and a dashed
    horizontal line (same letter, upper-case) for its E-time level.
    """
    if width < 20 or height < 8:
        raise ShadowError("plot area too small")
    sizes = sorted(figure.shadow_series)
    if not sizes:
        raise ShadowError("figure has no series to plot")
    if len(sizes) > len(_MARKERS):
        raise ShadowError(f"too many series ({len(sizes)})")

    max_percent = max(
        max(series.xs()) for series in figure.shadow_series.values()
    )
    max_seconds = max(figure.conventional_levels.values()) * 1.08
    grid = [[" "] * width for _ in range(height)]

    def place(x_value: float, y_value: float, marker: str) -> None:
        column = int(round(x_value / max_percent * (width - 1)))
        row = height - 1 - int(round(y_value / max_seconds * (height - 1)))
        row = min(height - 1, max(0, row))
        column = min(width - 1, max(0, column))
        if grid[row][column] == " " or grid[row][column] == "-":
            grid[row][column] = marker

    # E-time levels first (dashes), so curve markers overwrite them.
    for index, size in enumerate(sizes):
        level = figure.conventional_levels[size]
        row = height - 1 - int(round(level / max_seconds * (height - 1)))
        row = min(height - 1, max(0, row))
        for column in range(width):
            if column % 2 == 0 and grid[row][column] == " ":
                grid[row][column] = "-"
        place(max_percent * 0.02, level, _MARKERS[index].upper())

    # S-time curves, with linear interpolation between sweep points.
    for index, size in enumerate(sizes):
        marker = _MARKERS[index]
        points = sorted(figure.shadow_series[size].points)
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            steps = max(2, int((x1 - x0) / max_percent * width))
            for step in range(steps + 1):
                fraction = step / steps
                place(
                    x0 + (x1 - x0) * fraction,
                    y0 + (y1 - y0) * fraction,
                    marker,
                )
        for x_value, y_value in points:
            place(x_value, y_value, marker)

    # Assemble with a y axis (seconds) and x axis (% modified).
    lines: List[str] = [figure.title]
    for row_index, row in enumerate(grid):
        seconds = max_seconds * (height - 1 - row_index) / (height - 1)
        label = f"{seconds:7.0f}s |" if row_index % 4 == 0 else "         |"
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    axis = [" "] * (width + 4)  # room for the last label to overhang
    for percent in range(0, int(max_percent) + 1, 20):
        column = int(round(percent / max_percent * (width - 1)))
        for offset, character in enumerate(str(percent)):
            axis[column + offset] = character
    lines.append("          " + "".join(axis) + "  (% modified)")
    legend = "  ".join(
        f"{_MARKERS[index]}=S-time({size // 1000}k) "
        f"{_MARKERS[index].upper()}=E-time"
        for index, size in enumerate(sizes)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)
