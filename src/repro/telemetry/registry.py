"""The process-wide metrics registry: one place every subsystem reports.

The paper's argument is measurement (§8's stopwatch cycles are
byte-and-seconds accounting over slow links), and after the server grew
into explicit layers its runtime counters were scattered: resilience
counters here, traffic accounts there, cache stats in the store, link
tallies in the simulator.  :class:`MetricsRegistry` unifies them into
three series kinds —

* :class:`Counter` — monotonically increasing totals (frames, retries,
  cache hits);
* :class:`Gauge` — point-in-time levels (queue depth, live sessions,
  cache occupancy), optionally *callback-backed* so the value is sampled
  from the owning subsystem at collection time instead of being pushed;
* :class:`Histogram` — fixed-bucket streaming distributions with
  p50/p95/p99 estimates (lock waits, execution times).

Series are identified by ``(name, labels)``; asking for the same pair
returns the same object, so instrument-at-use-site code needs no
central declaration.  Everything is thread-safe: creation takes the
registry lock, mutation takes a per-series lock.

All values are *wall-clock or event counts only* — nothing here reads
or advances the simulated clock, so enabling telemetry can never
perturb a benchmark figure.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ShadowError

#: Default histogram upper bounds, in seconds — tuned for request-path
#: latencies (sub-millisecond loopback up to multi-second remote jobs).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
)

Labels = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Optional[Mapping[str, str]]) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Series:
    """Common identity for one (name, labels) time series."""

    kind = "series"

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()

    @property
    def label_dict(self) -> Dict[str, str]:
        return dict(self.labels)


class Counter(_Series):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, labels: Labels) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ShadowError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        with self._lock:
            self._value += amount

    def set(self, value: float) -> None:
        """Restore an absolute value (compat views and state loads)."""
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Series):
    """A level that moves both ways; optionally sampled via callback."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        labels: Labels,
        callback: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__(name, labels)
        self._value = 0.0
        self.callback = callback

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self.callback is not None:
            try:
                return float(self.callback())
            except Exception:
                # A collection pass must never take the server down with
                # it; a dead callback reads as zero.
                return 0.0
        with self._lock:
            return self._value


class Histogram(_Series):
    """Fixed-bucket streaming distribution (cumulative, Prometheus-style)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Labels,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, labels)
        bounds = tuple(sorted(set(float(b) for b in buckets)))
        if not bounds:
            raise ShadowError(f"histogram {name} needs at least one bucket")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # final slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[index] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th observation; the last bound caps +Inf)."""
        if not 0 <= q <= 1:
            raise ShadowError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            cumulative = 0
            for index, bound in enumerate(self.bounds):
                cumulative += self._counts[index]
                if cumulative >= rank:
                    return bound
            return self.bounds[-1]

    def bucket_counts(self) -> List[Tuple[str, int]]:
        """Cumulative ``(le, count)`` pairs, ending with ``+Inf``."""
        with self._lock:
            pairs: List[Tuple[str, int]] = []
            running = 0
            for index, bound in enumerate(self.bounds):
                running += self._counts[index]
                pairs.append((format_bound(bound), running))
            pairs.append(("+Inf", running + self._counts[-1]))
            return pairs


def format_bound(bound: float) -> str:
    """Render a bucket bound the way Prometheus text format does."""
    text = f"{bound:g}"
    return text


class MetricsRegistry:
    """Thread-safe, get-or-create home for every metric series.

    One registry per server (and per client) keeps tests and co-hosted
    services isolated; :data:`repro.telemetry.REGISTRY` is the shared
    process-wide default for code without a natural owner.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: "Dict[Tuple[str, Labels], _Series]" = {}

    def _get_or_create(
        self, name: str, labels: Labels, factory: Callable[[], _Series]
    ) -> _Series:
        if not name:
            raise ShadowError("metric name must be non-empty")
        key = (name, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = factory()
                self._series[key] = series
            return series

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        frozen = _freeze_labels(labels)
        series = self._get_or_create(
            name, frozen, lambda: Counter(name, frozen)
        )
        if not isinstance(series, Counter):
            raise ShadowError(f"{name} already registered as {series.kind}")
        return series

    def gauge(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        callback: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        frozen = _freeze_labels(labels)
        series = self._get_or_create(
            name, frozen, lambda: Gauge(name, frozen, callback)
        )
        if not isinstance(series, Gauge):
            raise ShadowError(f"{name} already registered as {series.kind}")
        if callback is not None:
            series.callback = callback
        return series

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        frozen = _freeze_labels(labels)
        series = self._get_or_create(
            name, frozen, lambda: Histogram(name, frozen, buckets)
        )
        if not isinstance(series, Histogram):
            raise ShadowError(f"{name} already registered as {series.kind}")
        return series

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def collect(self) -> List[_Series]:
        """Every series, sorted by (name, labels) for stable output."""
        with self._lock:
            return [
                self._series[key] for key in sorted(self._series)
            ]

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot of every series.

        Shape::

            {"counters":   [{"name", "labels", "value"}, ...],
             "gauges":     [{"name", "labels", "value"}, ...],
             "histograms": [{"name", "labels", "count", "sum",
                             "p50", "p95", "p99", "buckets"}, ...]}
        """
        counters: List[Dict[str, Any]] = []
        gauges: List[Dict[str, Any]] = []
        histograms: List[Dict[str, Any]] = []
        for series in self.collect():
            if isinstance(series, Counter):
                counters.append(
                    {
                        "name": series.name,
                        "labels": series.label_dict,
                        "value": series.value,
                    }
                )
            elif isinstance(series, Gauge):
                gauges.append(
                    {
                        "name": series.name,
                        "labels": series.label_dict,
                        "value": series.value,
                    }
                )
            elif isinstance(series, Histogram):
                histograms.append(
                    {
                        "name": series.name,
                        "labels": series.label_dict,
                        "count": series.count,
                        "sum": series.sum,
                        "p50": series.quantile(0.50),
                        "p95": series.quantile(0.95),
                        "p99": series.quantile(0.99),
                        "buckets": [
                            [le, count]
                            for le, count in series.bucket_counts()
                        ],
                    }
                )
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
