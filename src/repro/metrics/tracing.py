"""Structured per-request tracing through the server's layers.

Every request that enters :meth:`ShadowServer.handle` gets a
:class:`RequestTrace` carrying the request id (the resilience envelope's
``rid`` when present, a server-local sequence number otherwise), the
session it ran under, and a span per layer it crossed — decode, session
lock wait, dispatch, encode — plus any sub-phases a handler marks (cache
writes, job staging).  The off-path job pipeline records one trace per
job execution the same way, so a submit's synchronous cost and its
asynchronous execution cost are separately attributable.

Traces land in a bounded, thread-safe :class:`TraceLog`; they measure
wall time (``perf_counter``) and are diagnostic only — no benchmark
output depends on them, so the simulated-clock figures stay
deterministic.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple


@dataclass
class RequestTrace:
    """One request's (or job's) journey through the layers."""

    request_id: str = ""
    client_id: str = ""
    kind: str = ""  #: message TYPE for requests, "job" for executions
    #: Client-minted end-to-end trace id (the envelope's ``tid``).  The
    #: same id appears on the client's span, the server's request trace,
    #: and the async job-execution trace, joining them into one trace.
    trace_id: str = ""
    outcome: str = "ok"  #: "ok", "replayed", or "error:<code>"
    #: Parent span id carried in on the envelope's ``psp`` field ("" when
    #: the sender did not propagate one).
    parent_span: str = ""
    #: (phase name, seconds) in the order the phases ran.
    phases: List[Tuple[str, float]] = field(default_factory=list)
    #: (phase name, offset-from-start, seconds) — same entries as
    #: :attr:`phases` plus each phase's start offset, so span exporters
    #: can place phases on a wall-clock timeline.
    records: List[Tuple[str, float, float]] = field(default_factory=list)
    started_at: float = field(default_factory=time.perf_counter)
    #: Wall-clock twin of :attr:`started_at`; diagnostic only, never read
    #: by anything the figures depend on.
    started_wall: float = field(default_factory=time.time)
    total_seconds: float = 0.0

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a span and append it to :attr:`phases`."""
        begin = time.perf_counter()
        try:
            yield
        finally:
            seconds = time.perf_counter() - begin
            self.phases.append((name, seconds))
            self.records.append((name, begin - self.started_at, seconds))

    def mark(self, name: str, seconds: float) -> None:
        """Append an externally measured span (assumed to end now)."""
        self.phases.append((name, seconds))
        offset = max(0.0, time.perf_counter() - self.started_at - seconds)
        self.records.append((name, offset, seconds))

    def finish(self) -> "RequestTrace":
        self.total_seconds = time.perf_counter() - self.started_at
        return self

    def phase_seconds(self, name: str) -> float:
        return sum(seconds for phase, seconds in self.phases if phase == name)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "request_id": self.request_id,
            "client_id": self.client_id,
            "kind": self.kind,
            "trace_id": self.trace_id,
            "outcome": self.outcome,
            "total_seconds": self.total_seconds,
            "phases": [[name, seconds] for name, seconds in self.phases],
        }


class TraceLog:
    """A bounded, thread-safe ring of finished traces."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._traces: Deque[RequestTrace] = deque(maxlen=capacity or None)
        self._lock = threading.Lock()
        self._request_ids = itertools.count(1)
        self.recorded = 0

    def next_request_id(self) -> str:
        """A server-local id for requests arriving without an envelope."""
        with self._lock:
            return f"req-{next(self._request_ids):06d}"

    def record(self, trace: RequestTrace) -> RequestTrace:
        """Finish ``trace`` and append it (drops oldest past capacity)."""
        trace.finish()
        if self.capacity:
            with self._lock:
                self._traces.append(trace)
                self.recorded += 1
        return trace

    def snapshot(self) -> List[RequestTrace]:
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def for_client(self, client_id: str) -> List[RequestTrace]:
        return [
            trace for trace in self.snapshot() if trace.client_id == client_id
        ]

    def summary(self) -> Dict[str, Any]:
        """Aggregate view for ``describe()`` blocks and reports."""
        traces = self.snapshot()
        by_kind: Dict[str, int] = {}
        phase_totals: Dict[str, float] = {}
        errors = 0
        for trace in traces:
            by_kind[trace.kind] = by_kind.get(trace.kind, 0) + 1
            if trace.outcome.startswith("error"):
                errors += 1
            for name, seconds in trace.phases:
                phase_totals[name] = phase_totals.get(name, 0.0) + seconds
        return {
            "retained": len(traces),
            "recorded": self.recorded,
            "by_kind": by_kind,
            "errors": errors,
            "phase_seconds": {
                name: round(seconds, 6)
                for name, seconds in sorted(phase_totals.items())
            },
        }


#: Thread-local holder for "the trace of the request this thread is
#: serving"; lets deep layers (cache writes, job staging) add sub-phases
#: without threading a trace argument through every call.
_active = threading.local()


def set_active_trace(trace: Optional[RequestTrace]) -> None:
    _active.trace = trace


def active_trace() -> Optional[RequestTrace]:
    return getattr(_active, "trace", None)


@contextmanager
def traced_phase(name: str) -> Iterator[None]:
    """Time a span against the active trace, if any (no-op otherwise)."""
    trace = active_trace()
    if trace is None:
        yield
        return
    with trace.phase(name):
        yield


@contextmanager
def recording_trace(log: TraceLog, trace: RequestTrace) -> Iterator[RequestTrace]:
    """Make ``trace`` the thread's active trace for the block, then
    record it into ``log``.

    The previously active trace (if any) is restored on exit, so nested
    scopes — a handler that recursively feeds a message back through the
    server, or a job execution started from a request thread — stack
    correctly.  This is the one way the server's request path and the
    off-path job pipeline open a trace; both used to hand-roll the same
    save/set/restore/record dance.
    """
    previous = active_trace()
    set_active_trace(trace)
    try:
        yield trace
    finally:
        set_active_trace(previous)
        log.record(trace)
