"""Composable compression pipelines with self-describing framing.

A :class:`Codec` names a compress/decompress pair; a :class:`Pipeline`
chains codecs (e.g. LZ77 then Huffman — the classic deflate shape) and
frames the result so the receiver can reverse it without out-of-band
agreement.  The frame also guards against *expansion*: if a stage grows
its input (already-compressed or high-entropy data), the stage is skipped
and recorded as the identity — compression must never cost wire bytes.

Frame format::

    b"SCP1" <u8 stage count> [<u8 name length> <name>]... <payload>

Stage names are listed in application order; decompression applies them in
reverse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.compression import huffman, lz77, rle
from repro.errors import CompressionError

_MAGIC = b"SCP1"


@dataclass(frozen=True)
class Codec:
    """A named, symmetric transform over byte strings."""

    name: str
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes], bytes]


RLE = Codec(rle.NAME, rle.compress, rle.decompress)
LZ77 = Codec(lz77.NAME, lz77.compress, lz77.decompress)
HUFFMAN = Codec(huffman.NAME, huffman.compress, huffman.decompress)

REGISTRY: Dict[str, Codec] = {codec.name: codec for codec in (RLE, LZ77, HUFFMAN)}


def register(codec: Codec) -> None:
    """Add a codec to the global registry (used by tests and extensions)."""
    if codec.name in REGISTRY:
        raise CompressionError(f"codec {codec.name!r} already registered")
    REGISTRY[codec.name] = codec


class Pipeline:
    """An ordered chain of codecs applied stage by stage.

    ``Pipeline([])`` is the identity pipeline: it frames the payload but
    transforms nothing, so "compression disabled" and "compression
    enabled" traffic share one wire format.
    """

    def __init__(self, codecs: Sequence[Codec] = ()) -> None:
        self.codecs: List[Codec] = list(codecs)

    @classmethod
    def named(cls, names: Sequence[str]) -> "Pipeline":
        """Build a pipeline from registry names."""
        missing = [name for name in names if name not in REGISTRY]
        if missing:
            raise CompressionError(
                f"unknown codecs {missing}; known: {sorted(REGISTRY)}"
            )
        return cls([REGISTRY[name] for name in names])

    @classmethod
    def default(cls) -> "Pipeline":
        """LZ77 then Huffman — the classic dictionary+entropy stack."""
        return cls([LZ77, HUFFMAN])

    @classmethod
    def identity(cls) -> "Pipeline":
        return cls([])

    def compress(self, data: bytes) -> bytes:
        """Apply every stage, skipping any that would expand the data."""
        applied: List[str] = []
        current = data
        for codec in self.codecs:
            candidate = codec.compress(current)
            # Keep the stage only if it pays for its own frame-header
            # entry; otherwise the total frame could exceed the input.
            stage_overhead = 1 + len(codec.name)
            if len(candidate) + stage_overhead < len(current):
                current = candidate
                applied.append(codec.name)
        header = bytearray(_MAGIC)
        header.append(len(applied))
        for name in applied:
            encoded = name.encode("ascii")
            header.append(len(encoded))
            header.extend(encoded)
        return bytes(header) + current

    def decompress(self, data: bytes) -> bytes:
        """Reverse a frame produced by any pipeline's :meth:`compress`."""
        if data[:4] != _MAGIC:
            raise CompressionError(f"bad compression frame magic {data[:4]!r}")
        position = 4
        if position >= len(data):
            raise CompressionError("truncated compression frame header")
        stage_count = data[position]
        position += 1
        names: List[str] = []
        for _ in range(stage_count):
            if position >= len(data):
                raise CompressionError("truncated codec name list")
            name_length = data[position]
            position += 1
            raw = data[position : position + name_length]
            if len(raw) != name_length:
                raise CompressionError("truncated codec name")
            names.append(raw.decode("ascii"))
            position += name_length
        payload = data[position:]
        for name in reversed(names):
            codec = REGISTRY.get(name)
            if codec is None:
                raise CompressionError(f"frame names unknown codec {name!r}")
            payload = codec.decompress(payload)
        return payload

    def ratio(self, data: bytes) -> float:
        """Compressed/original size; 1.0 for empty input."""
        if not data:
            return 1.0
        return len(self.compress(data)) / len(data)

    def __repr__(self) -> str:
        return f"Pipeline({[codec.name for codec in self.codecs]})"
