"""Selector-based event-loop TCP backend: many connections, one thread.

The threaded backend (:mod:`repro.transport.tcp`) spends an OS thread
per connection — honest to the paper's 1988 deployment, but a hard cap
well short of the roadmap's fleet-level concurrency.  This backend
multiplexes every connection onto a single ``selectors`` loop:

* **Non-blocking sockets** throughout; the loop sleeps in
  ``selector.select`` and wakes per readiness event.
* **Zero-copy framing**: each connection owns a
  :class:`~repro.transport.framing.FrameDecoder`, whose grow-only
  buffer locates frames in place (no per-frame copies, amortised
  compaction) — a peer dribbling one byte per segment costs O(bytes).
* **Shared write buffering**: replies append to a per-connection outbox
  (header and payload buffered separately, so a large ``BatchReply`` or
  chunk stream is never concatenated first) and drain with as few
  ``send`` calls as the kernel allows.  Write interest is registered
  only while the outbox is non-empty.
* **Backpressure**: the outbox is bounded; a connection whose peer
  stops reading gets its *read* interest dropped once the bound is hit
  — no new requests are parsed for it — and resumes below a low-water
  mark.  One slow consumer can stall only itself.
* **Idle reaping**: a connection that completes no request within
  ``idle_timeout`` is closed, so half-sent frames (slow-loris) cannot
  pin sockets forever.
* **Fairness**: at most ``frames_per_turn`` requests are served per
  connection per loop pass; connections with frames still queued go on
  a runnable list and the next pass continues them, so one pipelining
  client cannot starve the rest.

The wire format, handler contract (request payload in, reply payload
out, ``\\x00HANDLER-ERROR:`` on handler crash), ``SERVER-BUSY`` refusal,
and ``close(drain_seconds)`` semantics — a reply in progress is always
fully written, never torn — are identical to the threaded backend, so
the same clients, :class:`~repro.replication.failover.FailoverChannel`
dial lists, and chaos suites run unchanged against either.  The handler
runs *inside* the loop thread; the server architecture already keeps
handlers short (job execution is off-path on the worker pool), which is
exactly what lets one loop serve thousands of connections.
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.errors import TransportError
from repro.telemetry.registry import MetricsRegistry
from repro.transport.base import ChannelHandler
from repro.transport.framing import (
    FrameDecoder,
    encode_frame,
    encode_frame_header,
)
from repro.transport.tcp import DEFAULT_PORT, SERVER_BUSY_FRAME, set_nodelay

_RECV_CHUNK = 65_536
_SEND_CHUNK = 262_144
#: Idle select timeout: bounds how stale idle-reaping and drain checks
#: can get when no socket is ready.  Readiness events wake the loop
#: immediately; this only paces housekeeping.
_IDLE_TICK = 0.2
#: Dead-prefix bytes tolerated in an outbox before it slides.
_OUTBOX_COMPACT = 64 * 1024

#: A connection that completes no request for this long is reaped.
DEFAULT_IDLE_TIMEOUT = 300.0
#: Per-connection outbox bound; reads pause above it (backpressure).
DEFAULT_OUTBOX_LIMIT = 4 * 1024 * 1024
#: Requests served per connection per loop pass (fairness quantum).
DEFAULT_FRAMES_PER_TURN = 16

#: Loop-iteration histogram buckets — an event-loop pass is far finer
#: grained than the request-path defaults.
ITERATION_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0,
)

_LISTENER = "listener"
_WAKER = "waker"


class _OutBuffer:
    """A connection's pending output: append frames, drain with a cursor.

    One grow-only bytearray with a send offset — the same amortised
    compaction discipline as the read-side decoder.  Every queued reply
    shares this buffer, so a burst of small frames (a pipelined batch's
    replies) drains in large ``send`` calls instead of one syscall per
    frame.
    """

    __slots__ = ("_data", "_offset")

    def __init__(self) -> None:
        self._data = bytearray()
        self._offset = 0

    @property
    def pending(self) -> int:
        return len(self._data) - self._offset

    def append(self, *parts: bytes) -> None:
        for part in parts:
            self._data += part

    def send_to(self, sock: socket.socket) -> int:
        """Push bytes until the kernel refuses; returns bytes sent."""
        total = 0
        while self.pending:
            with memoryview(self._data) as whole:
                with whole[self._offset : self._offset + _SEND_CHUNK] as part:
                    try:
                        sent = sock.send(part)
                    except (BlockingIOError, InterruptedError):
                        break
            if sent <= 0:
                break
            self._offset += sent
            total += sent
        if self._offset and (
            self._offset == len(self._data) or self._offset > _OUTBOX_COMPACT
        ):
            del self._data[: self._offset]
            self._offset = 0
        return total


class _Connection:
    """Loop-private per-connection state."""

    __slots__ = (
        "sock",
        "fd",
        "decoder",
        "outbox",
        "last_frame",
        "paused",
        "close_after_flush",
        "registered",
    )

    def __init__(self, sock: socket.socket, now: float) -> None:
        self.sock = sock
        self.fd = sock.fileno()
        self.decoder = FrameDecoder()
        self.outbox = _OutBuffer()
        #: When the last *complete* request arrived (or the accept).
        #: Deliberately not refreshed by mere bytes: a peer dribbling a
        #: frame forever must still age out.
        self.last_frame = now
        self.paused = False
        self.close_after_flush = False
        self.registered = 0


class EventLoopChannelServer:
    """Server side: one selector loop answering framed requests.

    Drop-in peer of :class:`~repro.transport.tcp.TcpChannelServer` —
    same constructor shape, ``address``/``port``/``live_connections``,
    accept/refuse counters, and ``close(drain_seconds)``.
    """

    def __init__(
        self,
        handler: ChannelHandler,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        max_connections: Optional[int] = None,
        telemetry: Optional[MetricsRegistry] = None,
        idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
        outbox_limit_bytes: int = DEFAULT_OUTBOX_LIMIT,
        frames_per_turn: int = DEFAULT_FRAMES_PER_TURN,
        on_handler_error: Optional[Callable[[BaseException], None]] = None,
    ) -> None:
        if max_connections is not None and max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {max_connections}"
            )
        if outbox_limit_bytes < 1:
            raise ValueError(
                f"outbox_limit_bytes must be >= 1, got {outbox_limit_bytes}"
            )
        self._handler = handler
        self._max_connections = max_connections
        self._telemetry = telemetry
        #: Observer for handler crashes (flight-recorder hook); failures
        #: inside the observer itself are swallowed — observability must
        #: never stall the loop.
        self._on_handler_error = on_handler_error
        self._idle_timeout = idle_timeout
        self._outbox_limit = outbox_limit_bytes
        self._frames_per_turn = max(1, frames_per_turn)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self._listener.setblocking(False)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, _LISTENER)
        #: Cross-thread wake-up for close(): select() returns as soon as
        #: a byte lands on the pipe instead of waiting out the idle tick.
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._wake_send.setblocking(False)
        self._selector.register(self._wake_recv, selectors.EVENT_READ, _WAKER)
        self._conns: Dict[int, _Connection] = {}
        self._conn_lock = threading.Lock()
        #: fds with frames decoded but not yet served (fairness carry-over).
        self._runnable: set = set()
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._drain_deadline = 0.0
        self._next_reap = 0.0
        self.accepted_connections = 0
        self.refused_connections = 0
        self.reaped_idle_connections = 0
        self._iteration_histogram = None
        if telemetry is not None:
            telemetry.gauge(
                "tcp_live_connections",
                callback=lambda: float(self.live_connections),
            )
            telemetry.gauge(
                "eventloop_outbox_bytes", callback=self._total_outbox_bytes
            )
            telemetry.gauge(
                "eventloop_paused_connections",
                callback=self._paused_connections,
            )
            self._iteration_histogram = telemetry.histogram(
                "eventloop_iteration_seconds", buckets=ITERATION_BUCKETS
            )
        self._loop_thread = threading.Thread(
            target=self._run, name="shadow-eventloop", daemon=True
        )
        self._loop_thread.start()

    # ------------------------------------------------------------------
    # public surface (parity with TcpChannelServer)
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def live_connections(self) -> int:
        with self._conn_lock:
            return len(self._conns)

    def _total_outbox_bytes(self) -> float:
        with self._conn_lock:
            return float(
                sum(conn.outbox.pending for conn in self._conns.values())
            )

    def _paused_connections(self) -> float:
        with self._conn_lock:
            return float(
                sum(1 for conn in self._conns.values() if conn.paused)
            )

    def _count(self, name: str, amount: float = 1.0, **labels: str) -> None:
        if self._telemetry is not None:
            self._telemetry.counter(name, labels or None).inc(amount)

    def _wake(self) -> None:
        try:
            self._wake_send.send(b"\x00")
        except OSError:
            pass

    def close(self, drain_seconds: float = 2.0) -> None:
        """Graceful shutdown: stop accepting, drain, then force-close.

        New connections stop immediately.  Connections with work in
        flight — a half-received request, queued frames, or an
        unflushed reply — get a shared ``drain_seconds`` deadline to
        finish; a reply in progress is always fully written, never
        torn.  Whatever outlives the deadline is force-closed, and the
        loop thread is joined before returning.
        """
        self._drain_deadline = time.monotonic() + max(drain_seconds, 0.0)
        self._draining.set()
        self._wake()
        self._loop_thread.join(timeout=max(drain_seconds, 0.0) + 2.0)
        if self._loop_thread.is_alive():
            # A handler is stuck past the deadline; nothing more to do
            # gracefully — the loop will notice the flags when it
            # returns.  Mirror the threaded backend: don't hang close().
            self._stop.set()
            self._wake()
            self._loop_thread.join(timeout=1.0)

    def __enter__(self) -> "EventLoopChannelServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------

    def _run(self) -> None:
        try:
            while not self._stop.is_set():
                timeout = 0.0 if self._runnable else _IDLE_TICK
                if self._draining.is_set():
                    timeout = min(
                        timeout if self._runnable else 0.05,
                        max(self._drain_deadline - time.monotonic(), 0.0),
                    )
                try:
                    events = self._selector.select(timeout)
                except OSError:
                    break
                # The iteration clock starts *after* select returns: the
                # histogram measures work per pass, not idle sleeping —
                # its tail is the signal that a handler stalls the loop.
                now = began = time.monotonic()
                for key, mask in events:
                    data = key.data
                    if data is _LISTENER:
                        self._accept_ready(now)
                    elif data is _WAKER:
                        self._drain_waker()
                    else:
                        conn = data
                        # Write first: a freed outbox can resume reads
                        # for this very pass.
                        if mask & selectors.EVENT_WRITE:
                            self._write_ready(conn)
                        if (
                            conn.fd in self._conns
                            and mask & selectors.EVENT_READ
                        ):
                            self._read_ready(conn, now)
                self._serve_runnable(now)
                self._maybe_reap_idle(now)
                if self._draining.is_set() and self._drain_step(now):
                    break
                if self._iteration_histogram is not None:
                    self._iteration_histogram.observe(
                        time.monotonic() - began
                    )
        finally:
            self._teardown()

    def _drain_waker(self) -> None:
        try:
            while self._wake_recv.recv(1024):
                pass
        except (BlockingIOError, InterruptedError, OSError):
            pass

    # -- accept ---------------------------------------------------------

    def _accept_ready(self, now: float) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed under us (drain)
            if self._draining.is_set() or self._stop.is_set():
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            if (
                self._max_connections is not None
                and len(self._conns) >= self._max_connections
            ):
                self._refuse(sock)
                continue
            sock.setblocking(False)
            set_nodelay(sock)
            conn = _Connection(sock, now)
            with self._conn_lock:
                self._conns[conn.fd] = conn
            self.accepted_connections += 1
            self._count("tcp_accepted_total")
            self._register(conn, selectors.EVENT_READ)

    def _refuse(self, sock: socket.socket) -> None:
        """Turn away a surplus connection with a clean framed notice."""
        self.refused_connections += 1
        self._count("tcp_refused_total")
        with sock:
            try:
                # The frame is tiny; a fresh socket's send buffer always
                # has room, so one non-blocking send suffices.
                sock.send(encode_frame(SERVER_BUSY_FRAME))
            except OSError:
                pass  # peer already gone; the close is the message

    # -- read / serve ---------------------------------------------------

    def _read_ready(self, conn: _Connection, now: float) -> None:
        try:
            chunk = conn.sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(conn)
            return
        if not chunk:
            if conn.decoder.pending_bytes:
                # Peer died mid-frame: the request never made it.
                self._count("tcp_frame_errors_total")
            self._close_conn(conn)
            return
        try:
            conn.decoder.feed(chunk)
        except TransportError:
            # Covers CRC mismatches (FrameCorruptionError) and absurd
            # lengths alike: the stream is unrecoverable.
            self._count("tcp_frame_errors_total")
            self._close_conn(conn)
            return
        self._serve_conn(conn, now)

    def _serve_conn(self, conn: _Connection, now: float) -> None:
        """Answer up to a fairness quantum of this connection's frames."""
        served = 0
        while served < self._frames_per_turn:
            if conn.close_after_flush:
                break
            if conn.outbox.pending > self._outbox_limit:
                break  # backpressure: stop consuming for this peer
            request = conn.decoder.pop()
            if request is None:
                break
            served += 1
            conn.last_frame = now
            self._count("tcp_frames_total", direction="in")
            self._count(
                "tcp_bytes_total", float(len(request)), direction="in"
            )
            try:
                reply = self._handler(request)
            except Exception as exc:  # surface handler crashes
                self._count("tcp_handler_errors_total")
                if self._on_handler_error is not None:
                    try:
                        self._on_handler_error(exc)
                    except Exception:
                        pass
                reply = b"\x00HANDLER-ERROR:" + str(exc).encode(
                    "utf-8", "replace"
                )
            conn.outbox.append(encode_frame_header(reply), reply)
            self._count("tcp_frames_total", direction="out")
            self._count(
                "tcp_bytes_total", float(len(reply)), direction="out"
            )
            if self._draining.is_set():
                # Parity with the threaded drain: finish this reply,
                # then close between frames.
                conn.close_after_flush = True
                break
        if conn.decoder.ready_frames and not conn.close_after_flush:
            self._runnable.add(conn.fd)
        else:
            self._runnable.discard(conn.fd)
        self._flush(conn)

    def _serve_runnable(self, now: float) -> None:
        """Continue connections whose decoded frames outlasted their turn."""
        for fd in list(self._runnable):
            conn = self._conns.get(fd)
            if conn is None:
                self._runnable.discard(fd)
                continue
            if conn.outbox.pending > self._outbox_limit:
                continue  # still backpressured; resumes via _write_ready
            self._serve_conn(conn, now)

    # -- write ----------------------------------------------------------

    def _flush(self, conn: _Connection) -> None:
        """Opportunistic send, then recompute selector interest."""
        if conn.outbox.pending:
            try:
                conn.outbox.send_to(conn.sock)
            except OSError:
                self._close_conn(conn)
                return
        if conn.close_after_flush and not conn.outbox.pending:
            self._close_conn(conn)
            return
        self._update_interest(conn)

    def _write_ready(self, conn: _Connection) -> None:
        self._flush(conn)
        if conn.fd not in self._conns:
            return
        # Dropping below the low-water mark resumes a paused reader; any
        # frames parsed before the pause get a turn on the runnable list.
        if (
            conn.paused
            and conn.outbox.pending <= self._outbox_limit // 2
            and conn.decoder.ready_frames
        ):
            self._runnable.add(conn.fd)

    def _update_interest(self, conn: _Connection) -> None:
        conn.paused = conn.outbox.pending > self._outbox_limit
        want = 0
        if not conn.paused and not conn.close_after_flush:
            want |= selectors.EVENT_READ
        if conn.outbox.pending:
            want |= selectors.EVENT_WRITE
        if want == 0:
            # Not reading, nothing to write: only reachable when paused
            # with an instantly-drained outbox, which cannot happen
            # (paused implies pending > limit); close defensively.
            self._close_conn(conn)
            return
        self._register(conn, want)

    def _register(self, conn: _Connection, events: int) -> None:
        if conn.registered == events:
            return
        try:
            if conn.registered == 0:
                self._selector.register(conn.sock, events, conn)
            else:
                self._selector.modify(conn.sock, events, conn)
        except (KeyError, ValueError, OSError):
            self._close_conn(conn)
            return
        conn.registered = events

    # -- lifecycle ------------------------------------------------------

    def _close_conn(self, conn: _Connection) -> None:
        with self._conn_lock:
            self._conns.pop(conn.fd, None)
        self._runnable.discard(conn.fd)
        if conn.registered:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
            conn.registered = 0
        try:
            conn.sock.close()
        except OSError:
            pass

    def _maybe_reap_idle(self, now: float) -> None:
        if self._idle_timeout is None or now < self._next_reap:
            return
        self._next_reap = now + max(self._idle_timeout / 4.0, _IDLE_TICK)
        for conn in list(self._conns.values()):
            if conn.outbox.pending or conn.decoder.ready_frames:
                continue  # never tear queued work; backpressure ≠ idle
            if now - conn.last_frame > self._idle_timeout:
                self.reaped_idle_connections += 1
                self._count("eventloop_idle_reaped_total")
                self._close_conn(conn)

    def _drain_step(self, now: float) -> bool:
        """One drain pass; True once the loop should exit."""
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError, OSError):
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        expired = now >= self._drain_deadline
        for conn in list(self._conns.values()):
            busy = (
                conn.outbox.pending
                or conn.decoder.ready_frames
                or conn.decoder.pending_bytes
            )
            if expired or not busy:
                # Idle connections close immediately; busy ones only
                # once the deadline has passed (their replies flush
                # through the normal write path until then).
                self._close_conn(conn)
        return expired or not self._conns

    def _teardown(self) -> None:
        for conn in list(self._conns.values()):
            self._close_conn(conn)
        for sock in (self._listener, self._wake_recv, self._wake_send):
            try:
                sock.close()
            except OSError:
                pass
        try:
            self._selector.close()
        except OSError:
            pass
