"""Client introspection and whole-stack edge cases."""

import pytest

from repro.cli import main
from repro.core.service import loopback_pair
from repro.workload.files import make_text_file

PATH = "/data/input.dat"


class TestClientDescribe:
    def test_describe_lists_shadow_files(self, pair):
        client, _ = pair
        client.write_file(PATH, b"v1 content\n")
        client.write_file(PATH, b"v2 content\n")
        described = client.describe()
        key = str(client.workspace.resolve(PATH))
        assert described["shadow_files"][key]["latest"] == 2
        assert described["client_id"] == client.client_id
        assert described["connected_hosts"] == ["supercomputer"]

    def test_describe_counts_results(self, pair):
        client, _ = pair
        client.fetch_output(client.submit("echo x", []))
        assert client.describe()["results_held"] == 1

    def test_describe_environment_included(self, pair):
        client, _ = pair
        assert (
            client.describe()["environment"]["diff_algorithm"]
            == "hunt-mcilroy"
        )


class TestCliFiles:
    def test_files_command(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        from repro.core.server import ShadowServer
        from repro.jobs.executor import SimulatedExecutor
        from repro.transport.tcp import TcpChannelServer

        server = ShadowServer(executor=SimulatedExecutor())
        listener = TcpChannelServer(server.handle, port=0)
        try:
            (tmp_path / "data.txt").write_text("some text\n")
            argv = [
                "--server", f"127.0.0.1:{listener.port}",
                "--state", ".shadow/state.json",
            ]
            assert main(["edit", *argv, "data.txt",
                         "--with-content", "edited\n"]) == 0
            capsys.readouterr()
            assert main(["files", *argv]) == 0
            out = capsys.readouterr().out
            assert "data.txt" in out
            assert "latest v1" in out
        finally:
            listener.close()


class TestEdgeCases:
    def test_empty_file_through_full_stack(self, pair):
        client, server = pair
        client.write_file(PATH, b"")
        key = str(client.workspace.resolve(PATH))
        assert server.cache.get(key).content == b""
        bundle = client.fetch_output(client.submit("wc input.dat", [PATH]))
        assert bundle.exit_code == 0

    def test_file_shrinks_to_empty_and_back(self, pair):
        client, server = pair
        key = str(client.workspace.resolve(PATH))
        client.write_file(PATH, b"full of content\n" * 100)
        client.write_file(PATH, b"")
        assert server.cache.get(key).content == b""
        client.write_file(PATH, b"reborn\n")
        assert server.cache.get(key).content == b"reborn\n"

    def test_binary_content_with_all_byte_values(self, pair):
        client, server = pair
        content = bytes(range(256)) * 20
        client.write_file(PATH, content)
        key = str(client.workspace.resolve(PATH))
        assert server.cache.get(key).content == content

    def test_unicode_path_names(self, pair):
        client, server = pair
        path = "/données/mesures-α.dat"
        client.write_file(path, b"unicode path content\n")
        key = str(client.workspace.resolve(path))
        assert server.cache.get(key).content == b"unicode path content\n"
        name = path.rsplit("/", 1)[-1]
        bundle = client.fetch_output(client.submit(f"cat {name}", [path]))
        assert bundle.stdout == b"unicode path content\n"

    def test_many_versions_of_one_file(self, pair):
        client, server = pair
        content = make_text_file(2_000, seed=180)
        key = str(client.workspace.resolve(PATH))
        for round_number in range(40):
            content = content + b"round %d\n" % round_number
            client.write_file(PATH, content)
        assert server.cache.get(key).version == 40
        assert server.cache.get(key).content == content
        # Retention bounded the client-side chain.
        assert len(client.versions.chain(key).retained_numbers) <= 8

    def test_script_with_many_commands(self, pair):
        client, _ = pair
        client.write_file(PATH, b"a\nb\nc\n")
        script = "\n".join(["wc input.dat"] * 25)
        bundle = client.fetch_output(client.submit(script, [PATH]))
        assert bundle.stdout.count(b"input.dat") == 25

    def test_submit_with_no_files(self, pair):
        client, _ = pair
        bundle = client.fetch_output(client.submit("gen-output 100", []))
        assert len(bundle.stdout) == 100

    def test_very_long_single_line_file(self, pair):
        client, server = pair
        content = b"x" * 200_000  # one line, no newline at all
        client.write_file(PATH, content)
        key = str(client.workspace.resolve(PATH))
        assert server.cache.get(key).content == content
        # Edit one byte: tichy-style deltas aside, the default line diff
        # must still converge (it will resend the single line).
        edited = b"y" + content[1:]
        client.write_file(PATH, edited)
        assert server.cache.get(key).content == edited
