"""Tests for the shadow environment and workspaces."""

import pytest

from repro.core.environment import ShadowEnvironment
from repro.core.workspace import MappingWorkspace, NfsWorkspace
from repro.errors import (
    EnvironmentError_,
    FileNotFoundInVfsError,
    NamingError,
)


class TestShadowEnvironment:
    def test_defaults_are_valid(self):
        environment = ShadowEnvironment()
        assert environment.default_host == "supercomputer"
        assert environment.diff_algorithm == "hunt-mcilroy"

    def test_customized_returns_new_instance(self):
        base = ShadowEnvironment()
        custom = base.customized(diff_algorithm="myers")
        assert custom.diff_algorithm == "myers"
        assert base.diff_algorithm == "hunt-mcilroy"

    def test_unknown_parameter_rejected(self):
        with pytest.raises(EnvironmentError_):
            ShadowEnvironment().customized(colour_scheme="solarized")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(EnvironmentError_):
            ShadowEnvironment(diff_algorithm="bsdiff")

    def test_empty_default_host_rejected(self):
        with pytest.raises(EnvironmentError_):
            ShadowEnvironment(default_host="")

    def test_retention_minimum(self):
        with pytest.raises(EnvironmentError_):
            ShadowEnvironment(max_retained_versions=0)

    def test_describe_covers_every_field(self):
        described = ShadowEnvironment().describe()
        assert "compress_updates" in described
        assert "reverse_shadow" in described
        assert described["max_retained_versions"] == 8


class TestMappingWorkspace:
    @pytest.fixture
    def workspace(self):
        return MappingWorkspace(domain="d1", host="ws")

    def test_write_read(self, workspace):
        workspace.write("/a/b.txt", b"data")
        assert workspace.read("/a/b.txt") == b"data"

    def test_missing_read_raises(self, workspace):
        with pytest.raises(FileNotFoundInVfsError):
            workspace.read("/ghost")

    def test_relative_write_rejected(self, workspace):
        with pytest.raises(NamingError):
            workspace.write("relative.txt", b"")

    def test_resolve_includes_domain_host_path(self, workspace):
        name = workspace.resolve("/a/b.txt")
        assert str(name) == "d1/ws:/a/b.txt"

    def test_exists(self, workspace):
        workspace.write("/x", b"")
        assert workspace.exists("/x")
        assert not workspace.exists("/y")

    def test_initial_files(self):
        workspace = MappingWorkspace(files={"/seed.txt": b"seeded"})
        assert workspace.read("/seed.txt") == b"seeded"

    def test_paths_listing(self, workspace):
        workspace.write("/b", b"")
        workspace.write("/a", b"")
        assert workspace.paths() == ["/a", "/b"]


class TestNfsWorkspace:
    def test_resolve_collapses_aliases(self, nfs_paper_scenario):
        _, resolver = nfs_paper_scenario
        from_a = NfsWorkspace(resolver, host="A")
        from_b = NfsWorkspace(resolver, host="B")
        assert from_a.resolve("/projl/foo") == from_b.resolve("/others/foo")

    def test_read_through_mounts(self, nfs_paper_scenario):
        _, resolver = nfs_paper_scenario
        workspace = NfsWorkspace(resolver, host="A")
        assert workspace.read("/projl/foo") == b"shared content\n"

    def test_write_lands_on_exporting_host(self, nfs_paper_scenario):
        env, resolver = nfs_paper_scenario
        workspace = NfsWorkspace(resolver, host="A")
        workspace.write("/projl/new.dat", b"created")
        assert env.host("C").vfs.read_file("/usr/new.dat") == b"created"

    def test_exists(self, nfs_paper_scenario):
        _, resolver = nfs_paper_scenario
        workspace = NfsWorkspace(resolver, host="A")
        assert workspace.exists("/projl/foo")
        assert not workspace.exists("/projl/ghost")
