"""`shadow serve` under SIGTERM: the graceful-drain path, exercised as
an operator would hit it — a real process, a real signal — against the
event-loop backend (and the threaded one, for parity)."""

import os
import re
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.transport.framing import FrameDecoder, encode_frame

SERVE_TIMEOUT = 30.0


def start_serve(*extra_args: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.abspath("src"), env.get("PYTHONPATH", "")])
    )
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def wait_for_port(proc: subprocess.Popen) -> int:
    """Parse the announced port off the listening line."""
    deadline = time.monotonic() + SERVE_TIMEOUT
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"serve exited early (rc={proc.poll()}) before listening"
            )
        match = re.search(r"listening on [\d.]+:(\d+)", line)
        if match:
            return int(match.group(1))
    raise AssertionError("serve never announced its port")


def raw_request(port: int, payload: bytes) -> bytes:
    with socket.create_connection(("127.0.0.1", port), timeout=10.0) as sock:
        sock.sendall(encode_frame(payload))
        decoder = FrameDecoder()
        while True:
            frame = decoder.pop()
            if frame is not None:
                return frame
            chunk = sock.recv(65_536)
            assert chunk, "server hung up mid-reply"
            decoder.feed(chunk)


@pytest.mark.parametrize("backend", ["eventloop", "threaded"])
def test_sigterm_drains_gracefully(backend):
    proc = start_serve("--transport", backend, "--drain-seconds", "3")
    try:
        port = wait_for_port(proc)
        # Prove the server is actually answering before we signal it.
        # StatsQuery needs no Hello; any framed garbage would get a
        # HANDLER-ERROR, so use a real protocol message.
        from repro.core.protocol import StatsQuery

        reply = raw_request(port, StatsQuery(client_id="probe@ws").to_wire())
        assert reply and not reply.startswith(b"\x00HANDLER-ERROR")

        proc.send_signal(signal.SIGTERM)
        returncode = proc.wait(timeout=SERVE_TIMEOUT)
        output = proc.stdout.read()
        assert returncode == 0, f"serve exited {returncode}: {output}"
        assert "SIGTERM: draining and flushing journal" in output
        # And the socket is really gone.
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=1.0).close()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)
        proc.stdout.close()


def test_sigterm_finishes_in_flight_eventloop_reply():
    """A request racing the signal either completes whole or fails
    cleanly — never a torn frame."""
    proc = start_serve("--transport", "eventloop", "--drain-seconds", "3")
    try:
        port = wait_for_port(proc)
        from repro.core.protocol import StatsQuery

        wire = StatsQuery(client_id="racer@ws").to_wire()
        with socket.create_connection(
            ("127.0.0.1", port), timeout=10.0
        ) as sock:
            sock.sendall(encode_frame(wire))
            proc.send_signal(signal.SIGTERM)
            decoder = FrameDecoder()
            frame = None
            try:
                while frame is None:
                    chunk = sock.recv(65_536)
                    if not chunk:
                        break  # clean EOF: reply raced past the drain
                    decoder.feed(chunk)
                    frame = decoder.pop()
            except OSError:
                frame = None
            if frame is not None:
                # If anything came back it must be a *whole* frame —
                # decoder.feed above would have raised on a torn CRC.
                assert not frame.startswith(b"\x00HANDLER-ERROR")
        assert proc.wait(timeout=SERVE_TIMEOUT) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)
        proc.stdout.close()
