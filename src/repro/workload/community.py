"""A community of scientists sharing one supercomputer centre (§2.1).

"Because a supercomputer serves several users, it is likely to be
swamped with several such remote login and file transfer sessions."

This driver puts N independent clients behind one shadow server, each
running its own edit-submit-fetch cadence on its own files, and accounts
the *aggregate* bytes arriving at the centre — the quantity that swamps
a shared access line and the server's disks.  Comparing shadow against
conventional traffic shows how many more users one centre (or one
backbone trunk) can serve at the same load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.baseline.conventional import ConventionalBatchClient
from repro.core.client import ShadowClient
from repro.core.server import ShadowServer
from repro.core.workspace import MappingWorkspace
from repro.errors import ShadowError
from repro.transport.base import LoopbackChannel
from repro.workload.edits import modify_percent
from repro.workload.files import make_text_file


@dataclass(frozen=True)
class CommunityReport:
    """Aggregate centre-side load for one community run."""

    users: int
    cycles_per_user: int
    bytes_into_centre: int
    bytes_out_of_centre: int

    @property
    def total_bytes(self) -> int:
        return self.bytes_into_centre + self.bytes_out_of_centre

    @property
    def bytes_per_cycle(self) -> float:
        return self.total_bytes / (self.users * self.cycles_per_user)


def run_community(
    users: int = 8,
    cycles_per_user: int = 5,
    file_size: int = 30_000,
    percent_modified: float = 3.0,
    shadow: bool = True,
    seed: int = 722,
) -> CommunityReport:
    """N users, each priming once then running measured resubmission
    cycles.  Returns the centre's aggregate traffic for the measured
    cycles only (priming excluded, as in the paper's steady state).
    """
    if users < 1 or cycles_per_user < 1:
        raise ShadowError("need at least one user and one cycle")
    server = ShadowServer()
    clients: List = []
    channels: List[LoopbackChannel] = []
    contents: Dict[int, bytes] = {}
    for index in range(users):
        workspace = MappingWorkspace(host=f"ws{index}")
        channel = LoopbackChannel(server.handle)
        if shadow:
            client = ShadowClient(f"user{index}@ws{index}", workspace)
            client.connect(server.name, channel)
        else:
            client = ConventionalBatchClient(
                f"user{index}@ws{index}", workspace
            )
            client.connect(server.name, channel)
        clients.append(client)
        channels.append(channel)
        contents[index] = make_text_file(file_size, seed=seed + index)
        path = f"/u{index}/data.dat"
        workspace.write(path, contents[index])
        if shadow:
            client.write_file(path, contents[index])
            job = client.submit("wc data.dat", [path])
            client.fetch_output(job)
        else:
            job = client.submit_job("wc data.dat", [path])
            client.fetch_output(job)
    into_before = sum(channel.stats.request_bytes for channel in channels)
    out_before = sum(channel.stats.reply_bytes for channel in channels)
    for cycle in range(cycles_per_user):
        for index, client in enumerate(clients):
            path = f"/u{index}/data.dat"
            contents[index] = modify_percent(
                contents[index], percent_modified, seed=seed + 100 * cycle + index
            )
            if shadow:
                client.write_file(path, contents[index])
                job = client.submit("wc data.dat", [path])
            else:
                client.workspace.write(path, contents[index])
                job = client.submit_job("wc data.dat", [path])
            client.fetch_output(job)
    return CommunityReport(
        users=users,
        cycles_per_user=cycles_per_user,
        bytes_into_centre=sum(
            channel.stats.request_bytes for channel in channels
        )
        - into_before,
        bytes_out_of_centre=sum(
            channel.stats.reply_bytes for channel in channels
        )
        - out_before,
    )
