"""Tests for framing, loopback channels and the simulated wire."""

import struct
import zlib

import pytest

from repro.errors import (
    FrameCorruptionError,
    SimulationError,
    TransportClosedError,
    TransportError,
)
from repro.simnet.clock import SimulatedClock
from repro.simnet.link import CYPRESS_9600
from repro.simnet.traffic import CongestedLink, ConstantTraffic
from repro.transport.base import LoopbackChannel
from repro.transport.framing import (
    HEADER_SIZE,
    MAX_FRAME_SIZE,
    ChecksummedChannel,
    FrameDecoder,
    checksummed_handler,
    decode_single_frame,
    encode_frame,
    frame_overhead,
)
from repro.transport.sim import SimChannel, Wire


class TestFraming:
    def test_encode_prefixes_length_and_crc(self):
        frame = encode_frame(b"abc")
        assert frame == struct.pack(">II", 3, zlib.crc32(b"abc")) + b"abc"

    def test_decoder_single_frame(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(b"hello")) == 1
        assert decoder.pop() == b"hello"
        assert decoder.pop() is None

    def test_decoder_handles_partial_chunks(self):
        decoder = FrameDecoder()
        frame = encode_frame(b"split me")
        assert decoder.feed(frame[:3]) == 0
        assert decoder.feed(frame[3:6]) == 0
        assert decoder.feed(frame[6:]) == 1
        assert decoder.pop() == b"split me"

    def test_decoder_handles_multiple_frames_in_one_chunk(self):
        decoder = FrameDecoder()
        chunk = encode_frame(b"one") + encode_frame(b"two")
        assert decoder.feed(chunk) == 2
        assert decoder.ready_frames == 2
        assert decoder.pop() == b"one"
        assert decoder.pop() == b"two"

    def test_pop_drains_in_order(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(b"a") + encode_frame(b"b"))
        assert decoder.pop() == b"a"
        assert decoder.pop() == b"b"
        assert decoder.pop() is None

    def test_feed_does_not_deliver(self):
        # The pop-only contract: feed counts, pop delivers exactly once.
        decoder = FrameDecoder()
        count = decoder.feed(encode_frame(b"once"))
        assert count == 1
        assert decoder.pop() == b"once"
        assert decoder.pop() is None  # not deliverable a second time

    def test_empty_frame(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(b"")) == 1
        assert decoder.pop() == b""

    def test_oversized_outgoing_rejected(self):
        with pytest.raises(TransportError):
            encode_frame(b"x" * (MAX_FRAME_SIZE + 1))

    def test_oversized_incoming_rejected(self):
        decoder = FrameDecoder()
        bad_header = struct.pack(">II", MAX_FRAME_SIZE + 1, 0)
        with pytest.raises(TransportError):
            decoder.feed(bad_header)

    def test_pending_bytes(self):
        decoder = FrameDecoder()
        decoder.feed(b"\x00\x00")
        assert decoder.pending_bytes == 2

    def test_overhead_constant(self):
        assert frame_overhead() == HEADER_SIZE == 8

    def test_corrupt_payload_rejected(self):
        frame = bytearray(encode_frame(b"precious payload"))
        frame[HEADER_SIZE + 3] ^= 0xFF
        decoder = FrameDecoder()
        with pytest.raises(FrameCorruptionError):
            decoder.feed(bytes(frame))

    def test_corruption_is_a_transport_error(self):
        # Distinct type, but catchable by existing TransportError handlers.
        assert issubclass(FrameCorruptionError, TransportError)

    def test_decode_single_frame_roundtrip(self):
        assert decode_single_frame(encode_frame(b"whole")) == b"whole"

    def test_decode_single_frame_rejects_trailing_bytes(self):
        with pytest.raises(FrameCorruptionError):
            decode_single_frame(encode_frame(b"x") + b"junk")

    def test_decode_single_frame_rejects_truncation(self):
        with pytest.raises(FrameCorruptionError):
            decode_single_frame(encode_frame(b"chopped")[:-2])

    def test_decode_single_frame_rejects_garbled_length(self):
        frame = bytearray(encode_frame(b"y"))
        frame[0] = 0xFF  # claims a multi-gigabyte frame
        with pytest.raises(FrameCorruptionError):
            decode_single_frame(bytes(frame))


class TestChecksummedChannel:
    def test_round_trip(self):
        channel = ChecksummedChannel(
            LoopbackChannel(checksummed_handler(lambda p: p.upper()))
        )
        assert channel.request(b"ping") == b"PING"

    def test_detects_reply_corruption(self):
        def corrupting_handler(raw: bytes) -> bytes:
            reply = bytearray(checksummed_handler(lambda p: p)(raw))
            reply[-1] ^= 0xFF
            return bytes(reply)

        channel = ChecksummedChannel(LoopbackChannel(corrupting_handler))
        with pytest.raises(FrameCorruptionError):
            channel.request(b"data")


class TestLoopbackChannel:
    def test_request_reply(self):
        channel = LoopbackChannel(lambda payload: payload.upper())
        assert channel.request(b"ping") == b"PING"

    def test_stats_recorded(self):
        channel = LoopbackChannel(lambda payload: b"12345")
        channel.request(b"ab")
        assert channel.stats.requests == 1
        assert channel.stats.request_bytes == 2
        assert channel.stats.reply_bytes == 5
        assert channel.stats.total_bytes == 7

    def test_closed_channel_rejects(self):
        channel = LoopbackChannel(lambda payload: payload)
        channel.close()
        with pytest.raises(TransportClosedError):
            channel.request(b"x")


class TestWire:
    def test_deliver_advances_clock(self):
        wire = Wire(CYPRESS_9600)
        before = wire.clock.now()
        wire.deliver(1_000)
        framed = 1_000 + frame_overhead()
        expected = CYPRESS_9600.transfer_seconds(framed)
        assert wire.clock.now() - before == pytest.approx(expected)

    def test_stats_accumulate(self):
        wire = Wire(CYPRESS_9600)
        wire.deliver(100)
        wire.deliver(200)
        assert wire.stats.transfers == 2
        assert wire.stats.payload_bytes == 300

    def test_arrival_after_does_not_advance_clock(self):
        wire = Wire(CYPRESS_9600)
        arrival = wire.arrival_after(10_000)
        assert wire.clock.now() == 0.0
        assert arrival > 0.0

    def test_arrival_after_with_explicit_start(self):
        wire = Wire(CYPRESS_9600)
        a = wire.arrival_after(100, start=5.0)
        assert a > 5.0

    def test_arrival_in_past_rejected(self):
        wire = Wire(CYPRESS_9600)
        wire.clock.advance(10.0)
        with pytest.raises(SimulationError):
            wire.arrival_after(100, start=3.0)

    def test_congested_wire_samples_model(self):
        congested = CongestedLink(CYPRESS_9600, ConstantTraffic(available=0.5))
        slow = Wire(congested)
        fast = Wire(CYPRESS_9600)
        assert slow.transfer_seconds(1_000) > fast.transfer_seconds(1_000)


class TestSimChannel:
    def test_request_charges_both_directions(self):
        clock = SimulatedClock()
        channel = SimChannel.over_link(
            lambda payload: b"reply-" + payload, CYPRESS_9600, clock
        )
        channel.request(b"hello")
        up = CYPRESS_9600.transfer_seconds(5 + frame_overhead())
        down = CYPRESS_9600.transfer_seconds(11 + frame_overhead())
        assert clock.now() == pytest.approx(up + down)

    def test_separate_wires_share_clock(self):
        clock = SimulatedClock()
        uplink = Wire(CYPRESS_9600, clock)
        downlink = Wire(CYPRESS_9600, clock)
        channel = SimChannel(lambda p: p, uplink, downlink)
        channel.request(b"x")
        assert uplink.stats.transfers == 1
        assert downlink.stats.transfers == 1

    def test_mismatched_clocks_rejected(self):
        uplink = Wire(CYPRESS_9600, SimulatedClock())
        downlink = Wire(CYPRESS_9600, SimulatedClock())
        with pytest.raises(SimulationError):
            SimChannel(lambda p: p, uplink, downlink)

    def test_handler_may_advance_clock(self):
        clock = SimulatedClock()

        def slow_handler(payload: bytes) -> bytes:
            clock.advance(60.0)  # simulated server CPU time
            return b"done"

        channel = SimChannel.over_link(slow_handler, CYPRESS_9600, clock)
        channel.request(b"work")
        assert clock.now() > 60.0
