"""Fleet-wide telemetry: merge every shard's snapshot into one view.

``shadow stats --fleet`` queries each shard with an ordinary
:class:`~repro.core.protocol.StatsQuery` and folds the replies here —
the same shape DIRAC's ``dirac-rms-list-req-cache`` takes over its
ReqProxy fleet: loop the proxies, query each one's cache, present one
aggregate.  The merged snapshot keeps the schema of a single server's
(:data:`scripts/telemetry_schema.json` validates it) with one addition:
a ``fleet`` section recording the per-shard breakdown.

Merging rules, per section:

* ``registry`` — counters and gauges with the same ``(name, labels)``
  sum; histograms sum their counts/sums and their cumulative bucket
  counts, with the quantile estimates recomputed from the merged
  buckets (bucket-resolution, like the registry's own estimates).
* ``events_log`` / ``traces_log`` / ``spans_log`` — integer fields sum.
* ``health`` — the worst per-shard status wins (``critical`` >
  ``degraded`` > ``ok``); per-shard reports ride in the ``fleet``
  section, not here.
* ``flight`` — trigger/dump counts sum.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Health statuses from best to worst; merge takes the maximum index.
_HEALTH_ORDER = ("ok", "degraded", "critical")


def _merge_series(
    snapshots: List[Dict[str, Any]], kind: str
) -> List[Dict[str, Any]]:
    """Sum counters or gauges sharing one ``(name, labels)`` identity."""
    merged: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for snapshot in snapshots:
        for series in snapshot.get(kind, []):
            identity = (
                series["name"],
                tuple(sorted(dict(series.get("labels", {})).items())),
            )
            merged[identity] = merged.get(identity, 0) + series["value"]
    return [
        {"name": name, "labels": dict(labels), "value": value}
        for (name, labels), value in sorted(merged.items())
    ]


def _quantile_from_buckets(
    buckets: List[List[Any]], count: float, q: float
) -> float:
    """Bucket-resolution quantile over merged cumulative buckets."""
    if count <= 0:
        return 0.0
    rank = q * count
    last_finite = 0.0
    for le, cumulative in buckets:
        if le == "+Inf":
            break
        last_finite = float(le)
        if cumulative >= rank:
            return float(le)
    return last_finite


def _merge_histograms(
    snapshots: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    merged: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Dict[str, Any]] = {}
    for snapshot in snapshots:
        for series in snapshot.get("histograms", []):
            identity = (
                series["name"],
                tuple(sorted(dict(series.get("labels", {})).items())),
            )
            entry = merged.setdefault(
                identity, {"count": 0, "sum": 0.0, "buckets": {}}
            )
            entry["count"] += series["count"]
            entry["sum"] += series["sum"]
            for le, cumulative in series.get("buckets", []):
                entry["buckets"][le] = (
                    entry["buckets"].get(le, 0) + cumulative
                )
    out: List[Dict[str, Any]] = []
    for (name, labels), entry in sorted(merged.items()):
        # Bounds sort numerically with +Inf last, whatever mix of
        # bucket layouts the shards used.
        buckets = sorted(
            entry["buckets"].items(),
            key=lambda pair: (
                (float("inf"), 0)
                if pair[0] == "+Inf"
                else (float(pair[0]), 0)
            ),
        )
        bucket_rows = [[le, cumulative] for le, cumulative in buckets]
        out.append(
            {
                "name": name,
                "labels": dict(labels),
                "count": entry["count"],
                "sum": entry["sum"],
                "p50": _quantile_from_buckets(
                    bucket_rows, entry["count"], 0.50
                ),
                "p95": _quantile_from_buckets(
                    bucket_rows, entry["count"], 0.95
                ),
                "p99": _quantile_from_buckets(
                    bucket_rows, entry["count"], 0.99
                ),
                "buckets": bucket_rows,
            }
        )
    return out


def _sum_ints(dicts: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Sum the integer/float fields of parallel describe() dicts;
    non-numeric fields keep the first shard's value."""
    merged: Dict[str, Any] = {}
    for item in dicts:
        for key, value in item.items():
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                merged.setdefault(key, value)
            else:
                base = merged.get(key, 0)
                merged[key] = (base if isinstance(base, (int, float)) else 0) + value
    return merged


def merge_snapshots(
    snapshots: Mapping[str, Dict[str, Any]],
    epoch: Optional[int] = None,
) -> Dict[str, Any]:
    """Fold per-shard stats snapshots into one fleet-wide snapshot.

    ``snapshots`` maps shard (server) name to that server's
    :class:`~repro.core.protocol.StatsReply` snapshot dict.  The result
    validates against the single-server telemetry schema plus the
    ``fleet`` section.
    """
    names = sorted(snapshots)
    ordered = [snapshots[name] for name in names]
    worst = 0
    for snapshot in ordered:
        status = snapshot.get("health", {}).get("status", "ok")
        if status in _HEALTH_ORDER:
            worst = max(worst, _HEALTH_ORDER.index(status))
    registries = [item.get("registry", {}) for item in ordered]
    merged: Dict[str, Any] = {
        "server": f"fleet({len(names)} shards)",
        "registry": {
            "counters": _merge_series(registries, "counters"),
            "gauges": _merge_series(registries, "gauges"),
            "histograms": _merge_histograms(registries),
        },
        "events_log": _sum_ints(
            [item.get("events_log", {}) for item in ordered]
        ),
        "traces_log": _sum_ints(
            [item.get("traces_log", {}) for item in ordered]
        ),
        "spans_log": _sum_ints(
            [item.get("spans_log", {}) for item in ordered]
        ),
        "health": {
            "component": "fleet-health",
            "status": _HEALTH_ORDER[worst],
            "window_seconds": max(
                (
                    float(item.get("health", {}).get("window_seconds", 0.0))
                    for item in ordered
                ),
                default=0.0,
            ),
            "samples": sum(
                int(item.get("health", {}).get("samples", 0) or 0)
                for item in ordered
            ),
            "objectives": [],
        },
        "flight": _sum_ints([item.get("flight", {}) for item in ordered]),
        "fleet": {
            "component": "fleet",
            "shards": len(names),
            "servers": names,
            "epoch": epoch if epoch is not None else _map_epoch(ordered),
            "per_shard": {
                name: _shard_summary(snapshots[name]) for name in names
            },
        },
    }
    return merged


def _map_epoch(snapshots: List[Dict[str, Any]]) -> int:
    """The newest shard-map epoch any shard reported (0 = none did)."""
    newest = 0
    for snapshot in snapshots:
        fleet = snapshot.get("fleet", {})
        map_info = fleet.get("map", {})
        newest = max(newest, int(map_info.get("epoch", 0) or 0))
    return newest


def _shard_summary(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The per-shard row of the fleet section: enough to spot a limping
    or lopsided shard without re-querying it."""
    requests = 0
    for series in snapshot.get("registry", {}).get("counters", []):
        if series.get("name") == "requests_total":
            requests += int(series.get("value", 0))
    fleet = snapshot.get("fleet", {})
    return {
        "server": snapshot.get("server", ""),
        "requests": requests,
        "health": snapshot.get("health", {}).get("status", "ok"),
        "owned_keys": int(fleet.get("owned_keys", 0) or 0),
        "redirects": int(fleet.get("redirects", 0) or 0),
    }
