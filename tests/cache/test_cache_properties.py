"""Property-based and stateful tests for the cache store."""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.cache.eviction import POLICIES
from repro.cache.store import CacheStore
from repro.errors import CacheMissError

keys = st.sampled_from([f"dom/h:/f{i}" for i in range(8)])
contents = st.binary(min_size=0, max_size=300)
policies = st.sampled_from(sorted(POLICIES))


@settings(max_examples=100, deadline=None)
@given(
    policy=policies,
    operations=st.lists(st.tuples(keys, contents), min_size=1, max_size=40),
)
def test_capacity_never_exceeded(policy, operations):
    store = CacheStore(capacity_bytes=500, policy=POLICIES[policy])
    version = 0
    for key, content in operations:
        version += 1
        store.put(key, content, version=version)
        assert store.used_bytes <= 500


@settings(max_examples=100, deadline=None)
@given(
    policy=policies,
    operations=st.lists(st.tuples(keys, contents), min_size=1, max_size=40),
)
def test_cached_content_is_last_written(policy, operations):
    store = CacheStore(capacity_bytes=2_000, policy=POLICIES[policy])
    latest = {}
    version = 0
    for key, content in operations:
        version += 1
        stored = store.put(key, content, version=version)
        if stored is not None:
            latest[key] = (content, version)
        else:
            latest.pop(key, None)
    for key, (content, version) in latest.items():
        if key in store:
            entry = store.get(key)
            assert entry.content == content
            assert entry.version == version


class CacheMachine(RuleBasedStateMachine):
    """Stateful model check: the store vs a dict-with-size-bound model."""

    def __init__(self):
        super().__init__()
        self.store = CacheStore(capacity_bytes=400)
        self.model = {}
        self.version = 0
        self.timestamp = 0.0

    def _tick(self) -> float:
        self.timestamp += 1.0
        return self.timestamp

    @rule(key=keys, content=contents)
    def put(self, key, content):
        self.version += 1
        stored = self.store.put(
            key, content, version=self.version, timestamp=self._tick()
        )
        if stored is None:
            self.model.pop(key, None)
        else:
            self.model[key] = (content, self.version)

    @rule(key=keys)
    def get(self, key):
        if key in self.store:
            entry = self.store.get(key, timestamp=self._tick())
            content, version = self.model[key]
            assert entry.content == content
            assert entry.version == version
        else:
            try:
                self.store.get(key, timestamp=self._tick())
                raise AssertionError("expected CacheMissError")
            except CacheMissError:
                pass

    @rule(key=keys)
    def invalidate(self, key):
        self.store.invalidate(key)
        self.model.pop(key, None)

    @rule()
    def flush(self):
        self.store.flush()
        self.model.clear()

    @invariant()
    def within_capacity(self):
        assert self.store.used_bytes <= 400

    @invariant()
    def store_is_subset_of_model(self):
        # Evictions may drop model entries silently (they are the
        # best-effort part); whatever IS cached must match the model.
        for key, (content, version) in self.model.items():
            if key in self.store:
                entry = self.store.peek_entry(key)
                assert entry is not None and entry.content == content

    @invariant()
    def directories_track_entries(self):
        for domain in self.store.domains:
            directory = self.store.domain_directory(domain)
            for file_id, shadow_id in directory.entries().items():
                key = f"{domain}/{file_id}"
                entry = self.store.peek_entry(key)
                assert entry is not None
                assert entry.shadow_id == shadow_id


TestCacheMachine = CacheMachine.TestCase
