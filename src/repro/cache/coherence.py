"""Cache-coherence bookkeeping for the demand-driven server (§6.4).

"The key aspect of the client-server interaction is maintaining the
coherency of the server cache."  Clients notify the server whenever a new
version of a shadow file exists; the server records the newest version
known per file and compares it against what the cache holds to decide
whether (and from which base) an update must be pulled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.store import CacheStore


@dataclass(frozen=True)
class PullNeed:
    """One file the server should refresh, and the base it can offer."""

    key: str
    cached_version: Optional[int]
    latest_version: int

    @property
    def is_initial(self) -> bool:
        """True when no usable base exists (full transfer expected)."""
        return self.cached_version is None


class CoherenceTracker:
    """Tracks newest-known client versions against cached versions."""

    def __init__(self, store: CacheStore) -> None:
        self.store = store
        self._latest_known: Dict[str, int] = {}

    def note_notification(self, key: str, version: int) -> None:
        """A client announced that ``version`` of ``key`` now exists."""
        current = self._latest_known.get(key, 0)
        if version > current:
            self._latest_known[key] = version

    def latest_known(self, key: str) -> Optional[int]:
        return self._latest_known.get(key)

    def needs_pull(self, key: str) -> Optional[PullNeed]:
        """Does the cache lag the newest announced version of ``key``?"""
        latest = self._latest_known.get(key)
        if latest is None:
            return None
        cached = self.store.peek_version(key)
        if cached is not None and cached >= latest:
            return None
        return PullNeed(key=key, cached_version=cached, latest_version=latest)

    def stale_keys(self) -> List[PullNeed]:
        """Every file whose cached copy lags its newest announced version."""
        needs = []
        for key in sorted(self._latest_known):
            need = self.needs_pull(key)
            if need is not None:
                needs.append(need)
        return needs

    def is_current(self, key: str) -> bool:
        return self.needs_pull(key) is None

    def forget(self, key: str) -> None:
        """Stop tracking a file (client deleted it)."""
        self._latest_known.pop(key, None)
        self.store.invalidate(key)
