"""Tests for eviction policies."""

import pytest

from repro.cache.entry import ShadowFile
from repro.cache.eviction import (
    POLICIES,
    CostAwarePolicy,
    FifoPolicy,
    LargestFirstPolicy,
    LfuPolicy,
    LruPolicy,
    policy_named,
)
from repro.errors import CacheError


def entry(key, size=10, created=0.0, accessed=0.0, hits=0):
    shadow = ShadowFile(
        shadow_id=f"sf-{key}",
        key=key,
        version=1,
        content=b"x" * size,
        created_at=created,
        last_access=accessed,
    )
    shadow.access_count = hits
    return shadow


class TestLru:
    def test_least_recent_first(self):
        entries = [entry("a", accessed=5.0), entry("b", accessed=1.0)]
        order = LruPolicy().victim_order(entries, now=10.0)
        assert [e.key for e in order] == ["b", "a"]


class TestLfu:
    def test_least_frequent_first(self):
        entries = [entry("hot", hits=10), entry("cold", hits=1)]
        order = LfuPolicy().victim_order(entries, now=0.0)
        assert order[0].key == "cold"

    def test_frequency_ties_broken_by_recency(self):
        entries = [
            entry("newer", hits=2, accessed=9.0),
            entry("older", hits=2, accessed=1.0),
        ]
        order = LfuPolicy().victim_order(entries, now=10.0)
        assert order[0].key == "older"


class TestFifo:
    def test_oldest_creation_first(self):
        entries = [entry("young", created=9.0), entry("old", created=1.0)]
        order = FifoPolicy().victim_order(entries, now=10.0)
        assert order[0].key == "old"

    def test_access_does_not_rescue_fifo_victim(self):
        old = entry("old", created=1.0, accessed=100.0, hits=50)
        young = entry("young", created=9.0)
        order = FifoPolicy().victim_order([old, young], now=100.0)
        assert order[0].key == "old"


class TestLargestFirst:
    def test_largest_first(self):
        entries = [entry("small", size=5), entry("big", size=500)]
        order = LargestFirstPolicy().victim_order(entries, now=0.0)
        assert order[0].key == "big"


class TestCostAware:
    def test_small_hot_files_kept(self):
        hot = entry("hot", size=10, hits=20, accessed=99.0)
        cold_big = entry("cold", size=10_000, hits=1, accessed=1.0)
        order = CostAwarePolicy().victim_order([hot, cold_big], now=100.0)
        assert order[0].key == "cold"

    def test_decay_forgets_ancient_hits(self):
        ancient = entry("ancient", size=10, hits=100, accessed=0.0)
        recent = entry("recent", size=10, hits=2, accessed=99_990.0)
        order = CostAwarePolicy(half_life=100.0).victim_order(
            [ancient, recent], now=100_000.0
        )
        assert order[0].key == "ancient"

    def test_half_life_validated(self):
        with pytest.raises(CacheError):
            CostAwarePolicy(half_life=0)


class TestRegistry:
    def test_all_policies_named(self):
        assert set(POLICIES) == {
            "lru",
            "lfu",
            "fifo",
            "largest-first",
            "cost-aware",
        }

    def test_lookup(self):
        assert policy_named("lru").name == "lru"

    def test_unknown_policy(self):
        with pytest.raises(CacheError):
            policy_named("arc")
