"""Measurement records and paper-style reporting."""

from repro.metrics.recorder import (
    CycleOutcome,
    FigureData,
    FigurePoint,
    ResilienceStats,
    Series,
)
from repro.metrics.plot import ascii_plot
from repro.metrics.report import (
    format_figure,
    format_resilience,
    format_series_csv,
    format_speedup_table,
    format_table,
    format_traces,
)
from repro.metrics.tracing import RequestTrace, TraceLog

__all__ = [
    "CycleOutcome",
    "FigureData",
    "FigurePoint",
    "RequestTrace",
    "ResilienceStats",
    "Series",
    "TraceLog",
    "ascii_plot",
    "format_figure",
    "format_resilience",
    "format_series_csv",
    "format_speedup_table",
    "format_table",
    "format_traces",
]
