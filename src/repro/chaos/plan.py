"""The FaultPlan DSL: a seeded, deterministic schedule of injected faults.

A chaos run is only worth debugging if it can be *re*-run: every fault
in a plan is explicit data (what, where, when), and the only source of
randomness is the plan's own seeded ``random.Random`` — the same seed
always builds the same plan, byte for byte, independent of
PYTHONHASHSEED, wall clock, or interleaving.

Fault kinds, mirroring the ways a real deployment dies:

``crash-at-record``
    Kill a shard's primary exactly as its Nth journal record is
    appended (before the record ships to the standby) or just after
    the standby acked it (``after_ship=True``) — the two boundaries
    the PR 6 failover matrix distinguishes.
``disk-full``
    The journal device fills at the Nth append: the server must die
    rather than acknowledge an unjournaled mutation, so the fault is
    contained exactly like a crash at that boundary.
``partition``
    A shard drops off the network for a window of simulated time —
    probes, client traffic, everything bounces until the window ends.
``slow-link``
    A shard's link degrades for a window: every request through it
    burns extra simulated seconds (the latency chaos that flushes out
    timeout assumptions).
``garble``
    The Nth reply through a shard's link is corrupted in flight —
    the framing/codec layer must reject it rather than act on it.

Plans are built fluently and consumed by
:func:`repro.chaos.inject.apply_plan` against a
:class:`~repro.chaos.fleet.ChaosFleet`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple

from repro.errors import ShadowError

#: The repo-wide chaos seed (after technical report CSD-TR-722).
DEFAULT_SEED = 722

_KINDS = ("crash-at-record", "disk-full", "partition", "slow-link", "garble")


@dataclass(frozen=True)
class Fault:
    """One injected fault; unused fields stay at their zero values."""

    kind: str
    shard: str
    at_record: int = 0
    after_ship: bool = False
    start: float = 0.0
    duration: float = 0.0
    delay: float = 0.0
    at_request: int = 0

    def describe(self) -> Dict[str, Any]:
        info: Dict[str, Any] = {"kind": self.kind, "shard": self.shard}
        if self.kind in ("crash-at-record", "disk-full"):
            info["at_record"] = self.at_record
            if self.kind == "crash-at-record":
                info["after_ship"] = self.after_ship
        if self.kind in ("partition", "slow-link"):
            info["start"] = self.start
            info["duration"] = self.duration
            if self.kind == "slow-link":
                info["delay"] = self.delay
        if self.kind == "garble":
            info["at_request"] = self.at_request
        return info


class FaultPlan:
    """An ordered fault schedule with one seeded randomness source."""

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self.faults: List[Fault] = []

    # ------------------------------------------------------------------
    # explicit faults (fluent)
    # ------------------------------------------------------------------
    def _add(self, fault: Fault) -> "FaultPlan":
        if fault.kind not in _KINDS:
            raise ShadowError(f"unknown fault kind {fault.kind!r}")
        if not fault.shard:
            raise ShadowError("a fault needs a target shard")
        self.faults.append(fault)
        return self

    def crash_at_record(
        self, shard: str, at_record: int, after_ship: bool = False
    ) -> "FaultPlan":
        if at_record < 1:
            raise ShadowError(f"at_record must be >= 1, got {at_record}")
        return self._add(
            Fault(
                kind="crash-at-record",
                shard=shard,
                at_record=at_record,
                after_ship=after_ship,
            )
        )

    def disk_full(self, shard: str, at_record: int) -> "FaultPlan":
        if at_record < 1:
            raise ShadowError(f"at_record must be >= 1, got {at_record}")
        return self._add(
            Fault(kind="disk-full", shard=shard, at_record=at_record)
        )

    def partition(
        self, shard: str, start: float, duration: float
    ) -> "FaultPlan":
        if duration <= 0:
            raise ShadowError(f"duration must be > 0, got {duration}")
        return self._add(
            Fault(
                kind="partition", shard=shard, start=start, duration=duration
            )
        )

    def slow_link(
        self,
        shard: str,
        start: float,
        duration: float,
        delay: float = 0.05,
    ) -> "FaultPlan":
        if duration <= 0 or delay <= 0:
            raise ShadowError(
                f"duration and delay must be > 0, got {duration}/{delay}"
            )
        return self._add(
            Fault(
                kind="slow-link",
                shard=shard,
                start=start,
                duration=duration,
                delay=delay,
            )
        )

    def garble(self, shard: str, at_request: int) -> "FaultPlan":
        if at_request < 1:
            raise ShadowError(f"at_request must be >= 1, got {at_request}")
        return self._add(
            Fault(kind="garble", shard=shard, at_request=at_request)
        )

    # ------------------------------------------------------------------
    # seeded sampling (the matrix generators)
    # ------------------------------------------------------------------
    def random_crash(
        self,
        shards: Iterable[str],
        max_record: int,
        after_ship_allowed: bool = True,
    ) -> Fault:
        """Sample one crash fault — which shard, which record boundary,
        which side of the ship — from the plan's seeded stream."""
        names: Tuple[str, ...] = tuple(shards)
        if not names or max_record < 1:
            raise ShadowError("random_crash needs shards and max_record >= 1")
        shard = names[self._rng.randrange(len(names))]
        at_record = 1 + self._rng.randrange(max_record)
        after_ship = bool(
            after_ship_allowed and self._rng.randrange(2)
        )
        fault = Fault(
            kind="crash-at-record",
            shard=shard,
            at_record=at_record,
            after_ship=after_ship,
        )
        self._add(fault)
        return fault

    def random_crashes(
        self, shards: Iterable[str], max_record: int, count: int
    ) -> List[Fault]:
        return [
            self.random_crash(shards, max_record) for _ in range(count)
        ]

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def for_shard(self, shard: str) -> List[Fault]:
        return [fault for fault in self.faults if fault.shard == shard]

    def describe(self) -> Dict[str, Any]:
        return {
            "component": "fault-plan",
            "seed": self.seed,
            "faults": [fault.describe() for fault in self.faults],
        }
