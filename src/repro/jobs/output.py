"""Output packaging and delivery routing (§6.2, §8.3).

"After a job is executed, the output and the errors (if any) are returned
automatically.  The optional arguments allow the user to specify the
names of files into which the system stores output and error messages."

The future-work item — "routing the output to different hosts", e.g. a
host with a high-speed printer (§1) — is implemented here too: a
:class:`DeliveryPlan` says *where* each piece goes, and the server's
delivery step follows it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import JobError
from repro.jobs.executor import ExecutionResult
from repro.jobs.spec import JobRequest


@dataclass(frozen=True)
class OutputBundle:
    """Everything shipped back for one finished job."""

    job_id: str
    exit_code: int
    stdout: bytes
    stderr: bytes
    output_files: Dict[str, bytes] = field(default_factory=dict)
    cpu_seconds: float = 0.0

    @property
    def payload_bytes(self) -> int:
        return (
            len(self.stdout)
            + len(self.stderr)
            + sum(len(content) for content in self.output_files.values())
        )

    @classmethod
    def from_result(cls, job_id: str, result: ExecutionResult) -> "OutputBundle":
        return cls(
            job_id=job_id,
            exit_code=result.exit_code,
            stdout=result.stdout,
            stderr=result.stderr,
            output_files=dict(result.output_files),
            cpu_seconds=result.cpu_seconds,
        )


@dataclass(frozen=True)
class DeliveryPlan:
    """Where a job's results should land.

    ``destination_host`` is the submitting client's host unless the user
    routed output elsewhere; ``output_file``/``error_file`` are the local
    names to store stdout/stderr under (defaults derived from the job id,
    as batch systems traditionally do).
    """

    job_id: str
    destination_host: str
    output_file: str
    error_file: str
    is_third_party: bool = False

    @classmethod
    def for_request(
        cls, job_id: str, request: JobRequest, client_host: str
    ) -> "DeliveryPlan":
        if not client_host:
            raise JobError("delivery requires a client host")
        destination = request.deliver_to_host or client_host
        return cls(
            job_id=job_id,
            destination_host=destination,
            output_file=request.output_file or f"{job_id}.out",
            error_file=request.error_file or f"{job_id}.err",
            is_third_party=destination != client_host,
        )


def store_bundle(
    bundle: OutputBundle,
    plan: DeliveryPlan,
    sink: Dict[str, bytes],
) -> List[str]:
    """Materialise a bundle into a client-side file sink.

    ``sink`` maps file names to contents (the client's result area).
    Returns the names written.  Empty stderr writes no error file, like
    classic batch systems.
    """
    written: List[str] = []
    sink[plan.output_file] = bundle.stdout
    written.append(plan.output_file)
    if bundle.stderr:
        sink[plan.error_file] = bundle.stderr
        written.append(plan.error_file)
    for name, content in bundle.output_files.items():
        sink[name] = content
        written.append(name)
    return written
