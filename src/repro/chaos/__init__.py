"""Deterministic chaos engineering for the shadow fleet.

``repro.chaos`` is the fault-injection substrate the self-healing
fleet is tested against: a seeded :class:`~repro.chaos.plan.FaultPlan`
DSL describing *what* breaks (crash at a journal-record boundary,
network partition, slow or garbled link, disk-full on journal append),
an injection layer applying it (:mod:`~repro.chaos.inject`), and the
:class:`~repro.chaos.fleet.ChaosFleet` harness running a whole sharded,
optionally-replicated fleet plus its supervisor on one simulated clock
(:mod:`~repro.chaos.fleet`).

Everything is deterministic by construction — same seed, same run —
and strictly test-side: no production module imports this package.
"""

from repro.chaos.fleet import ChaosFleet
from repro.chaos.inject import LinkFaults, apply_fault, apply_plan
from repro.chaos.plan import DEFAULT_SEED, Fault, FaultPlan

__all__ = [
    "ChaosFleet",
    "DEFAULT_SEED",
    "Fault",
    "FaultPlan",
    "LinkFaults",
    "apply_fault",
    "apply_plan",
]
