"""Span recorder, scopes, and the offline assembler."""

from __future__ import annotations

import io
import json

import pytest

from repro.metrics.tracing import RequestTrace
from repro.telemetry.events import JsonLinesSink
from repro.telemetry.spans import (
    Span,
    SpanRecorder,
    assemble,
    child_span,
    current_span_id,
    load_span_files,
    render_tree,
)


def make_span(recorder: SpanRecorder, **overrides) -> Span:
    fields = dict(
        span_id=recorder.new_span_id(),
        trace_id="t-1",
        parent_id="",
        name="op",
        site=recorder.site,
        start=100.0,
        duration=0.01,
    )
    fields.update(overrides)
    return Span(**fields)


def test_span_ids_are_unique_across_recorders():
    first = SpanRecorder(site="a")
    second = SpanRecorder(site="b")
    ids = {first.new_span_id() for _ in range(100)}
    ids |= {second.new_span_id() for _ in range(100)}
    assert len(ids) == 200


def test_ring_is_bounded_and_snapshot_filters_by_trace():
    recorder = SpanRecorder(site="s", capacity=3)
    for index in range(5):
        recorder.record(make_span(recorder, trace_id=f"t-{index % 2}"))
    assert len(recorder) == 3
    assert recorder.recorded == 5
    only = recorder.snapshot(trace_id="t-0")
    assert all(span.trace_id == "t-0" for span in only)


def test_sink_receives_dicts_and_broken_sink_is_dropped():
    seen = []
    recorder = SpanRecorder(site="s", sink=seen.append)
    recorder.record(make_span(recorder))
    assert seen and seen[0]["site"] == "s"

    def broken(record):
        raise RuntimeError("disk full")

    recorder.sink = broken
    recorder.record(make_span(recorder))  # must not raise
    assert recorder.sink is None
    assert recorder.describe()["sink"] is False


def test_record_trace_emits_root_plus_phase_children():
    recorder = SpanRecorder(site="server:test")
    trace = RequestTrace(request_id="r1", client_id="c", kind="edit",
                         trace_id="t-9")
    with trace.phase("decode"):
        pass
    trace.finish()
    root_id = recorder.new_span_id()
    recorder.record_trace(trace, span_id=root_id, name="server.request",
                          parent_id="psp-1")
    spans = recorder.snapshot()
    root = [span for span in spans if span.span_id == root_id][0]
    assert root.parent_id == "psp-1"
    assert root.attrs["request_id"] == "r1"
    children = [span for span in spans if span.parent_id == root_id]
    assert [child.name for child in children] == ["decode"]


def test_trace_scope_sets_parent_from_trace_and_nests_child_spans():
    recorder = SpanRecorder(site="server:test")
    trace = RequestTrace(request_id="r2", trace_id="t-10")
    trace.parent_span = "client-psp"
    assert current_span_id() == ""
    with recorder.trace_scope(trace, "server.request") as root_id:
        assert current_span_id() == root_id
        with child_span("journal.append", record="submit") as child_id:
            assert child_id
    assert current_span_id() == ""
    spans = {span.span_id: span for span in recorder.snapshot()}
    root = spans[root_id]
    assert root.parent_id == "client-psp"
    assert root.trace_id == "t-10"
    child = spans[child_id]
    assert child.parent_id == root_id
    assert child.attrs == {"record": "submit"}


def test_child_span_is_noop_without_scope_and_flags_errors():
    with child_span("orphan") as span_id:
        assert span_id == ""
    recorder = SpanRecorder(site="s")
    trace = RequestTrace(trace_id="t-11")
    with pytest.raises(ValueError):
        with recorder.trace_scope(trace, "req"):
            with child_span("boom"):
                raise ValueError("nope")
    failed = [
        span for span in recorder.snapshot() if span.name == "boom"
    ][0]
    assert failed.status == "error"


def test_assemble_builds_tree_and_reports_orphans():
    records = [
        {"span_id": "a", "trace_id": "t", "parent_id": "", "name": "rpc",
         "start": 1.0, "duration": 0.5},
        {"span_id": "b", "trace_id": "t", "parent_id": "a",
         "name": "request", "start": 1.1, "duration": 0.3},
        {"span_id": "b", "trace_id": "t", "parent_id": "a",
         "name": "request", "start": 1.1, "duration": 0.3},  # duplicate
        {"span_id": "c", "trace_id": "t", "parent_id": "missing",
         "name": "lost", "start": 1.2, "duration": 0.1},
        {"span_id": "z", "trace_id": "other", "parent_id": "",
         "name": "noise", "start": 0.0, "duration": 0.1},
    ]
    tree = assemble(records, "t")
    assert tree["spans"] == 3
    assert [root["span_id"] for root in tree["roots"]] == ["a"]
    assert [kid["span_id"] for kid in tree["children"]["a"]] == ["b"]
    assert [orphan["span_id"] for orphan in tree["orphans"]] == ["c"]
    rendered = render_tree(tree)
    assert "rpc" in rendered and "orphans" in rendered


def test_load_span_files_round_trips_jsonl(tmp_path):
    recorder = SpanRecorder(site="client")
    stream = io.StringIO()
    recorder.sink = JsonLinesSink(stream)
    recorder.record(make_span(recorder, trace_id="t-file"))
    path = tmp_path / "spans.jsonl"
    path.write_text(stream.getvalue() + "not json\n{\"no_span\": 1}\n")
    records = load_span_files([str(path)])
    assert len(records) == 1
    assert records[0]["trace_id"] == "t-file"
    tree = assemble(records, "t-file")
    assert tree["spans"] == 1 and not tree["orphans"]


def test_render_tree_empty_trace():
    tree = assemble([], "t-none")
    assert "no spans" in render_tree(tree)
    assert json.dumps(tree)  # JSON-serialisable for --json
