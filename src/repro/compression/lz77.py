"""LZ77 sliding-window compression.

The dictionary coder of the paper-era family (Ziv & Lempel 1977); this is
the same scheme the contemporary ``compress``/ZIP lineage built on and a
natural candidate for the paper's §8.3 compression plan.

Format: a token stream.

* ``0x00 <u8 len> <len bytes>`` — literal block (1..255 bytes).
* ``0x01 <u16 distance> <u16 length>`` — match: copy ``length`` bytes from
  ``distance`` bytes back in the already-decoded output (big-endian).

Matches may overlap themselves (distance < length), giving cheap run
encoding.  The encoder hash-chains 4-byte seeds over a 64 KiB window.
"""

from __future__ import annotations

import struct
from typing import Dict, List

from repro.errors import CompressionError

NAME = "lz77"

_WINDOW = 65_535
_SEED = 4
_MIN_MATCH = 6  # a match token costs 5 bytes; shorter matches are literals
_MAX_MATCH = 65_535
_MAX_LITERAL = 255
_MAX_CHAIN = 32


def compress(data: bytes) -> bytes:
    """LZ77-encode ``data``."""
    out = bytearray()
    literal = bytearray()
    chains: Dict[bytes, List[int]] = {}
    position = 0
    length = len(data)

    def flush_literal() -> None:
        start = 0
        while start < len(literal):
            chunk = literal[start : start + _MAX_LITERAL]
            out.append(0x00)
            out.append(len(chunk))
            out.extend(chunk)
            start += len(chunk)
        literal.clear()

    while position < length:
        best_length = 0
        best_distance = 0
        if position + _SEED <= length:
            seed = bytes(data[position : position + _SEED])
            candidates = chains.get(seed, [])
            for candidate in reversed(candidates[-_MAX_CHAIN:]):
                if position - candidate > _WINDOW:
                    continue
                match_length = _SEED
                limit = min(length - position, _MAX_MATCH)
                while (
                    match_length < limit
                    and data[candidate + match_length] == data[position + match_length]
                ):
                    match_length += 1
                if match_length > best_length:
                    best_length = match_length
                    best_distance = position - candidate
        if best_length >= _MIN_MATCH:
            flush_literal()
            out.append(0x01)
            out.extend(struct.pack(">HH", best_distance, best_length))
            end = position + best_length
            while position < end:
                if position + _SEED <= length:
                    chains.setdefault(
                        bytes(data[position : position + _SEED]), []
                    ).append(position)
                position += 1
        else:
            literal.append(data[position])
            if position + _SEED <= length:
                chains.setdefault(
                    bytes(data[position : position + _SEED]), []
                ).append(position)
            position += 1
    flush_literal()
    return bytes(out)


def decompress(data: bytes) -> bytes:
    """Inverse of :func:`compress`."""
    out = bytearray()
    position = 0
    length = len(data)
    while position < length:
        token = data[position]
        position += 1
        if token == 0x00:
            if position >= length:
                raise CompressionError("truncated LZ77 literal header")
            count = data[position]
            position += 1
            if count == 0:
                raise CompressionError("zero-length LZ77 literal block")
            if position + count > length:
                raise CompressionError("truncated LZ77 literal block")
            out.extend(data[position : position + count])
            position += count
        elif token == 0x01:
            if position + 4 > length:
                raise CompressionError("truncated LZ77 match token")
            distance, match_length = struct.unpack(
                ">HH", data[position : position + 4]
            )
            position += 4
            if distance == 0 or distance > len(out):
                raise CompressionError(
                    f"LZ77 match distance {distance} exceeds output {len(out)}"
                )
            start = len(out) - distance
            for i in range(match_length):
                out.append(out[start + i])
        else:
            raise CompressionError(f"unknown LZ77 token {token:#x}")
    return bytes(out)
