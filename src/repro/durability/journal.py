"""The append-only write-ahead journal.

Each record is one frame in the wire format of
:mod:`repro.transport.framing` — a 4-byte big-endian payload length and
the CRC32 of the payload, followed by the payload — holding one JSON
object.  Reusing the wire framing means the journal inherits the same
corruption detection the transport layer already trusts, and
``scripts/journal_fsck.py`` can validate a journal with nothing but this
module.

Crash semantics on read: a journal may end mid-record (the process died
inside a ``write``) or hold a record whose CRC does not match (a torn
sector).  :func:`read_journal` returns every record up to the last valid
one and reports where the valid prefix ends; recovery **truncates** the
tail there and keeps going — a torn tail is data loss of the final
write, never a recovery failure.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import JournalError
from repro.transport.framing import FrameScanner, encode_frame


def encode_record(record: Dict[str, Any]) -> bytes:
    """One journal record: a framed, CRC-guarded JSON object."""
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return encode_frame(payload)


class JournalWriter:
    """Appends framed records to one journal file.

    ``flush_each`` (default on) pushes every record through the stdio
    buffer so a *process* crash loses at most the record being written;
    ``fsync`` additionally forces each record to stable storage, the
    full power-failure guarantee, at a per-append cost.
    """

    def __init__(
        self, path: str, fsync: bool = False, flush_each: bool = True
    ) -> None:
        self.path = path
        self.fsync = fsync
        self.flush_each = flush_each
        self._file = open(path, "ab")
        self.appended_records = 0
        self.appended_bytes = 0

    def append(self, record: Dict[str, Any]) -> int:
        """Write one record; returns the bytes it occupies on disk."""
        encoded = encode_record(record)
        self._file.write(encoded)
        if self.flush_each:
            self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self.appended_records += 1
        self.appended_bytes += len(encoded)
        return len(encoded)

    def flush(self) -> None:
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._file.closed:
            return
        self._file.flush()
        try:
            os.fsync(self._file.fileno())
        except OSError:
            pass  # best effort on exotic filesystems
        self._file.close()

    @property
    def closed(self) -> bool:
        return self._file.closed

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class JournalScan:
    """The result of reading a journal file back.

    ``records`` is the valid prefix; ``valid_bytes`` is where it ends.
    Anything between ``valid_bytes`` and ``total_bytes`` is a torn or
    corrupt tail that recovery must truncate.
    """

    path: str
    records: List[Dict[str, Any]] = field(default_factory=list)
    valid_bytes: int = 0
    total_bytes: int = 0
    #: Why the scan stopped short, empty when the whole file was valid.
    truncation_reason: str = ""

    @property
    def truncated_bytes(self) -> int:
        return self.total_bytes - self.valid_bytes

    @property
    def truncated(self) -> bool:
        return self.truncated_bytes > 0


class JournalReader:
    """Sequential reader over one journal file's raw bytes.

    Frame walking — header parse, length sanity, CRC — is the wire
    format's, delegated to :class:`~repro.transport.framing.FrameScanner`
    (the journal *is* wire frames on disk).  This layer adds only what
    makes a frame a *record*: the payload must parse as one JSON object.
    ``offset`` advances past a frame only once it fully qualifies, so a
    CRC-valid frame holding garbage JSON still ends the valid prefix
    right before itself, exactly like transport-level damage.
    """

    def __init__(self, raw: bytes) -> None:
        self._scanner = FrameScanner(raw, noun="record")
        self.offset = 0
        self.truncation_reason = ""

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return self

    def __next__(self) -> Dict[str, Any]:
        record = self._next_record()
        if record is None:
            raise StopIteration
        return record

    def _next_record(self) -> Optional[Dict[str, Any]]:
        if self.truncation_reason:
            return None
        payload = self._scanner.next_payload()
        if payload is None:
            self.truncation_reason = self._scanner.truncation_reason
            return None
        try:
            record = json.loads(str(payload, "utf-8"))
        except (UnicodeDecodeError, ValueError):
            self.truncation_reason = "unparsable record payload"
            return None
        finally:
            payload.release()
        if not isinstance(record, dict):
            self.truncation_reason = "record is not an object"
            return None
        self.offset = self._scanner.offset
        return record


def read_journal(path: str) -> JournalScan:
    """Read every valid record of the journal at ``path``.

    Never raises on a damaged tail: scanning stops at the first torn or
    CRC-bad record and the scan reports where the valid prefix ends.
    A missing file is an empty journal.
    """
    try:
        raw = open(path, "rb").read()
    except FileNotFoundError:
        return JournalScan(path=path)
    reader = JournalReader(raw)
    records = list(reader)
    return JournalScan(
        path=path,
        records=records,
        valid_bytes=reader.offset,
        total_bytes=len(raw),
        truncation_reason=reader.truncation_reason,
    )


def truncate_tail(path: str, scan: JournalScan) -> int:
    """Cut a damaged tail off the journal; returns bytes removed.

    The scan must have come from :func:`read_journal` on the same path.
    """
    if not scan.truncated:
        return 0
    if scan.path != path:
        raise JournalError(
            f"scan of {scan.path!r} cannot truncate {path!r}"
        )
    with open(path, "r+b") as handle:
        handle.truncate(scan.valid_bytes)
        handle.flush()
        os.fsync(handle.fileno())
    return scan.truncated_bytes


def truncate_tail_atomic(path: str, scan: JournalScan) -> int:
    """Crash-safe variant of :func:`truncate_tail` for offline repair.

    An in-place ``truncate()`` that dies between the metadata update and
    the fsync can leave the file in a state neither the old nor the new
    length describes.  This version uses the snapshot discipline
    instead: copy the valid prefix to a temp file in the same directory,
    fsync it, atomically rename it over the journal, then fsync the
    directory.  At every instant the journal path names either the
    original (damaged-tail) file or the fully healed one — a crash
    mid-repair costs nothing.
    """
    if not scan.truncated:
        return 0
    if scan.path != path:
        raise JournalError(
            f"scan of {scan.path!r} cannot truncate {path!r}"
        )
    with open(path, "rb") as handle:
        prefix = handle.read(scan.valid_bytes)
    tmp_path = path + ".repair-tmp"
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(prefix)
            handle.flush()
            os.fsync(handle.fileno())
    except OSError:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise
    os.replace(tmp_path, path)
    directory = os.path.dirname(path) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return scan.truncated_bytes  # best effort (exotic filesystems)
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
    return scan.truncated_bytes
