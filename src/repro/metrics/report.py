"""Paper-style table and figure rendering.

The benchmark harness prints the same rows and series the paper reports:
Figure 1/2 as S-time-vs-percent tables with the E-time level, Figure 3 as
the speedup-factor table.  Output is plain text so it reads well under
``pytest -s`` and diffs cleanly in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.metrics.recorder import FigureData, ResilienceStats
from repro.metrics.tracing import TraceLog


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Fixed-width text table with a header rule."""
    materialised = [list(map(str, row)) for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))
    lines = [render(list(headers)), render(["-" * width for width in widths])]
    lines.extend(render(row) for row in materialised)
    return "\n".join(lines)


def format_figure(figure: FigureData) -> str:
    """Render a Figure-1/2-style dataset: one row per % modified."""
    sizes = sorted(figure.shadow_series)
    headers = ["% modified"] + [
        f"S-time ({size // 1000}k)" for size in sizes
    ]
    percents = figure.shadow_series[sizes[0]].xs() if sizes else []
    rows: List[List[str]] = []
    for row_index, percent in enumerate(percents):
        row = [f"{percent:g}%"]
        for size in sizes:
            seconds = figure.shadow_series[size].points[row_index][1]
            row.append(f"{seconds:.1f}s")
        rows.append(row)
    level_row = ["E-time"] + [
        f"{figure.conventional_levels[size]:.1f}s" for size in sizes
    ]
    rows.append(level_row)
    return f"{figure.title}\n" + format_table(headers, rows)


def format_speedup_table(
    speedups: Dict[Tuple[int, float], float],
    sizes: Sequence[int],
    percents: Sequence[float],
) -> str:
    """Render Figure 3: rows = file sizes, columns = % modified."""
    headers = ["File Size"] + [f"{percent:g}% modified" for percent in percents]
    rows = []
    for size in sizes:
        row = [f"{size // 1000}k"]
        for percent in percents:
            row.append(f"{speedups[(size, percent)]:.1f}")
        rows.append(row)
    return (
        "Speedup Factor (= conventional time / shadow time)\n"
        + format_table(headers, rows)
    )


def format_series_csv(figure: FigureData) -> str:
    """Machine-readable dump: percent, then one column per file size."""
    sizes = sorted(figure.shadow_series)
    lines = [
        "percent," + ",".join(f"s_{size}" for size in sizes)
        + "," + ",".join(f"e_{size}" for size in sizes)
    ]
    percents = figure.shadow_series[sizes[0]].xs() if sizes else []
    for row_index, percent in enumerate(percents):
        cells = [f"{percent:g}"]
        cells.extend(
            f"{figure.shadow_series[size].points[row_index][1]:.3f}"
            for size in sizes
        )
        cells.extend(
            f"{figure.conventional_levels[size]:.3f}" for size in sizes
        )
        lines.append(",".join(cells))
    return "\n".join(lines)


def format_resilience(stats: ResilienceStats) -> str:
    """Render resilience counters as a two-column table.

    Zero-valued counters are elided so a clean (fault-free) run prints
    an empty-ish block instead of a wall of zeroes.
    """
    rows = [
        (name, str(value))
        for name, value in stats.as_dict().items()
        if value
    ]
    if not rows:
        return "no faults, retries or degradations recorded"
    return format_table(["counter", "value"], rows)


def format_traces(log: TraceLog, limit: int = 20) -> str:
    """Render the newest request traces as a phase-timing table."""
    traces = log.snapshot()[-limit:]
    if not traces:
        return "no traces recorded"
    rows = []
    for trace in traces:
        phases = " ".join(
            f"{name}={seconds * 1000:.2f}ms" for name, seconds in trace.phases
        )
        rows.append(
            (
                trace.request_id,
                trace.client_id or "-",
                trace.kind or "-",
                trace.outcome,
                f"{trace.total_seconds * 1000:.2f}ms",
                phases,
            )
        )
    return format_table(
        ["request", "client", "kind", "outcome", "total", "phases"], rows
    )


def format_replication(info: Mapping[str, Any]) -> str:
    """Render a ReplicationManager.describe() dict as a stats block.

    One line per fact, in reading order: who am I, how fresh is my view
    of the peer, how far behind is the stream.
    """
    lines = [
        "replication",
        f"  role = {info.get('role', '?')}"
        + (" (FENCED)" if info.get("fenced") else ""),
        f"  epoch = {info.get('epoch', 0)}",
    ]
    if info.get("fence_reason"):
        lines.append(f"  fence_reason = {info['fence_reason']}")
    lines.append(
        f"  lag = {info.get('pending_records', 0)} records / "
        f"{info.get('pending_bytes', 0):,} B pending"
    )
    lines.append(
        f"  stream: seq {info.get('stream_seq', 0)}, "
        f"shipped {info.get('shipped_seq', 0)}, "
        f"applied {info.get('applied_seq', 0)}"
    )
    if info.get("standby_attached"):
        lines.append(f"  standby = {info.get('standby') or '(attached)'}")
    detector = info.get("detector")
    if detector:
        age = detector.get("last_beat_age")
        if age is None:
            liveness = "never heard from the primary"
        else:
            liveness = f"last heartbeat {age:.2f}s ago"
            if detector.get("expired"):
                liveness += " (EXPIRED: primary presumed dead)"
        lines.append(f"  primary liveness: {liveness}")
    return "\n".join(lines)


def _series_name(entry: Mapping[str, Any]) -> str:
    """``name{k=v,...}`` display form for one snapshot series."""
    labels = entry.get("labels") or {}
    if not labels:
        return str(entry["name"])
    inner = ",".join(f"{key}={value}" for key, value in sorted(labels.items()))
    return f"{entry['name']}{{{inner}}}"


def format_telemetry(
    snapshot: Mapping[str, Any], include_zero: bool = False
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as text tables.

    Works equally on a live snapshot and on one that round-tripped the
    wire inside a ``StatsReply`` (lists arrive as tuples; both iterate).
    Zero-valued counters and gauges are elided unless ``include_zero``,
    mirroring :func:`format_resilience`'s quiet-when-clean convention.
    """
    blocks: List[str] = []
    counters = [
        entry
        for entry in snapshot.get("counters", ())
        if include_zero or entry["value"]
    ]
    if counters:
        rows = [
            (_series_name(entry), f"{entry['value']:g}") for entry in counters
        ]
        blocks.append("counters\n" + format_table(["series", "value"], rows))
    gauges = [
        entry
        for entry in snapshot.get("gauges", ())
        if include_zero or entry["value"]
    ]
    if gauges:
        rows = [
            (_series_name(entry), f"{entry['value']:g}") for entry in gauges
        ]
        blocks.append("gauges\n" + format_table(["series", "value"], rows))
    histograms = [
        entry
        for entry in snapshot.get("histograms", ())
        if include_zero or entry["count"]
    ]
    if histograms:
        rows = [
            (
                _series_name(entry),
                str(entry["count"]),
                f"{entry['sum']:.4f}s",
                f"{entry['p50'] * 1000:.2f}ms",
                f"{entry['p95'] * 1000:.2f}ms",
                f"{entry['p99'] * 1000:.2f}ms",
            )
            for entry in histograms
        ]
        blocks.append(
            "histograms\n"
            + format_table(
                ["series", "count", "sum", "p50", "p95", "p99"], rows
            )
        )
    if not blocks:
        return "no telemetry recorded"
    return "\n\n".join(blocks)
