#!/usr/bin/env python3
"""Offline integrity check for a shadow server's journal directory.

Scans ``snapshot.bin``, ``journal.wal.old`` (if a crash left one) and
``journal.wal`` with the same reader recovery uses, reports the valid
record prefix of each file, a per-kind histogram, and exactly where any
torn or CRC-bad tail starts.  With ``--repair`` the damaged tail is
truncated at the last valid record — the same cut recovery would make —
so the journal scans clean afterwards.  The repair itself is
crash-safe: the valid prefix is copied to a temp file, fsynced, and
atomically renamed over the journal (the snapshot discipline), so a
kill mid-repair leaves either the original damaged file or the fully
healed one, never a half-truncated in-between.

Exit codes: 0 when every file is clean (or was just repaired), 1 when
damage was found and left in place, 2 on usage errors.

    python scripts/journal_fsck.py /var/shadow/journal
    python scripts/journal_fsck.py --repair /var/shadow/journal
"""

from __future__ import annotations

import argparse
import collections
import os
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.durability.journal import (  # noqa: E402
    read_journal,
    truncate_tail_atomic,
)
from repro.durability.manager import (  # noqa: E402
    JOURNAL_FILE,
    JOURNAL_ROTATED,
    SNAPSHOT_FILE,
    SNAPSHOT_FORMAT,
)
from repro.durability.snapshot import load_snapshot  # noqa: E402


def check_snapshot(path: str) -> bool:
    """Report on the snapshot; True when absent or valid."""
    if not os.path.exists(path):
        print(f"  {SNAPSHOT_FILE}: absent (journal-only recovery)")
        return True
    state = load_snapshot(path)
    if state is None:
        print(f"  {SNAPSHOT_FILE}: DAMAGED — recovery will ignore it")
        return False
    if state.get("format") != SNAPSHOT_FORMAT:
        print(
            f"  {SNAPSHOT_FILE}: format {state.get('format')!r} "
            f"(this tool understands {SNAPSHOT_FORMAT})"
        )
        return False
    print(
        f"  {SNAPSHOT_FILE}: ok — {len(state.get('cache', ()))} cache "
        f"entries, {len(state.get('jobs', ()))} jobs, "
        f"{len(state.get('sessions', ()))} sessions "
        f"(server {state.get('server', '?')!r})"
    )
    return True


def check_journal(path: str, name: str, repair: bool) -> bool:
    """Report on one journal file; True when clean (or repaired)."""
    if not os.path.exists(path):
        if name == JOURNAL_ROTATED:
            return True  # only present in a narrow crash window
        print(f"  {name}: absent (empty journal)")
        return True
    scan = read_journal(path)
    kinds = collections.Counter(
        record.get("kind", "?") for record in scan.records
    )
    histogram = ", ".join(
        f"{kind}×{count}" for kind, count in sorted(kinds.items())
    )
    print(
        f"  {name}: {len(scan.records)} records, "
        f"{scan.valid_bytes}/{scan.total_bytes} bytes valid"
        + (f" [{histogram}]" if histogram else "")
    )
    if not scan.truncated:
        return True
    print(
        f"  {name}: DAMAGED at byte {scan.valid_bytes} "
        f"({scan.truncation_reason}; {scan.truncated_bytes} bytes of tail)"
    )
    if not repair:
        print(f"  {name}: run with --repair to truncate the damaged tail")
        return False
    removed = truncate_tail_atomic(path, scan)
    print(f"  {name}: repaired — {removed} bytes truncated")
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="journal_fsck",
        description="validate (and optionally repair) a shadow journal",
    )
    parser.add_argument("journal_dir", help="the server's --journal directory")
    parser.add_argument(
        "--repair",
        action="store_true",
        help="truncate damaged tails at the last valid record",
    )
    args = parser.parse_args(argv)

    if not os.path.isdir(args.journal_dir):
        print(f"journal_fsck: {args.journal_dir!r} is not a directory")
        return 2
    print(f"journal_fsck: {args.journal_dir}")
    clean = check_snapshot(os.path.join(args.journal_dir, SNAPSHOT_FILE))
    for name in (JOURNAL_ROTATED, JOURNAL_FILE):
        clean &= check_journal(
            os.path.join(args.journal_dir, name), name, args.repair
        )
    print("journal_fsck: " + ("clean" if clean else "DAMAGE FOUND"))
    return 0 if clean else 1


if __name__ == "__main__":
    sys.exit(main())
