"""Algorithm registry and delta selection policy.

The shadow environment lets each user pick a differencing algorithm
(§6.3.1 customisation), and the paper's future work proposes "adopting the
one that offers better performance" among [HM75], [MM85] and [Tic84].
:func:`best_delta` realises that policy mechanically: compute several,
ship the smallest.

:func:`worthwhile` captures the client's send decision: a delta is only
sent when it is actually smaller than the full file — otherwise (heavily
edited or binary-ish content) the full file goes out, which also bounds
shadow transfer time by conventional transfer time.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.diffing import hunt_mcilroy, myers, tichy
from repro.diffing.model import Delta
from repro.errors import DiffError

DiffFunction = Callable[[bytes, bytes], Delta]

ALGORITHMS: Dict[str, DiffFunction] = {
    hunt_mcilroy.ALGORITHM_NAME: hunt_mcilroy.diff,
    myers.ALGORITHM_NAME: myers.diff,
    tichy.ALGORITHM_NAME: tichy.diff,
}

DEFAULT_ALGORITHM = hunt_mcilroy.ALGORITHM_NAME


def algorithm(name: str) -> DiffFunction:
    """Look up a registered diff function by name."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise DiffError(
            f"unknown diff algorithm {name!r}; "
            f"known: {sorted(ALGORITHMS)}"
        ) from None


def compute_delta(
    base: bytes, target: bytes, algorithm_name: str = DEFAULT_ALGORITHM
) -> Delta:
    """Diff with one named algorithm."""
    return algorithm(algorithm_name)(base, target)


def best_delta(
    base: bytes,
    target: bytes,
    algorithm_names: Optional[Iterable[str]] = None,
) -> Delta:
    """Diff with several algorithms and keep the smallest encoding."""
    if algorithm_names is None:
        names = sorted(ALGORITHMS)
    else:
        names = list(algorithm_names)
    if not names:
        raise DiffError("best_delta requires at least one algorithm")
    deltas = [compute_delta(base, target, name) for name in names]
    return min(deltas, key=lambda delta: delta.encoded_size)


def worthwhile(delta: Delta, full_size: int, margin: float = 1.0) -> bool:
    """Should this delta be sent instead of the full file?

    ``margin`` below 1.0 demands the delta beat the full file by that
    factor before it is preferred (guarding against patch CPU cost on a
    loaded server); the default simply compares sizes.
    """
    if margin <= 0:
        raise DiffError(f"margin must be positive, got {margin}")
    return delta.encoded_size < full_size * margin
