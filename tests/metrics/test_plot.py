"""Tests for the ASCII figure renderer."""

import pytest

from repro.errors import ShadowError
from repro.metrics.plot import ascii_plot
from repro.metrics.recorder import FigureData, FigurePoint


def sample_figure():
    figure = FigureData(title="Test Figure")
    for size, level in ((100_000, 110.0), (500_000, 560.0)):
        for percent, seconds in ((1, level / 12), (40, level / 2), (80, level * 0.9)):
            figure.add_point(FigurePoint(size, percent, seconds, level))
    return figure


class TestAsciiPlot:
    def test_contains_title_and_legend(self):
        text = ascii_plot(sample_figure())
        assert "Test Figure" in text
        assert "a=S-time(100k)" in text
        assert "b=S-time(500k)" in text

    def test_contains_both_curves_and_levels(self):
        text = ascii_plot(sample_figure())
        assert "a" in text and "b" in text
        assert "A" in text and "B" in text
        assert "-" in text  # dashed E-time lines

    def test_axes_labelled(self):
        text = ascii_plot(sample_figure())
        assert "(% modified)" in text
        assert "s |" in text  # seconds axis

    def test_rows_match_requested_height(self):
        text = ascii_plot(sample_figure(), width=40, height=10)
        # title + height rows + axis line + tick labels + legend
        assert len(text.splitlines()) == 1 + 10 + 1 + 1 + 1

    def test_bigger_file_curve_sits_higher(self):
        lines = ascii_plot(sample_figure()).splitlines()
        first_b = next(i for i, line in enumerate(lines) if "b" in line)
        first_a = next(i for i, line in enumerate(lines) if "a" in line)
        assert first_b < first_a  # b (500k) appears nearer the top

    def test_empty_figure_rejected(self):
        with pytest.raises(ShadowError):
            ascii_plot(FigureData(title="empty"))

    def test_too_small_area_rejected(self):
        with pytest.raises(ShadowError):
            ascii_plot(sample_figure(), width=5, height=5)
