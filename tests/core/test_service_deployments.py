"""Tests for service wiring: simulated and TCP deployments."""

import pytest

from repro.core.service import SimulatedDeployment, tcp_pair
from repro.simnet.link import CYPRESS_9600, LAN_10M
from repro.workload.edits import modify_percent
from repro.workload.files import make_text_file

PATH = "/data/input.dat"


class TestSimulatedDeployment:
    def test_cycle_advances_virtual_clock(self, deployment):
        client = deployment.client
        client.write_file(PATH, make_text_file(10_000, seed=70))
        job_id = client.submit("wc input.dat", [PATH])
        client.fetch_output(job_id)
        assert deployment.clock.now() > 10.0  # 10 KB at ~960 B/s

    def test_resubmission_much_faster_than_first(self, deployment):
        client = deployment.client
        base = make_text_file(50_000, seed=71)
        start = deployment.clock.now()
        client.write_file(PATH, base)
        client.fetch_output(client.submit("wc input.dat", [PATH]))
        first_cycle = deployment.clock.now() - start
        start = deployment.clock.now()
        client.write_file(PATH, modify_percent(base, 2, seed=71))
        client.fetch_output(client.submit("wc input.dat", [PATH]))
        second_cycle = deployment.clock.now() - start
        assert second_cycle < first_cycle / 3

    def test_wire_bytes_accounted(self, deployment):
        client = deployment.client
        content = make_text_file(5_000, seed=72)
        client.write_file(PATH, content)
        assert deployment.uplink.stats.payload_bytes > 5_000
        assert deployment.total_wire_bytes > 5_000

    def test_deterministic_across_runs(self):
        def run_once():
            deployment = SimulatedDeployment.build(CYPRESS_9600)
            client = deployment.client
            client.write_file(PATH, make_text_file(8_000, seed=73))
            client.fetch_output(client.submit("wc input.dat", [PATH]))
            return deployment.clock.now(), deployment.total_wire_bytes

        assert run_once() == run_once()

    def test_faster_link_faster_cycle(self):
        def cycle_seconds(link):
            deployment = SimulatedDeployment.build(link)
            client = deployment.client
            client.write_file(PATH, make_text_file(20_000, seed=74))
            client.fetch_output(client.submit("wc input.dat", [PATH]))
            return deployment.clock.now()

        assert cycle_seconds(LAN_10M) < cycle_seconds(CYPRESS_9600)

    def test_no_processing_model_means_no_cpu_charge(self):
        slow = SimulatedDeployment.build(LAN_10M)
        free = SimulatedDeployment.build(LAN_10M, processing=None)
        base = make_text_file(50_000, seed=75)
        for deployment in (slow, free):
            client = deployment.client
            client.write_file(PATH, base)
            client.fetch_output(client.submit("wc input.dat", [PATH]))
            # The resubmission is where diff/patch CPU gets charged.
            client.write_file(PATH, modify_percent(base, 2, seed=75))
            client.fetch_output(client.submit("wc input.dat", [PATH]))
        assert free.clock.now() < slow.clock.now()


class TestTcpDeployment:
    def test_full_cycle_over_real_sockets(self):
        with tcp_pair() as deployment:
            client = deployment.client
            client.write_file(PATH, b"over real tcp\n")
            job_id = client.submit("cat input.dat", [PATH])
            bundle = client.fetch_output(job_id)
            assert bundle.stdout == b"over real tcp\n"

    def test_delta_resubmission_over_sockets(self):
        with tcp_pair() as deployment:
            client = deployment.client
            base = make_text_file(20_000, seed=76)
            client.write_file(PATH, base)
            client.fetch_output(client.submit("wc input.dat", [PATH]))
            edited = modify_percent(base, 3, seed=76)
            client.write_file(PATH, edited)
            job_id = client.submit("wc input.dat", [PATH])
            bundle = client.fetch_output(job_id)
            assert bundle.exit_code == 0
            key = str(client.workspace.resolve(PATH))
            assert deployment.server.cache.get(key).content == edited
