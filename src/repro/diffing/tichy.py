"""Tichy's string-to-string correction with block moves [Tic84].

The paper's future-work section names this algorithm as a candidate for
computing smaller deltas.  Where line diffs must re-send a whole line for a
one-character edit, a block-move delta reconstructs the target from
arbitrary *byte* ranges of the base plus literal insertions — the same
family of technique later used by rsync, vdelta and xdelta.

Tichy proved that the greedy strategy — repeatedly emitting the longest
base substring matching a prefix of the remaining target — produces a
minimal covering set of block moves.  We realise the greedy search with a
fixed-width block index over the base (every ``block_size``-aligned window)
and bidirectional extension, which finds every match of length >=
``2 * block_size - 1`` plus most shorter ones, in linear time in practice.
Matches shorter than ``min_copy_length`` are not worth a copy
instruction's 9-byte encoding and are emitted as literals instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.diffing.model import (
    AddOp,
    BlockDelta,
    BlockOp,
    CopyOp,
    checksum,
)

ALGORITHM_NAME = "tichy"

#: Width of indexed base windows; also the shortest findable match seed.
DEFAULT_BLOCK_SIZE = 8

#: A CopyOp costs 9 encoded bytes, so shorter matches go out as literals.
DEFAULT_MIN_COPY_LENGTH = 12

#: Cap on index bucket size; repetitive bases (all-zero files) would
#: otherwise make every lookup scan thousands of identical positions.
_MAX_BUCKET = 16


def _build_index(base: bytes, block_size: int) -> Dict[bytes, List[int]]:
    """Map each ``block_size`` window at stride ``block_size`` to offsets."""
    index: Dict[bytes, List[int]] = {}
    for offset in range(0, len(base) - block_size + 1, block_size):
        window = base[offset : offset + block_size]
        bucket = index.setdefault(window, [])
        if len(bucket) < _MAX_BUCKET:
            bucket.append(offset)
    return index


def _extend_match(
    base: bytes,
    target: bytes,
    base_seed: int,
    target_seed: int,
    seed_length: int,
    target_floor: int,
) -> Tuple[int, int, int]:
    """Grow a seed match in both directions.

    The seed is ``base[base_seed : base_seed + seed_length] ==
    target[target_seed : target_seed + seed_length]``.  Backward extension
    never reaches below ``target_floor`` (bytes before it were already
    emitted by earlier operations).  Returns ``(base_start, target_start,
    length)`` of the maximal clamped run.
    """
    base_start, target_start = base_seed, target_seed
    while (
        base_start > 0
        and target_start > target_floor
        and base[base_start - 1] == target[target_start - 1]
    ):
        base_start -= 1
        target_start -= 1
    base_end = base_seed + seed_length
    target_end = target_seed + seed_length
    while (
        base_end < len(base)
        and target_end < len(target)
        and base[base_end] == target[target_end]
    ):
        base_end += 1
        target_end += 1
    return base_start, target_start, base_end - base_start


def diff(
    base: bytes,
    target: bytes,
    block_size: int = DEFAULT_BLOCK_SIZE,
    min_copy_length: int = DEFAULT_MIN_COPY_LENGTH,
) -> BlockDelta:
    """Compute a :class:`BlockDelta` turning ``base`` into ``target``."""
    ops: List[BlockOp] = []
    literal = bytearray()
    index = _build_index(base, block_size) if len(base) >= block_size else {}

    position = 0
    while position < len(target):
        window = target[position : position + block_size]
        best: Optional[Tuple[int, int, int]] = None
        if len(window) == block_size and index:
            floor = position - len(literal)
            for base_offset in index.get(window, ()):
                candidate = _extend_match(
                    base, target, base_offset, position, block_size, floor
                )
                if best is None or candidate[2] > best[2]:
                    best = candidate
        if best is not None and best[2] >= min_copy_length:
            base_start, target_start, length = best
            # Backward extension re-covered some pending literal bytes;
            # drop them so the copy supplies those bytes instead.
            reclaimed = position - target_start
            if reclaimed:
                del literal[len(literal) - reclaimed :]
            if literal:
                ops.append(AddOp(bytes(literal)))
                literal.clear()
            ops.append(CopyOp(base_start, length))
            position = target_start + length
        else:
            literal.append(target[position])
            position += 1
    if literal:
        ops.append(AddOp(bytes(literal)))
    return BlockDelta(
        ops,
        base_checksum=checksum(base),
        target_checksum=checksum(target),
        algorithm=ALGORITHM_NAME,
    )
