"""The batch job subsystem: specs, queueing, scheduling, execution (§6)."""

from repro.jobs.executor import (
    ExecutionResult,
    Executor,
    ExecutorCostModel,
    LocalExecutor,
    SimulatedExecutor,
)
from repro.jobs.output import DeliveryPlan, OutputBundle, store_bundle
from repro.jobs.pipeline import ThreadWorkers, VirtualTimeWorkers, build_pipeline
from repro.jobs.queue import JobQueue, QueuedJob
from repro.jobs.scheduler import (
    ConstantLoad,
    LoadModel,
    PullPolicy,
    Scheduler,
    SeededRandomLoad,
    SinusoidalLoad,
)
from repro.jobs.spec import JobCommand, JobCommandFile, JobRequest
from repro.jobs.status import JobRecord, JobState, StatusTable

__all__ = [
    "ConstantLoad",
    "DeliveryPlan",
    "ExecutionResult",
    "Executor",
    "ExecutorCostModel",
    "JobCommand",
    "JobCommandFile",
    "JobQueue",
    "JobRecord",
    "JobRequest",
    "JobState",
    "LoadModel",
    "LocalExecutor",
    "OutputBundle",
    "PullPolicy",
    "QueuedJob",
    "Scheduler",
    "SeededRandomLoad",
    "SimulatedExecutor",
    "SinusoidalLoad",
    "StatusTable",
    "ThreadWorkers",
    "VirtualTimeWorkers",
    "build_pipeline",
    "store_bundle",
]
