"""Tests for coherence tracking (notifications vs cached versions)."""

import pytest

from repro.cache.coherence import CoherenceTracker
from repro.cache.store import CacheStore

KEY = "dom/host:/file"


@pytest.fixture
def tracker():
    return CoherenceTracker(CacheStore())


class TestNotifications:
    def test_notification_recorded(self, tracker):
        tracker.note_notification(KEY, 3)
        assert tracker.latest_known(KEY) == 3

    def test_stale_notification_ignored(self, tracker):
        tracker.note_notification(KEY, 5)
        tracker.note_notification(KEY, 2)  # reordered / duplicate message
        assert tracker.latest_known(KEY) == 5

    def test_unknown_file_has_no_latest(self, tracker):
        assert tracker.latest_known("never/seen:/x") is None


class TestPullNeeds:
    def test_uncached_announced_file_needs_initial_pull(self, tracker):
        tracker.note_notification(KEY, 1)
        need = tracker.needs_pull(KEY)
        assert need is not None
        assert need.is_initial
        assert need.latest_version == 1

    def test_stale_cache_needs_incremental_pull(self, tracker):
        tracker.store.put(KEY, b"old", version=1)
        tracker.note_notification(KEY, 4)
        need = tracker.needs_pull(KEY)
        assert need is not None
        assert not need.is_initial
        assert need.cached_version == 1

    def test_current_cache_needs_nothing(self, tracker):
        tracker.store.put(KEY, b"new", version=2)
        tracker.note_notification(KEY, 2)
        assert tracker.needs_pull(KEY) is None
        assert tracker.is_current(KEY)

    def test_ahead_cache_needs_nothing(self, tracker):
        tracker.store.put(KEY, b"ahead", version=5)
        tracker.note_notification(KEY, 3)
        assert tracker.needs_pull(KEY) is None

    def test_never_announced_needs_nothing(self, tracker):
        assert tracker.needs_pull(KEY) is None

    def test_stale_keys_lists_all_lagging(self, tracker):
        tracker.note_notification("d/h:/a", 2)
        tracker.note_notification("d/h:/b", 1)
        tracker.store.put("d/h:/b", b"x", version=1)
        needs = tracker.stale_keys()
        assert [need.key for need in needs] == ["d/h:/a"]

    def test_eviction_makes_file_stale_again(self, tracker):
        tracker.store.put(KEY, b"x", version=2)
        tracker.note_notification(KEY, 2)
        tracker.store.invalidate(KEY)
        need = tracker.needs_pull(KEY)
        assert need is not None and need.is_initial


class TestForget:
    def test_forget_clears_tracking_and_cache(self, tracker):
        tracker.store.put(KEY, b"x", version=1)
        tracker.note_notification(KEY, 1)
        tracker.forget(KEY)
        assert tracker.latest_known(KEY) is None
        assert KEY not in tracker.store
