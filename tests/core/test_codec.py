"""Tests for the binary value codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codec import decode, encode
from repro.errors import ProtocolError


class TestScalars:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, 1, 127, 128, 2**40, -1, -(2**40), 3.5, -0.25],
    )
    def test_roundtrip(self, value):
        assert decode(encode(value)) == value

    def test_bytes_roundtrip(self):
        assert decode(encode(b"\x00\xff raw")) == b"\x00\xff raw"

    def test_text_roundtrip(self):
        assert decode(encode("héllo wörld")) == "héllo wörld"

    def test_bool_distinct_from_int(self):
        assert decode(encode(True)) is True
        assert decode(encode(1)) == 1
        assert decode(encode(1)) is not True

    def test_float_precision(self):
        assert decode(encode(0.1)) == 0.1


class TestContainers:
    def test_list_roundtrip(self):
        value = [1, "two", b"three", None, [4, 5]]
        assert decode(encode(value)) == value

    def test_dict_roundtrip(self):
        value = {"a": 1, "b": [True, {"nested": b"x"}]}
        assert decode(encode(value)) == value

    def test_dict_encoding_is_deterministic(self):
        assert encode({"b": 1, "a": 2}) == encode({"a": 2, "b": 1})

    def test_non_string_key_rejected(self):
        with pytest.raises(ProtocolError):
            encode({1: "x"})

    def test_unencodable_type_rejected(self):
        with pytest.raises(ProtocolError):
            encode(object())


class TestMalformedInput:
    def test_empty_input(self):
        with pytest.raises(ProtocolError):
            decode(b"")

    def test_unknown_tag(self):
        with pytest.raises(ProtocolError):
            decode(b"z")

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ProtocolError):
            decode(encode(1) + b"junk")

    def test_truncated_string(self):
        with pytest.raises(ProtocolError):
            decode(b"u\x05ab")

    def test_truncated_varint(self):
        with pytest.raises(ProtocolError):
            decode(b"i\x80")

    def test_truncated_float(self):
        with pytest.raises(ProtocolError):
            decode(b"r\x00\x00")

    def test_invalid_utf8_in_text(self):
        with pytest.raises(ProtocolError):
            decode(b"u\x02\xff\xfe")

    def test_overlong_varint(self):
        with pytest.raises(ProtocolError):
            decode(b"i" + b"\xff" * 10 + b"\x01")


json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**50), max_value=2**50)
    | st.binary(max_size=60)
    | st.text(max_size=60),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=10), children, max_size=5),
    max_leaves=25,
)


@settings(max_examples=200, deadline=None)
@given(value=json_like)
def test_codec_roundtrip_property(value):
    assert decode(encode(value)) == value
