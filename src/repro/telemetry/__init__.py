"""Unified telemetry: metrics registry, exporters, structured events.

``repro.telemetry`` is the one layer every subsystem reports into:

* :mod:`repro.telemetry.registry` — labeled counters, gauges and
  fixed-bucket histograms in a thread-safe
  :class:`~repro.telemetry.registry.MetricsRegistry`;
* :mod:`repro.telemetry.export` — Prometheus-text and JSON snapshot
  exporters over a registry;
* :mod:`repro.telemetry.events` — JSON-lines structured event log
  (slow requests, job lifecycle, evictions, breaker transitions) behind
  a pluggable sink.

Each :class:`~repro.core.server.ShadowServer` and
:class:`~repro.core.client.ShadowClient` owns its own registry so tests
and co-hosted services never collide; :data:`REGISTRY` is the shared
process-wide default for code without a natural owner.

Nothing in this package reads or advances the simulated clock: all
instrumentation is wall-clock and event-count only, so the benchmark
figures are byte-identical with telemetry enabled.
"""

from repro.telemetry.events import EventLog, JsonLinesSink, MemorySink
from repro.telemetry.export import (
    parse_prometheus_line,
    render_json,
    render_prometheus,
)
from repro.telemetry.flightrecorder import FlightRecorder
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.slo import Objective, SloEngine, status_exit_code
from repro.telemetry.spans import Span, SpanRecorder, child_span, current_span_id

#: The process-wide default registry (ad hoc scripts, module-level code).
REGISTRY = MetricsRegistry()

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EventLog",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "MemorySink",
    "MetricsRegistry",
    "Objective",
    "REGISTRY",
    "SloEngine",
    "Span",
    "SpanRecorder",
    "child_span",
    "current_span_id",
    "parse_prometheus_line",
    "render_json",
    "render_prometheus",
    "status_exit_code",
]
