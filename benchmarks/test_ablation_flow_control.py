"""Ablation A3: demand-driven flow control policies (§5.2, §6.4).

The server chooses *when* to pull updates: immediately on notification
(moving transfer into editing time, so a later submit is fast — the §5.1
concurrency argument), lazily at submit time, or load-dependently.  This
bench splits one resubmission cycle into its edit phase (write + notify
+ any immediate pull) and its submit phase (submit + remaining pulls +
execution + output) and shows how the policy moves cost between them.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

from conftest import publish

from repro.core.service import SimulatedDeployment
from repro.jobs.scheduler import ConstantLoad, PullPolicy, Scheduler
from repro.metrics.report import format_table
from repro.simnet.link import CYPRESS_9600
from repro.workload.edits import modify_percent
from repro.workload.files import make_text_file

PATH = "/exp/data.dat"
FILE_SIZE = 60_000
PERCENT = 5


def phased_cycle(policy: PullPolicy, load: float) -> Tuple[float, float]:
    """Return (edit-phase seconds, submit-phase seconds)."""
    scheduler = Scheduler(pull_policy=policy, load_model=ConstantLoad(load))
    deployment = SimulatedDeployment.build(CYPRESS_9600, scheduler=scheduler)
    client = deployment.client
    base = make_text_file(FILE_SIZE, seed=17)
    client.write_file(PATH, base)
    client.fetch_output(client.submit("wc data.dat", [PATH]))
    edited = modify_percent(base, PERCENT, seed=17)
    edit_start = deployment.clock.now()
    client.write_file(PATH, edited)
    submit_start = deployment.clock.now()
    client.fetch_output(client.submit("wc data.dat", [PATH]))
    submit_end = deployment.clock.now()
    return submit_start - edit_start, submit_end - submit_start


@lru_cache(maxsize=1)
def run_policies() -> Dict[str, Tuple[float, float]]:
    return {
        "immediate": phased_cycle(PullPolicy.IMMEDIATE, load=0.2),
        "on-submit": phased_cycle(PullPolicy.ON_SUBMIT, load=0.2),
        "load-aware (idle)": phased_cycle(PullPolicy.LOAD_AWARE, load=0.2),
        "load-aware (busy)": phased_cycle(PullPolicy.LOAD_AWARE, load=0.9),
    }


def test_flow_control_policies(benchmark):
    results = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    rows = [
        [name, f"{edit:.1f}s", f"{submit:.1f}s", f"{edit + submit:.1f}s"]
        for name, (edit, submit) in results.items()
    ]
    publish(
        "ablation_a3_flow_control",
        format_table(["policy", "edit phase", "submit phase", "total"], rows),
    )

    immediate = results["immediate"]
    deferred = results["on-submit"]
    # Immediate pulls move the transfer into editing time: the user's
    # submit-to-results wait shrinks dramatically.
    assert immediate[1] < deferred[1] * 0.6
    # ...at the cost of a heavier edit phase.
    assert immediate[0] > deferred[0]
    # Totals are within ~20 %: the same bytes move either way.
    total_immediate = sum(immediate)
    total_deferred = sum(deferred)
    assert abs(total_immediate - total_deferred) < 0.2 * total_deferred

    # The adaptive policy matches IMMEDIATE when idle, ON_SUBMIT when busy.
    idle = results["load-aware (idle)"]
    busy = results["load-aware (busy)"]
    assert abs(idle[1] - immediate[1]) < 1.0
    assert busy[1] > idle[1]
