"""Tests for the background-update concurrency driver (§5.1)."""

import pytest

from repro.errors import ShadowError
from repro.simnet.link import CYPRESS_9600, LAN_10M
from repro.workload.concurrent import run_concurrent_session


class TestConcurrentSessions:
    def test_overlap_shrinks_submit_wait(self):
        overlapped = run_concurrent_session(CYPRESS_9600, overlap=True)
        sequential = run_concurrent_session(CYPRESS_9600, overlap=False)
        assert overlapped.submit_wait_seconds < sequential.submit_wait_seconds / 2

    def test_overlap_never_slower_in_total(self):
        overlapped = run_concurrent_session(CYPRESS_9600, overlap=True)
        sequential = run_concurrent_session(CYPRESS_9600, overlap=False)
        assert overlapped.total_seconds <= sequential.total_seconds * 1.01

    def test_transfers_hide_fully_under_long_think_time(self):
        report = run_concurrent_session(
            CYPRESS_9600, think_seconds=300.0, overlap=True
        )
        # Editing dominates; the submit wait is just control + execution.
        assert report.edit_phase_seconds == pytest.approx(900.0, abs=1.0)
        assert report.submit_wait_seconds < 10.0

    def test_zero_think_time_degenerates_to_sequential(self):
        overlapped = run_concurrent_session(
            CYPRESS_9600, think_seconds=0.0, overlap=True
        )
        sequential = run_concurrent_session(
            CYPRESS_9600, think_seconds=0.0, overlap=False
        )
        # No think time to hide under: totals converge.
        assert overlapped.total_seconds == pytest.approx(
            sequential.total_seconds, rel=0.25
        )

    def test_fast_link_makes_policies_equal(self):
        overlapped = run_concurrent_session(LAN_10M, overlap=True)
        sequential = run_concurrent_session(LAN_10M, overlap=False)
        assert overlapped.total_seconds == pytest.approx(
            sequential.total_seconds, rel=0.05
        )

    def test_file_count_recorded(self):
        report = run_concurrent_session(
            CYPRESS_9600, file_sizes=(10_000, 10_000), overlap=True
        )
        assert report.files == 2

    def test_negative_think_time_rejected(self):
        with pytest.raises(ShadowError):
            run_concurrent_session(CYPRESS_9600, think_seconds=-1.0)
