"""A tiny end-to-end run of the wall-clock load harness on both
backends — keeps `benchmarks/load_harness.py` importable and honest
without putting a real load test in tier-1."""

import pathlib
import sys

import pytest

BENCH_DIR = str(pathlib.Path(__file__).resolve().parents[2] / "benchmarks")
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

import load_harness  # noqa: E402


@pytest.mark.parametrize("backend", ["threaded", "eventloop"])
def test_small_echo_load_completes_cleanly(backend):
    result = load_harness.run_load(
        backend, workload="echo", connections=8, duration=0.5
    )
    assert result.errors == 0
    assert result.requests > 0
    assert result.rps > 0
    assert result.p99_ms >= result.p50_ms


def test_cli_check_mode_passes():
    assert (
        load_harness.main(
            [
                "--transport",
                "eventloop",
                "--connections",
                "4",
                "--duration",
                "0.3",
                "--check",
                "--json",
            ]
        )
        == 0
    )


def test_percentile_edge_cases():
    assert load_harness._percentile([1.0], 0.99) == 1.0
    samples = sorted(float(n) for n in range(100))
    assert load_harness._percentile(samples, 0.50) == 49.0
    assert load_harness._percentile(samples, 0.99) == 98.0
