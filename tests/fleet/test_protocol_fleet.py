"""Wire-level fleet protocol: shard maps in Hello, redirects, transfers.

The byte-identity tests pin the acceptance criterion that fleet mode is
default-off: a non-fleet server's replies must not change by a byte.
"""

import pytest

from repro.core.protocol import (
    Hello,
    Notify,
    Ok,
    ShardTransfer,
    UpdateAck,
    WrongShard,
    decode_message,
)
from repro.core.server import ShadowServer
from repro.diffing.model import checksum
from repro.errors import ProtocolError
from repro.fleet import FleetMember, ShardMap
from repro.transport.base import LoopbackChannel

MAP = {"alpha": "127.0.0.1:7301", "beta": "127.0.0.1:7302"}


def _fleet_server(name="alpha", **kwargs):
    server = ShadowServer(name=name, **kwargs)
    FleetMember(server, ShardMap(MAP))
    return server


def _foreign_key(shard_map, shard):
    for index in range(1000):
        key = f"domain:file-{index:04d}"
        if shard_map.owner(key) != shard:
            return key
    raise AssertionError("no foreign key found")


def _owned_key(shard_map, shard):
    for index in range(1000):
        key = f"domain:file-{index:04d}"
        if shard_map.owner(key) == shard:
            return key
    raise AssertionError("no owned key found")


class TestOkByteIdentity:
    def test_empty_shard_map_is_omitted_from_the_wire(self):
        wire = Ok(detail="welcome").to_wire()
        assert b"shard_map" not in wire
        # The exact frame a pre-fleet server produced.
        assert wire == Ok(detail="welcome", shard_map={}).to_wire()

    def test_shard_map_round_trips(self):
        payload = ShardMap(MAP, epoch=4).to_payload()
        ok = Ok(detail="welcome", shard_map=payload)
        restored = decode_message(ok.to_wire())
        assert isinstance(restored, Ok)
        assert ShardMap.from_payload(restored.shard_map) == ShardMap(
            MAP, epoch=4
        )

    def test_plain_server_hello_carries_no_map(self):
        server = ShadowServer()
        reply = decode_message(
            LoopbackChannel(server.handle).request(
                Hello(client_id="u@ws").to_wire()
            )
        )
        assert isinstance(reply, Ok)
        assert reply.shard_map == {}

    def test_fleet_member_hello_carries_the_map(self):
        server = _fleet_server()
        reply = decode_message(
            LoopbackChannel(server.handle).request(
                Hello(client_id="u@ws").to_wire()
            )
        )
        assert isinstance(reply, Ok)
        shard_map = ShardMap.from_payload(reply.shard_map)
        assert shard_map.names == ("alpha", "beta")
        assert shard_map.epoch == 1


class TestWrongShard:
    def test_message_round_trips(self):
        message = WrongShard(
            key="d:f",
            shard="alpha",
            owner="beta",
            shard_map=ShardMap(MAP).to_payload(),
        )
        restored = decode_message(message.to_wire())
        assert restored.owner == "beta"
        assert ShardMap.from_payload(restored.shard_map).names == (
            "alpha",
            "beta",
        )

    def test_foreign_notify_gets_redirected(self):
        server = _fleet_server("alpha")
        channel = LoopbackChannel(server.handle)
        channel.request(Hello(client_id="u@ws").to_wire())
        key = _foreign_key(server.fleet.shard_map, "alpha")
        reply = decode_message(
            channel.request(
                Notify(
                    client_id="u@ws", key=key, version=1, size=3
                ).to_wire()
            )
        )
        assert isinstance(reply, WrongShard)
        assert reply.shard == "alpha"
        assert reply.owner == server.fleet.shard_map.owner(key)
        assert reply.shard_map["epoch"] == 1
        assert server.fleet.redirects == 1

    def test_owned_notify_passes_through(self):
        server = _fleet_server("alpha")
        channel = LoopbackChannel(server.handle)
        channel.request(Hello(client_id="u@ws").to_wire())
        key = _owned_key(server.fleet.shard_map, "alpha")
        reply = decode_message(
            channel.request(
                Notify(
                    client_id="u@ws", key=key, version=1, size=3
                ).to_wire()
            )
        )
        assert not isinstance(reply, WrongShard)
        assert server.fleet.redirects == 0


class TestShardTransfer:
    def test_message_round_trips(self):
        message = ShardTransfer(
            sender="alpha",
            key="d:f",
            version=3,
            checksum=checksum(b"abc"),
            content=b"abc",
        )
        restored = decode_message(message.to_wire())
        assert restored == message

    def test_transfer_is_cached_and_acked(self):
        server = _fleet_server("alpha")
        key = _owned_key(server.fleet.shard_map, "alpha")
        content = b"migrated content\n"
        reply = decode_message(
            LoopbackChannel(server.handle).request(
                ShardTransfer(
                    sender="beta",
                    key=key,
                    version=2,
                    checksum=checksum(content),
                    content=content,
                ).to_wire()
            )
        )
        assert isinstance(reply, UpdateAck)
        assert reply.stored_version == 2
        assert server.cache.peek_entry(key).content == content
        assert server.fleet.transfers_in == 1

    def test_corrupt_transfer_is_refused(self):
        server = _fleet_server("alpha")
        key = _owned_key(server.fleet.shard_map, "alpha")
        reply = decode_message(
            LoopbackChannel(server.handle).request(
                ShardTransfer(
                    sender="beta",
                    key=key,
                    version=1,
                    checksum=checksum(b"original"),
                    content=b"tampered",
                ).to_wire()
            )
        )
        assert reply.TYPE == "error"
        assert server.cache.peek_entry(key) is None

    def test_transfer_validation(self):
        server = _fleet_server("alpha")
        with pytest.raises(ProtocolError):
            server._on_shard_transfer(ShardTransfer(sender="beta"))
        with pytest.raises(ProtocolError):
            server._on_shard_transfer(
                ShardTransfer(sender="beta", key="d:f", version=0)
            )
