"""Client-side version control for shadow files (§6.3.2)."""

from repro.versioning.store import (
    DeltaUpdate,
    FullContent,
    Update,
    VersionStore,
)
from repro.versioning.version import FileVersion, VersionChain

__all__ = [
    "DeltaUpdate",
    "FileVersion",
    "FullContent",
    "Update",
    "VersionChain",
    "VersionStore",
]
