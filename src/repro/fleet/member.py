"""The server side of fleet mode: one shard of the hash ring.

A :class:`FleetMember` attaches to a :class:`~repro.core.server.ShadowServer`
the same way a ``ReplicationManager`` does — the constructor sets
``server.fleet`` and the core server calls it duck-typed, so the core
layer never imports this module.  Attached, the server:

* advertises the shard map in every Hello ``Ok`` (the client or router
  learns the whole fleet from its first round-trip);
* refuses coherence traffic (``Notify`` / ``Update``) for keys outside
  its ring range with a ``wrong-shard`` redirect carrying the fresh
  map — **except** updates a queued job of that client is waiting for,
  which are accepted and staged so job inputs land at the job's shard
  regardless of key ownership;
* answers ``shard-transfer`` messages (handled by the core server) so
  resharding can move cache entries in.

Fleet mode is default-off: a server with no member attached emits an
empty ``shard_map`` (omitted from the wire) and refuses nothing, so
every single-server figure stays byte-identical.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from repro.core.protocol import (
    BatchNotify,
    BatchUpdate,
    MapPublish,
    Message,
    Notify,
    Ok,
    Update,
    UpdateChunk,
    WrongShard,
)
from repro.errors import FleetError
from repro.fleet.ring import ShardMap


class FleetMember:
    """Ownership enforcement + map advertisement for one shard."""

    def __init__(self, server: Any, shard_map: ShardMap) -> None:
        if server.name not in shard_map.names:
            raise FleetError(
                f"server {server.name!r} is not a shard of the map "
                f"{list(shard_map.names)!r} — fleet members are named "
                f"after their shard"
            )
        self.server = server
        self._lock = threading.Lock()
        self._map = shard_map
        self.redirects = 0
        self.transfers_in = 0
        self.transfers_out = 0
        self.maps_adopted = 0
        server.router.register(MapPublish, self._on_map_publish)
        server.fleet = self

    # ------------------------------------------------------------------
    # the map
    # ------------------------------------------------------------------
    @property
    def shard(self) -> str:
        return self.server.name

    @property
    def shard_map(self) -> ShardMap:
        with self._lock:
            return self._map

    def map_payload(self) -> Dict[str, Any]:
        return self.shard_map.to_payload()

    def update_map(self, new_map: ShardMap) -> bool:
        """Adopt a newer map (resharding); stale epochs are ignored."""
        if self.server.name not in new_map.names:
            raise FleetError(
                f"server {self.server.name!r} is not in the new map "
                f"{list(new_map.names)!r}; migrate its entries away and "
                f"retire it instead"
            )
        with self._lock:
            if new_map.epoch <= self._map.epoch:
                return False
            self._map = new_map
            return True

    def owns(self, key: str) -> bool:
        return self.shard_map.owner(key) == self.server.name

    def _on_map_publish(self, message: MapPublish) -> Message:
        """Adopt a supervisor-published map; stale epochs are a no-op.

        The reply is idempotent either way so the supervisor can
        re-publish to the whole fleet without tracking who already has
        which epoch.
        """
        new_map = ShardMap.from_payload(message.shard_map)
        if self.update_map(new_map):
            self.maps_adopted += 1
            self.server.telemetry.counter("fleet_maps_adopted_total").inc()
            detail = f"map adopted at epoch {new_map.epoch}"
        else:
            detail = f"map epoch {new_map.epoch} ignored (stale)"
        return Ok(detail=detail, epoch=self.server.epoch)

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(self, message: Message) -> Optional[WrongShard]:
        """Gate one decoded request against the ring, before dispatch.

        Returns the ``wrong-shard`` redirect to send, or None to let
        the request through.  Mirrors
        :meth:`~repro.replication.manager.ReplicationManager.admit`:
        the verdict is about this shard's range *right now*, so it runs
        before the reply cache and is never replayed from it.
        """
        foreign = self._foreign_key(message)
        if foreign is None:
            return None
        shard_map = self.shard_map
        self.redirects += 1
        self.server.telemetry.counter(
            "fleet_wrong_shard_total", {"type": message.TYPE}
        ).inc()
        return WrongShard(
            key=foreign,
            shard=self.server.name,
            owner=shard_map.owner(foreign),
            shard_map=shard_map.to_payload(),
        )

    def _foreign_key(self, message: Message) -> Optional[str]:
        """The first key this shard must redirect, or None."""
        if isinstance(message, Notify):
            if not self.owns(message.key):
                return message.key
            return None
        if isinstance(message, (Update, UpdateChunk)):
            if self.owns(message.key):
                return None
            if self._job_waiting(message.client_id, message.key):
                return None
            return message.key
        if isinstance(message, BatchNotify):
            for entry in message.items:
                if entry and not self.owns(str(entry[0])):
                    return str(entry[0])
            return None
        if isinstance(message, BatchUpdate):
            for item in message.items:
                key = str(item.get("key", ""))
                if key and not self.owns(key):
                    if not self._job_waiting(message.client_id, key):
                        return key
            return None
        # Everything else — Hello/Bye/Submit/Status/Fetch/Cancel/Resync,
        # stats, health, replication, transfers — is either already
        # routed by the caller or shard-local by construction.
        return None

    def _job_waiting(self, client_id: str, key: str) -> bool:
        """True if a queued job of ``client_id`` still needs ``key``.

        The router sends a job's input files to the *job's* shard (the
        ``needs`` list of its SubmitReply says so), which may not own
        the key on the ring — staging must accept them anyway or no
        multi-file job spanning shards could ever run.
        """
        for job in self.server.queue.snapshot():
            if job.owner == client_id and key in job.file_versions:
                return True
        return False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        shard_map = self.shard_map
        return {
            "component": "fleet-member",
            "shard": self.server.name,
            "map": shard_map.describe(),
            "owned_keys": sum(
                1 for key in self.server.cache.keys()
                if shard_map.owner(key) == self.server.name
            ),
            "redirects": self.redirects,
            "transfers_in": self.transfers_in,
            "transfers_out": self.transfers_out,
            "maps_adopted": self.maps_adopted,
        }
