"""Tests for the best-effort cache store and domain directories."""

import pytest

from repro.cache.eviction import LruPolicy
from repro.cache.store import CacheStore
from repro.errors import CacheError, CacheMissError

KEY_A = "dom1/hostA:/usr/a.dat"
KEY_B = "dom1/hostA:/usr/b.dat"
KEY_C = "dom2/hostB:/home/c.dat"


@pytest.fixture
def store():
    return CacheStore(capacity_bytes=100)


class TestPutGet:
    def test_roundtrip(self, store):
        store.put(KEY_A, b"content", version=1)
        entry = store.get(KEY_A)
        assert entry.content == b"content"
        assert entry.version == 1

    def test_miss_raises(self, store):
        with pytest.raises(CacheMissError):
            store.get("dom/never:/seen")

    def test_update_replaces_content_and_version(self, store):
        store.put(KEY_A, b"v1", version=1)
        store.put(KEY_A, b"v2 longer", version=2)
        entry = store.get(KEY_A)
        assert entry.content == b"v2 longer"
        assert entry.version == 2

    def test_update_keeps_shadow_id(self, store):
        first = store.put(KEY_A, b"v1", version=1)
        second = store.put(KEY_A, b"v2", version=2)
        assert first.shadow_id == second.shadow_id

    def test_peek_version_without_stats(self, store):
        store.put(KEY_A, b"x", version=3)
        assert store.peek_version(KEY_A) == 3
        assert store.peek_version("dom/ghost:/x") is None
        assert store.stats.lookups == 0

    def test_contains(self, store):
        store.put(KEY_A, b"x", version=1)
        assert KEY_A in store
        assert KEY_B not in store

    def test_invalidate(self, store):
        store.put(KEY_A, b"x", version=1)
        assert store.invalidate(KEY_A)
        assert not store.invalidate(KEY_A)
        assert KEY_A not in store

    def test_flush_empties(self, store):
        store.put(KEY_A, b"x", version=1)
        store.put(KEY_B, b"y", version=1)
        assert store.flush() == 2
        assert len(store) == 0

    def test_bad_version_rejected(self, store):
        with pytest.raises(CacheError):
            store.put(KEY_A, b"x", version=0)


class TestCapacity:
    def test_used_bytes(self, store):
        store.put(KEY_A, b"12345", version=1)
        store.put(KEY_B, b"678", version=1)
        assert store.used_bytes == 8

    def test_eviction_frees_space(self, store):
        store.put(KEY_A, b"a" * 60, version=1, timestamp=1.0)
        store.put(KEY_B, b"b" * 60, version=1, timestamp=2.0)
        assert KEY_A not in store  # LRU victim
        assert KEY_B in store

    def test_oversized_item_rejected_not_cached(self, store):
        assert store.put(KEY_A, b"x" * 101, version=1) is None
        assert KEY_A not in store
        assert store.stats.rejected == 1

    def test_oversized_update_drops_stale_entry(self, store):
        store.put(KEY_A, b"small", version=1)
        assert store.put(KEY_A, b"x" * 200, version=2) is None
        # The stale v1 must not linger: callers would patch against it.
        assert KEY_A not in store

    def test_unbounded_store_never_evicts(self):
        store = CacheStore(capacity_bytes=None)
        for index in range(50):
            store.put(f"d/h:/f{index}", b"x" * 1000, version=1)
        assert len(store) == 50
        assert store.stats.evictions == 0

    def test_in_place_update_does_not_self_evict(self, store):
        store.put(KEY_A, b"a" * 80, version=1)
        store.put(KEY_A, b"a" * 90, version=2)
        assert store.get(KEY_A).version == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(CacheError):
            CacheStore(capacity_bytes=-1)


class TestStats:
    def test_hit_and_miss_counts(self, store):
        store.put(KEY_A, b"x", version=1)
        store.get(KEY_A)
        with pytest.raises(CacheMissError):
            store.get(KEY_B)
        assert store.stats.hits == 1
        assert store.stats.misses == 1
        assert store.stats.hit_rate == 0.5

    def test_hit_rate_zero_when_no_lookups(self, store):
        assert store.stats.hit_rate == 0.0

    def test_eviction_stats(self, store):
        store.put(KEY_A, b"a" * 60, version=1)
        store.put(KEY_B, b"b" * 60, version=1)
        assert store.stats.evictions == 1
        assert store.stats.evicted_bytes == 60

    def test_insertions_and_updates_counted(self, store):
        store.put(KEY_A, b"x", version=1)
        store.put(KEY_A, b"y", version=2)
        assert store.stats.insertions == 1
        assert store.stats.updates == 1


class TestDomainDirectories:
    def test_directory_per_domain(self, store):
        store.put(KEY_A, b"x", version=1)
        store.put(KEY_C, b"y", version=1)
        assert store.domains == ["dom1", "dom2"]

    def test_file_id_maps_to_shadow_id(self, store):
        entry = store.put(KEY_A, b"x", version=1)
        directory = store.domain_directory("dom1")
        assert directory.lookup("hostA:/usr/a.dat") == entry.shadow_id

    def test_eviction_unbinds_directory_entry(self, store):
        store.put(KEY_A, b"a" * 60, version=1, timestamp=1.0)
        store.put(KEY_B, b"b" * 60, version=1, timestamp=2.0)
        assert store.domain_directory("dom1").lookup("hostA:/usr/a.dat") is None

    def test_shadow_ids_unique(self, store):
        first = store.put(KEY_A, b"x", version=1)
        second = store.put(KEY_B, b"y", version=1)
        assert first.shadow_id != second.shadow_id

    def test_directory_entries_snapshot(self, store):
        store.put(KEY_A, b"x", version=1)
        entries = store.domain_directory("dom1").entries()
        assert list(entries) == ["hostA:/usr/a.dat"]


class TestReconcile:
    """The post-reconnect reconciliation verdicts (§5.1 made explicit)."""

    def test_missing(self, store):
        assert store.reconcile(KEY_A, 3, "whatever") == CacheStore.MISSING

    def test_current_requires_matching_checksum(self, store):
        entry = store.put(KEY_A, b"payload", version=2)
        assert store.reconcile(KEY_A, 2, entry.checksum) == CacheStore.CURRENT
        assert store.reconcile(KEY_A, 2, "bogus") == CacheStore.DIVERGENT

    def test_current_without_checksum_trusts_version(self, store):
        store.put(KEY_A, b"payload", version=2)
        assert store.reconcile(KEY_A, 2) == CacheStore.CURRENT

    def test_stale_when_cache_is_older(self, store):
        store.put(KEY_A, b"old", version=1)
        assert store.reconcile(KEY_A, 4, "anything") == CacheStore.STALE

    def test_divergent_when_cache_is_ahead(self, store):
        # The client lost state; its lineage restarted below ours.
        store.put(KEY_A, b"new", version=5)
        assert store.reconcile(KEY_A, 2, "anything") == CacheStore.DIVERGENT

    def test_reconcile_does_not_touch_stats(self, store):
        store.put(KEY_A, b"x", version=1)
        before = (store.stats.hits, store.stats.misses)
        store.reconcile(KEY_A, 1)
        store.reconcile(KEY_B, 1)
        assert (store.stats.hits, store.stats.misses) == before
