"""Parent/child span tracing across processes.

PR 3's flat ``tid`` joins a client send, a server request trace, and an
async job execution into one *trace*; this module upgrades that into a
*span tree*.  Each process owns a :class:`SpanRecorder` that keeps a
bounded ring of finished :class:`Span` records (and optionally streams
them to a JSON-lines sink).  A span carries the trace id, its own span
id, and its parent's span id; the parent id crosses process boundaries
as the optional ``psp`` envelope field, so a client RPC span becomes the
parent of the server's request span, which in turn parents the decode /
session-wait / dispatch / journal-append / replication-ship spans, and —
for submits — the asynchronous job-execution span on whichever server
(primary or promoted standby) eventually runs the job.

Span recording is wall-clock only and never touches the wire unless the
client explicitly mints a ``psp``; with spans disabled (or under the
simulated clock, where trace ids are off by default) every byte the
paper figures depend on is unchanged.

The offline half — :func:`assemble` and :func:`render_tree` — rebuilds a
cross-process timeline from any mix of span files (client + primary +
standby), which is what ``shadow trace show TID`` prints.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, Iterator, List, Optional

from repro.metrics.tracing import RequestTrace

Sink = Any  # Callable[[Dict[str, Any]], None]; JsonLinesSink qualifies.


@dataclass
class Span:
    """One timed operation inside a trace.

    ``start`` is wall-clock (``time.time()``) so spans recorded by
    different processes land on one timeline; ``duration`` is measured
    with ``perf_counter`` for resolution.
    """

    span_id: str
    trace_id: str
    parent_id: str
    name: str
    site: str  #: which process recorded it ("client", "server:alpha", ...)
    start: float
    duration: float
    status: str = "ok"
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "site": self.site,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class SpanRecorder:
    """Bounded, thread-safe ring of finished spans with an optional sink.

    One recorder per process side (the client owns one, each server owns
    one).  Span ids are globally unique across recorders: they embed a
    per-recorder nonce derived from the pid and a random suffix, so
    spans from a client, a primary, and a standby never collide when the
    offline assembler merges their files.
    """

    def __init__(
        self,
        site: str = "",
        capacity: int = 512,
        sink: Optional[Sink] = None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.site = site or f"proc-{os.getpid()}"
        self.capacity = capacity
        self._spans: Deque[Span] = deque(maxlen=capacity or None)
        self._lock = threading.Lock()
        self._counter = 0
        self._nonce = f"{os.getpid():x}{os.urandom(3).hex()}"
        self.sink = sink
        self.recorded = 0

    def new_span_id(self) -> str:
        with self._lock:
            self._counter += 1
            return f"s-{self._nonce}-{self._counter:x}"

    def record(self, span: Span) -> Span:
        """Append a finished span (drops oldest past capacity)."""
        sink = self.sink
        with self._lock:
            if self.capacity:
                self._spans.append(span)
            self.recorded += 1
        if sink is not None:
            try:
                sink(span.as_dict())
            except Exception:
                self.sink = None  # a broken sink must not break requests
        return span

    def snapshot(self, trace_id: Optional[str] = None) -> List[Span]:
        with self._lock:
            spans = list(self._spans)
        if trace_id is None:
            return spans
        return [span for span in spans if span.trace_id == trace_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "site": self.site,
                "retained": len(self._spans),
                "recorded": self.recorded,
                "capacity": self.capacity,
                "sink": self.sink is not None,
            }

    def close(self) -> None:
        sink, self.sink = self.sink, None
        closer = getattr(sink, "close", None)
        if callable(closer):
            try:
                closer()
            except Exception:
                pass

    # -- converting finished RequestTraces into span trees ---------------

    def record_trace(
        self,
        trace: RequestTrace,
        *,
        span_id: str,
        name: str,
        parent_id: str = "",
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Emit a finished :class:`RequestTrace` as a root span plus one
        child span per timed phase record.

        The trace must already be finished (``total_seconds`` set).
        Child wall starts are reconstructed from the trace's wall start
        plus each phase's ``perf_counter`` offset.
        """
        root_attrs: Dict[str, Any] = {}
        if trace.request_id:
            root_attrs["request_id"] = trace.request_id
        if trace.client_id:
            root_attrs["client_id"] = trace.client_id
        if trace.kind:
            root_attrs["kind"] = trace.kind
        if attrs:
            root_attrs.update(attrs)
        root = Span(
            span_id=span_id,
            trace_id=trace.trace_id,
            parent_id=parent_id,
            name=name,
            site=self.site,
            start=trace.started_wall,
            duration=trace.total_seconds,
            status=trace.outcome,
            attrs=root_attrs,
        )
        for phase, offset, duration in trace.records:
            self.record(
                Span(
                    span_id=self.new_span_id(),
                    trace_id=trace.trace_id,
                    parent_id=span_id,
                    name=phase,
                    site=self.site,
                    start=trace.started_wall + offset,
                    duration=duration,
                )
            )
        return self.record(root)

    @contextmanager
    def trace_scope(
        self,
        trace: RequestTrace,
        name: str,
        *,
        parent_id: str = "",
    ) -> Iterator[str]:
        """Run a block as the root span of ``trace`` on this thread.

        Mints the root span id up front (so it can be propagated as a
        ``psp`` or captured for async work via :func:`current_span_id`),
        makes it the thread's active span scope — :func:`child_span`
        calls in any layer below attach to it — and on exit converts the
        by-then-finished trace into the root span plus its phase
        children.  The caller is responsible for finishing the trace
        before the scope exits (``recording_trace`` inside the block
        does exactly that).
        """
        root_id = self.new_span_id()
        previous = getattr(_scope, "value", None)
        _scope.value = _Scope(self, trace, root_id)
        try:
            yield root_id
        finally:
            _scope.value = previous
            if not trace.total_seconds:
                trace.finish()
            self.record_trace(
                trace,
                span_id=root_id,
                name=name,
                parent_id=parent_id or trace.parent_span,
            )


@dataclass
class _Scope:
    recorder: SpanRecorder
    trace: RequestTrace
    root_id: str


_scope = threading.local()


def current_scope() -> Optional[_Scope]:
    return getattr(_scope, "value", None)


def current_span_id() -> str:
    """The root span id of the request this thread is serving ("" when
    no span scope is active) — captured as the parent for async work."""
    scope = current_scope()
    return scope.root_id if scope is not None else ""


@contextmanager
def child_span(name: str, **attrs: Any) -> Iterator[str]:
    """Record a child span of the thread's active span scope.

    No-op (yields ``""``) when no scope is active, so deep layers —
    journal append, replication ship — can call this unconditionally
    without holding recorder references or paying anything when spans
    are off.
    """
    scope = current_scope()
    if scope is None:
        yield ""
        return
    span_id = scope.recorder.new_span_id()
    start = time.time()
    begin = time.perf_counter()
    status = "ok"
    try:
        yield span_id
    except Exception:
        status = "error"
        raise
    finally:
        scope.recorder.record(
            Span(
                span_id=span_id,
                trace_id=scope.trace.trace_id,
                parent_id=scope.root_id,
                name=name,
                site=scope.recorder.site,
                start=start,
                duration=time.perf_counter() - begin,
                status=status,
                attrs=dict(attrs) if attrs else {},
            )
        )


# -- offline assembly --------------------------------------------------------


def assemble(
    records: Iterable[Dict[str, Any]],
    trace_id: str,
) -> Dict[str, Any]:
    """Rebuild the span tree for one trace from raw span dicts.

    ``records`` is any mix of span records (e.g. parsed from the client,
    primary, and standby JSONL files); duplicates by span id are
    dropped.  Returns roots (parentless spans), a ``children`` adjacency
    map, and ``orphans`` — spans whose parent id is set but missing from
    the record set, which is how a broken propagation chain shows up.
    """
    by_id: Dict[str, Dict[str, Any]] = {}
    for record in records:
        if record.get("trace_id") != trace_id:
            continue
        span_id = record.get("span_id", "")
        if span_id and span_id not in by_id:
            by_id[span_id] = record
    children: Dict[str, List[Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    orphans: List[Dict[str, Any]] = []
    for record in by_id.values():
        parent = record.get("parent_id", "")
        if not parent:
            roots.append(record)
        elif parent in by_id:
            children.setdefault(parent, []).append(record)
        else:
            orphans.append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: r.get("start", 0.0))
    roots.sort(key=lambda r: r.get("start", 0.0))
    orphans.sort(key=lambda r: r.get("start", 0.0))
    return {
        "trace_id": trace_id,
        "spans": len(by_id),
        "roots": roots,
        "children": children,
        "orphans": orphans,
    }


def render_tree(tree: Dict[str, Any]) -> str:
    """Human-readable timeline for an assembled span tree.

    One line per span, indented by depth, with millisecond offsets
    relative to the earliest span in the trace.
    """
    roots = tree["roots"]
    children = tree["children"]
    orphans = tree["orphans"]
    all_spans = list(roots) + list(orphans)
    stack = list(all_spans)
    while stack:
        span = stack.pop()
        stack.extend(children.get(span.get("span_id", ""), ()))
        if span not in all_spans:
            all_spans.append(span)
    if not all_spans:
        return f"trace {tree['trace_id']}: no spans"
    epoch = min(span.get("start", 0.0) for span in all_spans)
    lines = [f"trace {tree['trace_id']} · {tree['spans']} spans"]

    def emit(span: Dict[str, Any], depth: int) -> None:
        offset_ms = (span.get("start", 0.0) - epoch) * 1000.0
        duration_ms = span.get("duration", 0.0) * 1000.0
        status = span.get("status", "ok")
        flag = "" if status == "ok" else f"  !{status}"
        lines.append(
            f"{'  ' * depth}{span.get('name', '?'):<24} "
            f"+{offset_ms:9.3f}ms {duration_ms:9.3f}ms "
            f"[{span.get('site', '?')}]{flag}"
        )
        for kid in children.get(span.get("span_id", ""), ()):
            emit(kid, depth + 1)

    for root in roots:
        emit(root, 0)
    if orphans:
        lines.append(f"orphans ({len(orphans)} — missing parents):")
        for span in orphans:
            emit(span, 1)
    return "\n".join(lines)


def load_span_files(paths: Iterable[str]) -> List[Dict[str, Any]]:
    """Parse JSONL span files, skipping unparseable lines."""
    import json

    records: List[Dict[str, Any]] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict) and "span_id" in record:
                    records.append(record)
    return records
