"""The conventional batch RJE baseline (§2.1, Figure 1's E-time lines).

"In a naive implementation, the client must transfer all the files needed
for remote processing over the network every time he submits a job."

:class:`ConventionalBatchClient` speaks the same wire protocol to the
same shadow server over the same links — but never notifies, never sends
deltas, and re-ships every file in full on every submission.  That makes
it the paper's "conventional batch system" comparator measured under
identical conditions, which is exactly what the horizontal E-time lines
of Figures 1 and 2 show.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.protocol import (
    FetchOutput,
    Hello,
    Message,
    Ok,
    OutputReply,
    Submit,
    SubmitReply,
    Update,
    UpdateAck,
    decode_message,
    expect,
)
from repro.core.workspace import Workspace
from repro.diffing.model import checksum as content_checksum
from repro.errors import ProtocolError, TransportError
from repro.jobs.output import OutputBundle
from repro.transport.base import RequestChannel


class ConventionalBatchClient:
    """Full-file-every-time remote job entry."""

    def __init__(self, client_id: str, workspace: Workspace) -> None:
        if not client_id:
            raise ProtocolError("client id must be non-empty")
        self.client_id = client_id
        self.workspace = workspace
        self._channels: Dict[str, RequestChannel] = {}
        self._versions: Dict[str, int] = {}

    def connect(self, host: str, channel: RequestChannel) -> None:
        reply = self._request(channel, Hello(client_id=self.client_id))
        expect(reply, Ok)
        self._channels[host] = channel

    def _channel(self, host: Optional[str]) -> RequestChannel:
        if host is None:
            if len(self._channels) != 1:
                raise TransportError("specify a host; several are connected")
            return next(iter(self._channels.values()))
        try:
            return self._channels[host]
        except KeyError:
            raise TransportError(f"not connected to {host!r}") from None

    @staticmethod
    def _request(channel: RequestChannel, message: Message) -> Message:
        return decode_message(channel.request(message.to_wire()))

    def submit_job(
        self,
        script: str,
        data_files: List[str],
        host: Optional[str] = None,
    ) -> str:
        """Ship every file in full, then submit.  Returns the job id."""
        channel = self._channel(host)
        files: List[Tuple[str, int, str]] = []
        for path in data_files:
            key = str(self.workspace.resolve(path))
            content = self.workspace.read(path)
            version = self._versions.get(key, 0) + 1
            self._versions[key] = version
            digest = content_checksum(content)
            reply = self._request(
                channel,
                Update(
                    client_id=self.client_id,
                    key=key,
                    version=version,
                    base_version=None,
                    is_delta=False,
                    payload=content,
                ),
            )
            expect(reply, UpdateAck)
            files.append((key, version, digest))
        reply = self._request(
            channel,
            Submit(client_id=self.client_id, script=script, files=tuple(files)),
        )
        submit_reply = expect(reply, SubmitReply)
        assert isinstance(submit_reply, SubmitReply)
        if submit_reply.needs:
            raise ProtocolError(
                "server reported missing files right after full uploads"
            )
        return submit_reply.job_id

    def fetch_output(
        self, job_id: str, host: Optional[str] = None
    ) -> Optional[OutputBundle]:
        """Retrieve results (always full content — no reverse shadow)."""
        channel = self._channel(host)
        reply = self._request(
            channel, FetchOutput(client_id=self.client_id, job_id=job_id)
        )
        output = expect(reply, OutputReply)
        assert isinstance(output, OutputReply)
        if not output.ready:
            return None
        streams: Dict[str, bytes] = {}
        for name, stream in output.streams.items():
            if stream.get("kind") != "full":
                raise ProtocolError(
                    "conventional client cannot apply delta streams"
                )
            streams[name] = stream.get("data", b"")
        output_files = {
            name[len("file:") :]: data
            for name, data in streams.items()
            if name.startswith("file:")
        }
        return OutputBundle(
            job_id=job_id,
            exit_code=output.exit_code,
            stdout=streams.get("stdout", b""),
            stderr=streams.get("stderr", b""),
            output_files=output_files,
            cpu_seconds=output.cpu_seconds,
        )
