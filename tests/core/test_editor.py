"""Tests for the shadow editor wrapper."""

import pytest

from repro.core.editor import ShadowEditor, scripted_editor
from repro.core.service import loopback_pair
from repro.errors import ShadowError

PATH = "/home/user/program.f"


@pytest.fixture
def setup():
    client, server = loopback_pair()
    return client, server


class TestEditing:
    def test_edit_creates_version_and_notifies(self, setup):
        client, server = setup
        editor = ShadowEditor(client, scripted_editor(b"PROGRAM X\nEND\n"))
        version = editor.edit(PATH)
        assert version == 1
        key = str(client.workspace.resolve(PATH))
        assert server.cache.peek_version(key) == 1

    def test_sequential_sessions_bump_versions(self, setup):
        client, _ = setup
        editor = ShadowEditor(
            client, scripted_editor(b"draft 1\n", b"draft 2\n")
        )
        assert editor.edit(PATH) == 1
        assert editor.edit(PATH) == 2

    def test_no_change_session_is_free(self, setup):
        client, server = setup
        editor = ShadowEditor(client, scripted_editor(b"content\n"))
        editor.edit(PATH)
        channel = client._channels[server.name]
        requests_before = channel.stats.requests
        # Second session: scripted editor leaves content unchanged.
        assert editor.edit(PATH) is None
        assert channel.stats.requests == requests_before
        assert editor.versions_created == 1
        assert editor.sessions == 2

    def test_missing_file_starts_empty(self, setup):
        client, _ = setup
        seen = {}

        def editor_fn(path, old_content):
            seen["old"] = old_content
            return b"created from scratch\n"

        ShadowEditor(client, editor_fn).edit("/brand/new.txt")
        assert seen["old"] == b""
        assert client.workspace.read("/brand/new.txt") == (
            b"created from scratch\n"
        )

    def test_existing_content_passed_to_editor(self, setup):
        client, _ = setup
        client.workspace.write(PATH, b"pre-existing\n")
        seen = {}

        def editor_fn(path, old_content):
            seen["old"] = old_content
            return old_content + b"appended\n"

        ShadowEditor(client, editor_fn).edit(PATH)
        assert seen["old"] == b"pre-existing\n"

    def test_editor_returning_non_bytes_rejected(self, setup):
        client, _ = setup
        editor = ShadowEditor(client, lambda path, old: "a string")
        with pytest.raises(ShadowError):
            editor.edit(PATH)

    def test_user_view_unchanged_workspace_has_new_content(self, setup):
        # §6.2: "the user's view of the editor remains unchanged" — the
        # wrapper writes exactly what the editor produced.
        client, _ = setup
        editor = ShadowEditor(client, scripted_editor(b"exact bytes\x00\n"))
        editor.edit(PATH)
        assert client.workspace.read(PATH) == b"exact bytes\x00\n"

    def test_editor_name_defaults_to_environment(self, setup):
        client, _ = setup
        editor = ShadowEditor(client, scripted_editor())
        assert editor.editor_name == client.environment.editor
