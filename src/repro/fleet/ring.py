"""Consistent-hash ring and the epoch-numbered shard map.

The fleet partitions the shadow namespace by the resolved global name —
the ``domain:file-id`` cache key every message already carries — so one
shard owns each file for its whole lifetime regardless of which client
touches it.  Ownership is decided by a consistent-hash ring:

* Hashing is ``zlib.crc32`` of the UTF-8 key, the same
  PYTHONHASHSEED-invariant choice as :class:`repro.cache.store.CacheStore`
  lock sharding, so every process in the fleet (and every test run)
  computes identical ownership.
* Each shard contributes ``replicas`` virtual points to the ring, so
  adding or removing one shard moves only ~1/N of the keyspace instead
  of reshuffling everything (the property the migration path in
  :mod:`repro.fleet.migrate` depends on).

The :class:`ShardMap` wraps the ring with the two things routing needs
beyond ownership: a monotonically increasing **epoch** (a client or
router holding epoch 3 adopts any map with epoch > 3 and ignores older
ones) and the **dial spec** for each shard, so learning the map from a
Hello ``Ok`` is enough to dial every member.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import FleetError

#: Virtual points each shard contributes to the ring.  Enough that a
#: three-shard fleet splits a synthetic workload within a few percent of
#: evenly; small enough that building a map is trivially cheap.
DEFAULT_REPLICAS = 64


def _hash(text: str) -> int:
    """Stable 32-bit ring position (PYTHONHASHSEED-invariant)."""
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


class HashRing:
    """A consistent-hash ring over shard names."""

    def __init__(
        self, shards: Iterable[str], replicas: int = DEFAULT_REPLICAS
    ) -> None:
        names = list(shards)
        if not names:
            raise FleetError("a hash ring needs at least one shard")
        if len(set(names)) != len(names):
            raise FleetError(f"duplicate shard names in {names!r}")
        if replicas < 1:
            raise FleetError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._shards = tuple(sorted(names))
        points: List[Tuple[int, str]] = []
        for name in self._shards:
            for index in range(replicas):
                points.append((_hash(f"{name}#{index}"), name))
        # Ties (two shards hashing one point) resolve by name order so
        # every process agrees; sort on the pair does exactly that.
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [name for _, name in points]

    @property
    def shards(self) -> Tuple[str, ...]:
        return self._shards

    def owner(self, key: str) -> str:
        """The shard owning ``key``: first ring point at or after its hash."""
        position = _hash(key)
        index = bisect.bisect_left(self._points, position)
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._owners[index]

    def spread(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of ``keys`` each shard owns (diagnostics / tests)."""
        counts = {name: 0 for name in self._shards}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts


class ShardMap:
    """An epoch-numbered ring description: shard name -> dial spec.

    The wire form (:meth:`to_payload`) is a plain str/int dict so it can
    ride inside Hello ``Ok`` and ``wrong-shard`` replies through the
    deterministic codec unchanged.
    """

    def __init__(
        self,
        shards: Mapping[str, str],
        epoch: int = 1,
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if not shards:
            raise FleetError("a shard map needs at least one shard")
        if epoch < 1:
            raise FleetError(f"shard-map epoch must be >= 1, got {epoch}")
        self.epoch = epoch
        self.shards: Dict[str, str] = {
            name: str(dial) for name, dial in sorted(shards.items())
        }
        self.ring = HashRing(self.shards, replicas=replicas)

    @property
    def names(self) -> Tuple[str, ...]:
        return self.ring.shards

    def owner(self, key: str) -> str:
        return self.ring.owner(key)

    def owner_of_job(self, job_id: str) -> Optional[str]:
        """The shard that minted ``job_id``.

        Fleet members are named after their shard and job ids embed the
        server name (``<name>-job-00001``), so the longest matching
        prefix identifies the minting shard without any routing table.
        """
        best: Optional[str] = None
        for name in self.names:
            if job_id.startswith(f"{name}-job-") and (
                best is None or len(name) > len(best)
            ):
                best = name
        return best

    def dial(self, name: str) -> str:
        try:
            return self.shards[name]
        except KeyError:
            raise FleetError(f"shard {name!r} is not in the map") from None

    def with_shards(
        self, shards: Mapping[str, str], epoch: Optional[int] = None
    ) -> "ShardMap":
        """A successor map (epoch bumped unless given explicitly)."""
        return ShardMap(
            shards,
            epoch=self.epoch + 1 if epoch is None else epoch,
            replicas=self.ring.replicas,
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "replicas": self.ring.replicas,
            "shards": dict(self.shards),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ShardMap":
        try:
            shards = payload["shards"]
            epoch = payload["epoch"]
        except (KeyError, TypeError) as exc:
            raise FleetError(f"malformed shard-map payload: {exc}") from exc
        if not isinstance(shards, Mapping):
            raise FleetError("shard-map 'shards' must be a mapping")
        return cls(
            {str(k): str(v) for k, v in shards.items()},
            epoch=int(epoch),
            replicas=int(payload.get("replicas", DEFAULT_REPLICAS)),
        )

    def describe(self) -> Dict[str, Any]:
        return {
            "component": "shard-map",
            "epoch": self.epoch,
            "shards": dict(self.shards),
            "replicas": self.ring.replicas,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardMap):
            return NotImplemented
        return (
            self.epoch == other.epoch
            and self.shards == other.shards
            and self.ring.replicas == other.ring.replicas
        )

    def __repr__(self) -> str:
        return (
            f"ShardMap(epoch={self.epoch}, "
            f"shards={list(self.shards)})"
        )
