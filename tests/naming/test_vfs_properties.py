"""Property-based tests for the virtual file system."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NamingError
from repro.naming.vfs import VirtualFileSystem, join_path, split_path

# Path components: short lowercase names, occasionally dots.
component = st.text(
    alphabet="abcdefghij", min_size=1, max_size=6
)
path_components = st.lists(component, min_size=1, max_size=5)


def to_path(components):
    return "/" + "/".join(components)


@settings(max_examples=150, deadline=None)
@given(components=path_components)
def test_split_join_roundtrip(components):
    path = to_path(components)
    assert join_path(split_path(path)) == path


@settings(max_examples=100, deadline=None)
@given(components=path_components, content=st.binary(max_size=100))
def test_write_then_read(components, content):
    vfs = VirtualFileSystem()
    path = to_path(components)
    vfs.write_file(path, content)
    assert vfs.read_file(path) == content


@settings(max_examples=100, deadline=None)
@given(components=path_components)
def test_realpath_is_idempotent(components):
    vfs = VirtualFileSystem()
    path = to_path(components)
    vfs.write_file(path, b"x")
    resolved = vfs.realpath(path)
    assert vfs.realpath(resolved) == resolved


@settings(max_examples=100, deadline=None)
@given(
    components=path_components,
    dots=st.integers(min_value=1, max_value=3),
)
def test_dotdot_never_escapes_root(components, dots):
    vfs = VirtualFileSystem()
    vfs.write_file("/anchor", b"a")
    path = "/" + "/".join([".."] * dots) + "/anchor"
    assert vfs.realpath(path) == "/anchor"


@settings(max_examples=80, deadline=None)
@given(
    target=path_components,
    link=path_components,
    content=st.binary(max_size=50),
)
def test_symlink_resolves_to_target(target, link, content):
    vfs = VirtualFileSystem()
    target_path = to_path(["t"] + target)
    link_path = to_path(["l"] + link)
    if target_path == link_path:
        return
    vfs.write_file(target_path, content)
    try:
        vfs.symlink(target_path, link_path)
    except NamingError:
        return  # link path collides with a directory of the target
    assert vfs.realpath(link_path) == vfs.realpath(target_path)
    assert vfs.read_file(link_path) == content


@settings(max_examples=80, deadline=None)
@given(
    original=path_components,
    alias=path_components,
    first=st.binary(max_size=40),
    second=st.binary(max_size=40),
)
def test_hard_links_always_agree(original, alias, first, second):
    vfs = VirtualFileSystem()
    original_path = to_path(["o"] + original)
    alias_path = to_path(["a"] + alias)
    vfs.write_file(original_path, first)
    try:
        vfs.hard_link(original_path, alias_path)
    except NamingError:
        return
    vfs.write_file(original_path, second)
    assert vfs.read_file(alias_path) == second
    assert vfs.inode_of(alias_path) == vfs.inode_of(original_path)
