"""Differential file comparison: the paper's core bandwidth saver.

Three from-scratch algorithms, one delta model:

* :mod:`~repro.diffing.hunt_mcilroy` — the UNIX ``diff`` algorithm the
  prototype used [HM75];
* :mod:`~repro.diffing.myers` — the O(ND) shortest-edit-script algorithm
  from the future-work list [MM85];
* :mod:`~repro.diffing.tichy` — byte-level block moves [Tic84].

Plus the historical ``ed``-script wire form and a selection policy.
"""

from repro.diffing import hunt_mcilroy, myers, tichy
from repro.diffing.edscript import (
    apply_ed_script,
    parse_ed_script,
    to_ed_script,
)
from repro.diffing.model import (
    AddOp,
    AppendOp,
    BlockDelta,
    ChangeOp,
    CopyOp,
    Delta,
    DeleteOp,
    LineDelta,
    checksum,
    decode_delta,
    join_lines,
    split_lines,
)
from repro.diffing.selector import (
    ALGORITHMS,
    DEFAULT_ALGORITHM,
    best_delta,
    compute_delta,
    worthwhile,
)

__all__ = [
    "ALGORITHMS",
    "DEFAULT_ALGORITHM",
    "AddOp",
    "AppendOp",
    "BlockDelta",
    "ChangeOp",
    "CopyOp",
    "Delta",
    "DeleteOp",
    "LineDelta",
    "apply_ed_script",
    "best_delta",
    "checksum",
    "compute_delta",
    "decode_delta",
    "hunt_mcilroy",
    "join_lines",
    "myers",
    "parse_ed_script",
    "split_lines",
    "tichy",
    "to_ed_script",
    "worthwhile",
]
