"""The remote-login access pattern (§2.1) as a timing model.

"a user uses a remote login service to start an interactive session,
transfers all the files needed ... using a file transfer facility, and
then invokes suitable commands on the remote system ... He then either
waits for the completion of the job, or periodically accesses the remote
host to determine the status of his job."

This is the paper's *motivating* workflow, reproduced as a discrete time
model over the same :class:`~repro.transport.sim.Wire` abstraction so the
quickstart example can show all three access styles side by side.  Beyond
raw transfer time it charges what made the approach "cumbersome": echo
round-trips for interactive typing, per-file FTP session setup, and
status polling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import SimulationError
from repro.transport.sim import Wire

#: Bytes of a typed interactive command plus its echo/response.
_COMMAND_BYTES = 80
#: Bytes of one status-poll exchange (command + response screenful).
_POLL_BYTES = 400
#: FTP control traffic per file (USER/PASS/PORT/RETR/STOR chatter).
_FTP_SETUP_BYTES = 300


@dataclass
class RemoteLoginReport:
    """Phase-by-phase timing of one remote-login work cycle."""

    login_seconds: float
    upload_seconds: float
    execute_seconds: float
    polling_seconds: float
    download_seconds: float
    polls: int

    @property
    def total_seconds(self) -> float:
        return (
            self.login_seconds
            + self.upload_seconds
            + self.execute_seconds
            + self.polling_seconds
            + self.download_seconds
        )


class RemoteLoginSession:
    """Model one §2.1 cycle: login, FTP up, run, poll, FTP down."""

    def __init__(
        self,
        wire: Wire,
        poll_interval_seconds: float = 60.0,
        keystrokes_per_command: int = 3,
    ) -> None:
        if poll_interval_seconds <= 0:
            raise SimulationError("poll interval must be positive")
        self.wire = wire
        self.poll_interval_seconds = poll_interval_seconds
        self.keystrokes_per_command = keystrokes_per_command

    def run_cycle(
        self,
        input_sizes: Dict[str, int],
        output_size: int,
        execution_seconds: float,
    ) -> RemoteLoginReport:
        """Advance the wire's clock through one full cycle."""
        clock = self.wire.clock
        start = clock.now()
        # Login: banner, user, password, shell prompt — 4 exchanges.
        for _ in range(4):
            self.wire.deliver(_COMMAND_BYTES)
        login_done = clock.now()
        # Upload every file over FTP: session chatter plus the bytes.
        for size in input_sizes.values():
            self.wire.deliver(_FTP_SETUP_BYTES)
            self.wire.deliver(size)
        upload_done = clock.now()
        # Invoke the job: a few typed commands, each echoed.
        for _ in range(self.keystrokes_per_command):
            self.wire.deliver(_COMMAND_BYTES)
        clock.advance(execution_seconds)
        execute_done = clock.now()
        # Poll until the completion moment is observed: the user only
        # learns of completion at the *next* poll boundary.
        polls = 1
        clock.advance(self.poll_interval_seconds / 2)  # average offset
        self.wire.deliver(_POLL_BYTES)
        polling_done = clock.now()
        # Download the results over FTP.
        self.wire.deliver(_FTP_SETUP_BYTES)
        self.wire.deliver(output_size)
        download_done = clock.now()
        return RemoteLoginReport(
            login_seconds=login_done - start,
            upload_seconds=upload_done - login_done,
            execute_seconds=execute_done - upload_done,
            polling_seconds=polling_done - execute_done,
            download_seconds=download_done - polling_done,
            polls=polls,
        )
