#!/usr/bin/env python3
"""Chaos recovery: the same workload over a clean and a faulty link.

The service is *best-effort* (§5.1): a dropped request, a reply lost
after the server already acted, or a garbled byte must degrade to extra
transfers — never to corruption or a duplicated job.  This example runs
an identical 20-cycle edit/submit/fetch workload twice:

1. over a clean loopback — the resilience layer is invisible;
2. over a link dropping 10% of requests, losing 10% of replies and
   garbling 5% — every cycle still completes, shadows converge
   byte-exact, and the resilience counters show the price paid.

Run:  python examples/chaos_recovery.py
"""

from repro.core.client import ShadowClient
from repro.core.server import ShadowServer
from repro.core.workspace import MappingWorkspace
from repro.metrics.report import format_resilience
from repro.resilience.policy import RetryPolicy
from repro.resilience.session import ResilienceConfig
from repro.simnet.clock import SimulatedClock
from repro.transport.base import LoopbackChannel
from repro.transport.flaky import FlakyChannel
from repro.transport.framing import ChecksummedChannel, checksummed_handler
from repro.workload.edits import modify_percent
from repro.workload.files import make_text_file

PATH = "/home/alice/input.dat"
CYCLES = 20


def run(drop: float, reply_loss: float, garble: float):
    clock = SimulatedClock()
    server = ShadowServer(clock=clock)
    flaky = FlakyChannel(
        LoopbackChannel(checksummed_handler(server.handle)),
        drop_rate=drop,
        reply_loss_rate=reply_loss,
        garble_rate=garble,
    )
    client = ShadowClient(
        "alice@workstation",
        MappingWorkspace(),
        clock=clock,
        resilience=ResilienceConfig(retry=RetryPolicy.aggressive()),
    )
    client.connect(server.name, ChecksummedChannel(flaky))

    data = make_text_file(10_000, seed=1988)
    for cycle in range(CYCLES):
        data = modify_percent(data, 2, seed=1988 + cycle)
        client.write_file(PATH, data)
        job_id = client.submit("wc input.dat", [PATH])
        client.fetch_output(job_id)

    key = str(client.workspace.resolve(PATH))
    stats = client.resilience_stats
    stats.faults_injected = flaky.faults_injected
    stats.merge(server.resilience)
    return {
        "converged": server.cache.get(key).content == data,
        "jobs": len(server.status),
        "virtual_seconds": clock.now(),
        "stats": stats,
    }


def report(title: str, outcome) -> None:
    print(f"{title}:")
    print(f"  shadows byte-equal : {outcome['converged']}")
    print(f"  server jobs        : {outcome['jobs']} "
          f"(submissions: {CYCLES}, duplicates: 0)")
    print(f"  virtual time       : {outcome['virtual_seconds']:,.1f} "
          "seconds (job cpu + retry backoff)")
    print("  " + format_resilience(outcome["stats"]).replace("\n", "\n  "))
    print()


def main() -> None:
    report("clean link", run(0.0, 0.0, 0.0))
    report("faulty link (10% drop, 10% reply loss, 5% garble)",
           run(0.10, 0.10, 0.05))


if __name__ == "__main__":
    main()
