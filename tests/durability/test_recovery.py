"""Restart-from-journal rebuilds the exact server state.

A full client cycle runs against a journaled server; a second server is
then booted over the same journal directory and must agree with the
first on every durable axis: cache contents and versions, session reply
caches, job records and their output bundles.  The satellite cases pin
the :meth:`CacheStore.reconcile` verdicts after a restart — in
particular that an entry evicted *between* the snapshot and the crash
stays evicted (``missing``), rather than resurrecting or reporting
``divergent``.
"""

import os

import pytest

from repro.core.client import ShadowClient
from repro.core.server import ShadowServer
from repro.core.workspace import MappingWorkspace
from repro.durability.journal import JournalWriter, read_journal
from repro.durability.manager import (
    JOURNAL_FILE,
    JOURNAL_ROTATED,
    SNAPSHOT_FILE,
)
from repro.errors import JournalError
from repro.jobs.status import JobState
from repro.transport.base import LoopbackChannel
from repro.workload.files import make_text_file

PATHS = ["/data/alpha.dat", "/data/beta.dat", "/data/gamma.dat"]


def build(journal_dir, **kwargs):
    server = ShadowServer(journal_dir=str(journal_dir), **kwargs)
    client = ShadowClient("alice@ws", MappingWorkspace())
    client.connect(server.name, LoopbackChannel(server.handle))
    return server, client


def run_cycle(client):
    for index, path in enumerate(PATHS):
        client.write_file(path, make_text_file(2_000, seed=300 + index))
    job_id = client.submit("wc alpha.dat", [PATHS[0]])
    bundle = client.fetch_output(job_id)
    return job_id, bundle


def restart(journal_dir, **kwargs):
    return ShadowServer(journal_dir=str(journal_dir), **kwargs)


def cache_image(server):
    return {
        key: (entry.version, entry.content, entry.checksum)
        for key in list(server.cache._entries)
        for entry in [server.cache.peek_entry(key)]
    }


def test_restart_rebuilds_cache_sessions_and_jobs(tmp_path, client=None):
    server, client = build(tmp_path)
    job_id, bundle = run_cycle(client)
    before_cache = cache_image(server)
    before_replies = {
        session.client_id: dict(session._replies)
        for session in server.sessions.all_sessions()
    }

    revived = restart(tmp_path)
    report = revived.durability.last_recovery
    assert report["replayed_records"] > 0
    assert report["truncated_tail_records"] == 0

    assert cache_image(revived) == before_cache
    for session in revived.sessions.all_sessions():
        assert session.greeted
        assert dict(session._replies) == before_replies[session.client_id]
    record = revived.status.get(job_id)
    assert record.state is JobState.COMPLETED
    revived_bundle = revived._finished[job_id]
    assert revived_bundle.stdout == bundle.stdout
    assert revived_bundle.output_files == bundle.output_files
    assert revived.describe()["durability"]["journal_dir"] == str(tmp_path)


def test_restart_from_snapshot_alone(tmp_path):
    server, client = build(tmp_path)
    job_id, bundle = run_cycle(client)
    before_cache = cache_image(server)
    server.durability.snapshot(server)
    assert os.path.exists(tmp_path / SNAPSHOT_FILE)
    assert not os.path.exists(tmp_path / JOURNAL_ROTATED)

    revived = restart(tmp_path)
    report = revived.durability.last_recovery
    assert report["had_snapshot"]
    assert report["replayed_records"] == 0
    assert cache_image(revived) == before_cache
    assert revived.status.get(job_id).state is JobState.COMPLETED
    assert revived._finished[job_id].stdout == bundle.stdout


def test_snapshot_cadence_truncates_the_journal(tmp_path):
    server, client = build(tmp_path, snapshot_every=4)
    run_cycle(client)
    # Enough records went down to cross the cadence at least once.
    assert os.path.exists(tmp_path / SNAPSHOT_FILE)
    live = read_journal(str(tmp_path / JOURNAL_FILE))
    assert len(live.records) < server.telemetry.counter("journal_appends").value


def test_torn_tail_is_truncated_not_fatal(tmp_path):
    server, client = build(tmp_path)
    run_cycle(client)
    journal = tmp_path / JOURNAL_FILE
    clean = read_journal(str(journal))
    with open(journal, "ab") as handle:
        handle.write(b"\x00\x00\x00\x30garbage-that-is-not-a-frame")

    revived = restart(tmp_path)
    report = revived.durability.last_recovery
    assert report["truncated_tail_records"] == 1
    assert report["truncated_bytes"] > 0
    assert report["replayed_records"] == len(clean.records)
    # The journal on disk healed: the next scan is clean.
    assert not read_journal(str(journal)).truncated


def test_double_replay_is_idempotent(tmp_path):
    """A crash between snapshot rename and journal delete replays
    records the snapshot already holds; state must not double up."""
    server, client = build(tmp_path)
    job_id, _ = run_cycle(client)
    records = read_journal(str(tmp_path / JOURNAL_FILE)).records
    for target, repeats in ((tmp_path / "once", 1), (tmp_path / "twice", 2)):
        os.makedirs(target, exist_ok=True)
        with JournalWriter(str(target / JOURNAL_FILE)) as writer:
            for _ in range(repeats):
                for record in records:
                    writer.append(record)
    once = restart(tmp_path / "once")
    twice = restart(tmp_path / "twice")
    assert cache_image(once) == cache_image(twice)
    assert len(once.status.all_records()) == len(twice.status.all_records())
    assert twice.status.get(job_id).state is JobState.COMPLETED


def test_rotated_journal_left_by_a_crash_is_replayed(tmp_path):
    server, client = build(tmp_path)
    run_cycle(client)
    before_cache = cache_image(server)
    # Simulate dying between rotation and snapshot write: the live
    # journal became .old and nothing else happened.
    os.replace(tmp_path / JOURNAL_FILE, tmp_path / JOURNAL_ROTATED)

    revived = restart(tmp_path)
    assert cache_image(revived) == before_cache
    assert not os.path.exists(tmp_path / JOURNAL_ROTATED)


def test_snapshot_every_must_be_positive(tmp_path):
    with pytest.raises(JournalError):
        ShadowServer(journal_dir=str(tmp_path), snapshot_every=0)


# ----------------------------------------------------------------------
# satellite: reconcile verdicts across restart-from-snapshot
# ----------------------------------------------------------------------
def claims_matrix(store, key, version, checksum):
    """Reconcile verdicts for one key across the interesting claims."""
    return {
        "same": store.reconcile(key, version, checksum),
        "ahead": store.reconcile(key, version + 2, checksum),
        "behind": store.reconcile(key, max(version - 1, 0), "different"),
        "forged": store.reconcile(key, version, "different"),
    }


def test_reconcile_verdicts_survive_restart(tmp_path):
    server, client = build(tmp_path)
    run_cycle(client)
    keys = {
        path: str(client.workspace.resolve(path)) for path in PATHS
    }
    claims = {
        path: (entry.version, entry.checksum)
        for path, key in keys.items()
        for entry in [server.cache.peek_entry(key)]
    }
    before = {
        path: claims_matrix(server.cache, keys[path], *claims[path])
        for path in PATHS
    }
    server.durability.snapshot(server)

    revived = restart(tmp_path)
    after = {
        path: claims_matrix(revived.cache, keys[path], *claims[path])
        for path in PATHS
    }
    assert after == before
    assert before[PATHS[0]]["same"] == revived.cache.CURRENT
    assert before[PATHS[0]]["ahead"] == revived.cache.STALE


def test_entry_evicted_after_snapshot_stays_missing(tmp_path):
    """The ISSUE's sharp edge: evicted between snapshot and crash must
    recover as MISSING (full transfer), never DIVERGENT or resurrected."""
    server, client = build(tmp_path)
    run_cycle(client)
    victim = str(client.workspace.resolve(PATHS[1]))
    entry = server.cache.peek_entry(victim)
    version, checksum = entry.version, entry.checksum
    server.durability.snapshot(server)
    # Eviction *after* the snapshot: journaled as cache-drop.
    assert server.cache.invalidate(victim)

    revived = restart(tmp_path)
    assert revived.cache.peek_entry(victim) is None
    assert (
        revived.cache.reconcile(victim, version, checksum)
        == revived.cache.MISSING
    )
    # The untouched neighbours are still CURRENT.
    survivor = str(client.workspace.resolve(PATHS[0]))
    alive = revived.cache.peek_entry(survivor)
    assert (
        revived.cache.reconcile(survivor, alive.version, alive.checksum)
        == revived.cache.CURRENT
    )
