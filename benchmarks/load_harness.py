"""Wall-clock load harness for the TCP transport backends.

Drives N concurrent closed-loop connections against a live server and
reports sustained requests/second plus latency percentiles (p50, p95,
p99) — the number the event-loop backend exists for.  Unlike the
``benchmarks/test_fig*`` rigs, which run on the simulated 1987 testbed,
this harness measures *real* sockets on *this* machine.

The load generator is itself a single ``selectors`` loop (a thread per
connection would perturb the measurement and cap N at the thread
limit), so one process can open thousands of sockets.  Each connection
runs closed-loop: send one framed request, wait for the framed reply,
record the latency, repeat — so ``connections`` is also the offered
concurrency, and req/s is throughput under that concurrency.

Workloads:

* ``echo`` — a trivial echoing handler: pure transport cost, the
  backend comparison with nothing else in the frame.
* ``stats`` — a real :class:`~repro.core.server.ShadowServer` answering
  ``StatsQuery`` (legal without a Hello): framing + codec + server
  bookkeeping on the hot path.

Usage::

    PYTHONPATH=src python benchmarks/load_harness.py \
        --connections 1000 --duration 5 --transport both

Exits non-zero under ``--check`` if any connection errored or the run
completed zero requests — the CI smoke contract.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import selectors
import socket
import struct
import sys
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

if __package__ in (None, ""):  # script execution: make src importable
    _ROOT = pathlib.Path(__file__).resolve().parent.parent
    for entry in (str(_ROOT / "src"),):
        if entry not in sys.path:
            sys.path.insert(0, entry)

from repro.transport import TRANSPORT_BACKENDS, channel_server

HEADER = struct.Struct(">II")
RECV_CHUNK = 65_536


def _frame(payload: bytes) -> bytes:
    return HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def raise_fd_limit(need: int) -> int:
    """Best-effort bump of RLIMIT_NOFILE to fit ``need`` sockets."""
    try:
        import resource
    except ImportError:  # non-POSIX: hope for the best
        return need
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    want = need + 256  # listener, waker, stdio, slack
    if soft >= want:
        return soft
    try:
        resource.setrlimit(resource.RLIMIT_NOFILE, (min(want, hard), hard))
    except (ValueError, OSError):
        pass
    return resource.getrlimit(resource.RLIMIT_NOFILE)[0]


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------


def echo_workload(payload_bytes: int):
    """A trivial echo handler and the request each connection repeats."""
    request = b"x" * payload_bytes

    def handler(data: bytes) -> bytes:
        return data

    return handler, request, None


def stats_workload(payload_bytes: int):
    """A real ShadowServer answering StatsQuery (no Hello needed)."""
    from repro.core.protocol import StatsQuery
    from repro.core.server import ShadowServer

    server = ShadowServer(name="bench-server")
    request = StatsQuery(client_id="bench@loadgen").to_wire()
    return server.handle, request, server.close


WORKLOADS: Dict[str, Callable] = {
    "echo": echo_workload,
    "stats": stats_workload,
}


# ----------------------------------------------------------------------
# load generator
# ----------------------------------------------------------------------


class _LoadConn:
    """One closed-loop connection inside the generator's selector."""

    __slots__ = (
        "sock",
        "outbound",
        "sent_offset",
        "inbound",
        "expect",
        "sent_at",
        "completed",
        "failed",
    )

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.outbound = b""
        self.sent_offset = 0
        self.inbound = bytearray()
        self.expect = 0  # reply bytes still owed (0 = idle)
        self.sent_at = 0.0
        self.completed = 0
        self.failed = False


@dataclass
class LoadResult:
    transport: str
    workload: str
    connections: int
    duration_seconds: float
    requests: int
    errors: int
    rps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    connect_seconds: float
    samples: int = field(repr=False, default=0)

    def row(self) -> str:
        return (
            f"{self.transport:<10} {self.workload:<6} "
            f"{self.connections:>6} conns  "
            f"{self.rps:>10.0f} req/s  "
            f"p50 {self.p50_ms:7.2f} ms  "
            f"p95 {self.p95_ms:7.2f} ms  "
            f"p99 {self.p99_ms:7.2f} ms  "
            f"({self.requests} reqs, {self.errors} errors)"
        )


def _percentile(sorted_samples: List[float], fraction: float) -> float:
    if not sorted_samples:
        return float("nan")
    index = min(
        len(sorted_samples) - 1, int(fraction * (len(sorted_samples) - 1))
    )
    return sorted_samples[index]


def _connect_all(
    port: int, count: int, deadline: float
) -> List[socket.socket]:
    """Open ``count`` sockets, retrying refusals until ``deadline``.

    A listen backlog under heavy simultaneous connects can refuse or
    reset; the harness retries rather than counting setup noise as
    measurement errors.
    """
    sockets: List[socket.socket] = []
    while len(sockets) < count:
        if time.monotonic() > deadline:
            for sock in sockets:
                sock.close()
            raise RuntimeError(
                f"could not open {count} connections before deadline "
                f"(got {len(sockets)})"
            )
        try:
            sock = socket.create_connection(("127.0.0.1", port), timeout=10.0)
        except OSError:
            time.sleep(0.05)
            continue
        sock.setblocking(False)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sockets.append(sock)
    return sockets


def run_load(
    transport: str,
    workload: str = "echo",
    connections: int = 100,
    duration: float = 5.0,
    payload_bytes: int = 64,
    port: int = 0,
) -> LoadResult:
    """Measure one backend under one workload; returns the result row."""
    handler, request_payload, cleanup = WORKLOADS[workload](payload_bytes)
    request = _frame(request_payload)
    raise_fd_limit(connections)
    server = channel_server(handler, transport=transport, port=port)
    latencies: List[float] = []
    errors = 0
    requests = 0
    try:
        connect_began = time.monotonic()
        socks = _connect_all(
            server.port, connections, connect_began + max(30.0, duration * 4)
        )
        connect_seconds = time.monotonic() - connect_began

        selector = selectors.DefaultSelector()
        conns: List[_LoadConn] = []
        for sock in socks:
            conn = _LoadConn(sock)
            conn.outbound = request
            conn.sent_at = 0.0
            conns.append(conn)
            selector.register(sock, selectors.EVENT_WRITE, conn)

        began = time.monotonic()
        cutoff = began + duration

        def retire(conn: _LoadConn, *, failed: bool) -> None:
            nonlocal errors
            if failed:
                errors += 1
                conn.failed = True
            try:
                selector.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
            conn.sock.close()

        live = len(conns)
        while live and time.monotonic() < cutoff:
            events = selector.select(timeout=0.2)
            now = time.monotonic()
            for key, mask in events:
                conn: _LoadConn = key.data
                if conn.failed:
                    continue
                if mask & selectors.EVENT_WRITE and conn.outbound:
                    if conn.sent_offset == 0:
                        conn.sent_at = now
                    try:
                        sent = conn.sock.send(
                            conn.outbound[conn.sent_offset :]
                        )
                    except (BlockingIOError, InterruptedError):
                        sent = 0
                    except OSError:
                        retire(conn, failed=True)
                        live -= 1
                        continue
                    conn.sent_offset += sent
                    if conn.sent_offset >= len(conn.outbound):
                        conn.outbound = b""
                        conn.sent_offset = 0
                        selector.modify(
                            conn.sock, selectors.EVENT_READ, conn
                        )
                if mask & selectors.EVENT_READ:
                    try:
                        chunk = conn.sock.recv(RECV_CHUNK)
                    except (BlockingIOError, InterruptedError):
                        continue
                    except OSError:
                        retire(conn, failed=True)
                        live -= 1
                        continue
                    if not chunk:
                        retire(conn, failed=True)
                        live -= 1
                        continue
                    conn.inbound += chunk
                    # One reply per outstanding request: a whole frame
                    # in the buffer completes the cycle.
                    if len(conn.inbound) >= HEADER.size:
                        (length, _) = HEADER.unpack_from(conn.inbound)
                        if len(conn.inbound) >= HEADER.size + length:
                            latency = now - conn.sent_at
                            latencies.append(latency)
                            requests += 1
                            conn.completed += 1
                            del conn.inbound[: HEADER.size + length]
                            conn.outbound = request
                            selector.modify(
                                conn.sock, selectors.EVENT_WRITE, conn
                            )
        measured = time.monotonic() - began
        for conn in conns:
            if not conn.failed:
                retire(conn, failed=False)
        selector.close()
    finally:
        server.close(drain_seconds=1.0)
        if cleanup is not None:
            cleanup()

    latencies.sort()
    return LoadResult(
        transport=transport,
        workload=workload,
        connections=connections,
        duration_seconds=measured,
        requests=requests,
        errors=errors,
        rps=requests / measured if measured > 0 else 0.0,
        p50_ms=_percentile(latencies, 0.50) * 1000,
        p95_ms=_percentile(latencies, 0.95) * 1000,
        p99_ms=_percentile(latencies, 0.99) * 1000,
        connect_seconds=connect_seconds,
        samples=len(latencies),
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="wall-clock load comparison of the transport backends"
    )
    parser.add_argument(
        "--transport",
        choices=list(TRANSPORT_BACKENDS) + ["both"],
        default="both",
    )
    parser.add_argument(
        "--workload", choices=sorted(WORKLOADS), default="echo"
    )
    parser.add_argument("--connections", type=int, default=100)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--payload-bytes", type=int, default=64)
    parser.add_argument(
        "--json", action="store_true", help="emit JSON rows instead of text"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 on any connection error or an idle run (CI smoke)",
    )
    parser.add_argument(
        "--artifact",
        nargs="?",
        const="BENCH_loadharness.json",
        default=None,
        metavar="PATH",
        help="also write every result row as one machine-readable JSON "
        "file (default name BENCH_loadharness.json) for trend tracking",
    )
    args = parser.parse_args(argv)

    backends = (
        list(TRANSPORT_BACKENDS)
        if args.transport == "both"
        else [args.transport]
    )
    failed = False
    results: List[LoadResult] = []
    for backend in backends:
        result = run_load(
            backend,
            workload=args.workload,
            connections=args.connections,
            duration=args.duration,
            payload_bytes=args.payload_bytes,
        )
        results.append(result)
        if args.json:
            print(json.dumps(result.__dict__))
        else:
            print(result.row())
        if result.errors or result.requests == 0:
            failed = True
    if args.artifact:
        pathlib.Path(args.artifact).write_text(
            json.dumps(
                {
                    "harness": "load_harness",
                    "workload": args.workload,
                    "connections": args.connections,
                    "duration_seconds": args.duration,
                    "payload_bytes": args.payload_bytes,
                    "results": [result.__dict__ for result in results],
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )
    if args.check and failed:
        print("load check FAILED: errors or zero completed requests")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
