"""Tests for protocol message serialisation."""

import pytest

from repro.core.protocol import (
    Bye,
    DeliverOutput,
    ErrorReply,
    FetchOutput,
    Hello,
    Notify,
    NotifyReply,
    Ok,
    OutputReply,
    RequestUpdate,
    StatusQuery,
    StatusReply,
    Submit,
    SubmitReply,
    Update,
    UpdateAck,
    decode_message,
    expect,
)
from repro.errors import ProtocolError

ALL_MESSAGES = [
    Hello(client_id="alice", domain="d1"),
    Notify(client_id="alice", key="d/h:/f", version=2, size=100, checksum="ab"),
    Update(
        client_id="alice",
        key="d/h:/f",
        version=2,
        base_version=1,
        is_delta=True,
        compressed=True,
        payload=b"\x00\x01delta",
    ),
    Submit(
        client_id="alice",
        script="wc f",
        files=(("d/h:/f", 2),),
        output_file="out.txt",
        deliver_to_host="printer",
        priority=3,
    ),
    StatusQuery(client_id="alice", job_id="j1"),
    StatusQuery(client_id="alice", job_id=None),
    FetchOutput(client_id="alice", job_id="j1", have_output_of="j0"),
    Bye(client_id="alice"),
    Ok(detail="fine"),
    ErrorReply(code="x", message="broken"),
    NotifyReply(pull_now=True, base_version=4),
    UpdateAck(key="d/h:/f", stored_version=2, cached=False),
    SubmitReply(job_id="j9", needs=(("d/h:/f", 0), ("d/h:/g", 3))),
    StatusReply(records=({"job_id": "j1", "state": "running"},)),
    OutputReply(
        job_id="j1",
        ready=True,
        state="completed",
        exit_code=0,
        cpu_seconds=1.25,
        streams={"stdout": {"kind": "full", "data": b"hi"}},
    ),
    RequestUpdate(key="d/h:/f", base_version=1),
    DeliverOutput(
        job_id="j1",
        exit_code=0,
        streams={"stdout": {"kind": "full", "data": b"pushed"}},
    ),
]


@pytest.mark.parametrize(
    "message", ALL_MESSAGES, ids=lambda m: type(m).__name__ + str(id(m) % 97)
)
def test_wire_roundtrip(message):
    assert decode_message(message.to_wire()) == message


def test_every_type_tag_unique():
    tags = [type(message).TYPE for message in ALL_MESSAGES]
    assert len(set(tags)) == len(set(type(m) for m in ALL_MESSAGES))


def test_unknown_type_rejected():
    from repro.core import codec

    with pytest.raises(ProtocolError):
        decode_message(codec.encode({"_t": "no-such-message"}))


def test_untagged_payload_rejected():
    from repro.core import codec

    with pytest.raises(ProtocolError):
        decode_message(codec.encode({"foo": 1}))


def test_non_dict_payload_rejected():
    from repro.core import codec

    with pytest.raises(ProtocolError):
        decode_message(codec.encode([1, 2, 3]))


def test_unexpected_field_rejected():
    from repro.core import codec

    with pytest.raises(ProtocolError):
        decode_message(codec.encode({"_t": "ok", "bogus": 1}))


def test_control_messages_are_small():
    # §5.2: "job submission and update requests are short and quick".
    notify = Notify(
        client_id="alice@ws", key="dom/host:/some/path.dat", version=3,
        size=100_000, checksum="0123456789abcdef",
    ).to_wire()
    assert len(notify) < 200


class TestEnvelopeSpanParent:
    """The optional ``psp`` field must cost zero bytes when unused."""

    def _envelope(self, **extra):
        from repro.core.protocol import Envelope

        return Envelope(
            rid="r-1",
            body=Hello(client_id="alice", domain="d1").to_wire(),
            **extra,
        )

    def test_wire_bytes_identical_without_psp(self):
        assert self._envelope().to_wire() == self._envelope(psp="").to_wire()
        assert b"psp" not in self._envelope().to_wire()

    def test_psp_round_trips(self):
        wire = self._envelope(psp="s-abc-1").to_wire()
        assert b"psp" in wire
        decoded = decode_message(wire)
        assert decoded.psp == "s-abc-1"
        assert decode_message(self._envelope().to_wire()).psp == ""


class TestHealthMessages:
    def test_health_query_round_trips(self):
        from repro.core.protocol import HealthQuery

        query = HealthQuery(client_id="probe@cli")
        assert decode_message(query.to_wire()) == query

    def test_health_reply_round_trips(self):
        from repro.core.protocol import HealthReply

        reply = HealthReply(
            status="degraded",
            report={"status": "degraded", "objectives": []},
        )
        decoded = decode_message(reply.to_wire())
        assert decoded.status == "degraded"
        assert list(decoded.report["objectives"]) == []


class TestExpect:
    def test_passes_matching_type(self):
        assert expect(Ok(), Ok) == Ok()

    def test_raises_on_server_error(self):
        with pytest.raises(ProtocolError, match="broken"):
            expect(ErrorReply(code="c", message="broken"), Ok)

    def test_raises_on_wrong_type(self):
        with pytest.raises(ProtocolError):
            expect(Ok(), NotifyReply)
