"""Tests for the discrete-event scheduler."""

import pytest

from repro.errors import ClockError, SimulationError
from repro.simnet.events import EventScheduler


@pytest.fixture
def scheduler():
    return EventScheduler()


class TestScheduling:
    def test_events_fire_in_time_order(self, scheduler):
        fired = []
        scheduler.schedule_at(2.0, lambda: fired.append("b"))
        scheduler.schedule_at(1.0, lambda: fired.append("a"))
        scheduler.schedule_at(3.0, lambda: fired.append("c"))
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_equal_timestamps_fire_in_insertion_order(self, scheduler):
        fired = []
        for label in "abcde":
            scheduler.schedule_at(1.0, lambda l=label: fired.append(l))
        scheduler.run()
        assert fired == ["a", "b", "c", "d", "e"]

    def test_clock_advances_to_event_time(self, scheduler):
        times = []
        scheduler.schedule_at(4.5, lambda: times.append(scheduler.clock.now()))
        scheduler.run()
        assert times == [4.5]

    def test_schedule_in_is_relative(self, scheduler):
        scheduler.clock.advance(10.0)
        handle = scheduler.schedule_in(2.0, lambda: None)
        assert handle.timestamp == 12.0

    def test_cannot_schedule_in_past(self, scheduler):
        scheduler.clock.advance(5.0)
        with pytest.raises(ClockError):
            scheduler.schedule_at(4.0, lambda: None)

    def test_negative_delay_rejected(self, scheduler):
        with pytest.raises(ClockError):
            scheduler.schedule_in(-1.0, lambda: None)

    def test_events_may_schedule_events(self, scheduler):
        fired = []

        def first():
            fired.append("first")
            scheduler.schedule_in(1.0, lambda: fired.append("second"))

        scheduler.schedule_at(1.0, first)
        scheduler.run()
        assert fired == ["first", "second"]
        assert scheduler.clock.now() == 2.0

    def test_run_returns_event_count(self, scheduler):
        for offset in range(5):
            scheduler.schedule_at(float(offset), lambda: None)
        assert scheduler.run() == 5

    def test_dispatched_counter(self, scheduler):
        scheduler.schedule_at(1.0, lambda: None)
        scheduler.run()
        assert scheduler.dispatched == 1


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, scheduler):
        fired = []
        handle = scheduler.schedule_at(1.0, lambda: fired.append("x"))
        handle.cancel()
        scheduler.run()
        assert fired == []

    def test_cancel_is_idempotent(self, scheduler):
        handle = scheduler.schedule_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_excludes_cancelled(self, scheduler):
        handle = scheduler.schedule_at(1.0, lambda: None)
        scheduler.schedule_at(2.0, lambda: None)
        handle.cancel()
        assert scheduler.pending == 1


class TestRunUntil:
    def test_stops_at_deadline(self, scheduler):
        fired = []
        scheduler.schedule_at(1.0, lambda: fired.append(1))
        scheduler.schedule_at(5.0, lambda: fired.append(5))
        scheduler.run_until(3.0)
        assert fired == [1]
        assert scheduler.clock.now() == 3.0

    def test_clock_lands_on_deadline_even_when_queue_empty(self, scheduler):
        scheduler.run_until(7.0)
        assert scheduler.clock.now() == 7.0

    def test_boundary_event_fires(self, scheduler):
        fired = []
        scheduler.schedule_at(3.0, lambda: fired.append(3))
        scheduler.run_until(3.0)
        assert fired == [3]


class TestRunawayProtection:
    def test_self_rescheduling_loop_detected(self, scheduler):
        def loop():
            scheduler.schedule_in(0.1, loop)

        scheduler.schedule_in(0.1, loop)
        with pytest.raises(SimulationError):
            scheduler.run(max_events=100)

    def test_step_on_empty_queue_returns_false(self, scheduler):
        assert scheduler.step() is False
