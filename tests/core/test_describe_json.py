"""describe() blocks must be fully JSON-serializable (ops tooling eats them)."""

from __future__ import annotations

import json

from repro.core.service import loopback_pair


def roundtrip(payload):
    return json.loads(json.dumps(payload, sort_keys=True))


def test_server_describe_round_trips_through_json():
    client, server = loopback_pair()
    client.write_file("/data.dat", b"payload" * 100)
    job = client.submit("run /data.dat", ["/data.dat"])
    client.fetch_output(job)

    described = server.describe()
    recovered = roundtrip(described)
    assert recovered["name"] == server.name
    assert recovered["telemetry"]["series"] > 0
    assert recovered["telemetry"]["events"]["emitted"] >= 0
    # Lossless: nothing in the block needed coercion on the way out.
    assert roundtrip(recovered) == recovered


def test_client_describe_round_trips_through_json():
    client, server = loopback_pair()
    client.write_file("/data.dat", b"x" * 64)
    described = client.describe()
    recovered = roundtrip(described)
    assert recovered["client_id"] == client.client_id
    assert any(
        name.endswith("/data.dat") for name in recovered["shadow_files"]
    )


def test_fresh_server_describe_is_json_clean():
    _, server = loopback_pair()
    assert roundtrip(server.describe())["jobs"] is not None
