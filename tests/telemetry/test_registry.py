"""MetricsRegistry: series identity, kinds, snapshots, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ShadowError
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
)


def test_counter_get_or_create_is_identity():
    registry = MetricsRegistry()
    first = registry.counter("frames_total", {"direction": "in"})
    second = registry.counter("frames_total", {"direction": "in"})
    assert first is second
    first.inc()
    first.inc(2.5)
    assert second.value == 3.5


def test_label_order_does_not_matter():
    registry = MetricsRegistry()
    a = registry.counter("x", {"b": "1", "a": "2"})
    b = registry.counter("x", {"a": "2", "b": "1"})
    assert a is b
    assert a.label_dict == {"a": "2", "b": "1"}


def test_counter_rejects_negative_increment():
    counter = MetricsRegistry().counter("ups")
    with pytest.raises(ShadowError):
        counter.inc(-1)


def test_kind_mismatch_is_an_error():
    registry = MetricsRegistry()
    registry.counter("thing")
    with pytest.raises(ShadowError):
        registry.gauge("thing")
    with pytest.raises(ShadowError):
        registry.histogram("thing")


def test_gauge_set_inc_dec():
    gauge = MetricsRegistry().gauge("depth")
    gauge.set(10)
    gauge.inc(5)
    gauge.dec(2)
    assert gauge.value == 13


def test_gauge_callback_sampled_at_read_time():
    registry = MetricsRegistry()
    level = {"value": 1.0}
    gauge = registry.gauge("level", callback=lambda: level["value"])
    assert gauge.value == 1.0
    level["value"] = 7.0
    assert gauge.value == 7.0


def test_gauge_callback_failure_reads_zero():
    registry = MetricsRegistry()

    def boom() -> float:
        raise RuntimeError("sampling failed")

    gauge = registry.gauge("broken", callback=boom)
    assert gauge.value == 0.0


def test_gauge_callback_can_be_rebound():
    registry = MetricsRegistry()
    registry.gauge("rebind", callback=lambda: 1.0)
    assert registry.gauge("rebind", callback=lambda: 2.0).value == 2.0


def test_histogram_counts_sum_and_quantiles():
    histogram = MetricsRegistry().histogram(
        "latency", buckets=(0.01, 0.1, 1.0)
    )
    for value in (0.005, 0.005, 0.05, 0.5):
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.sum == pytest.approx(0.56)
    # Quantiles resolve to the upper bound of the holding bucket.
    assert histogram.quantile(0.5) == 0.01
    assert histogram.quantile(0.95) == 1.0
    # Values beyond every bound land in +Inf but quantiles cap at the top.
    histogram.observe(10.0)
    assert histogram.quantile(1.0) == 1.0


def test_histogram_bucket_counts_are_cumulative_and_end_with_inf():
    histogram = Histogram("h", (), buckets=(1.0, 2.0))
    histogram.observe(0.5)
    histogram.observe(1.5)
    histogram.observe(99.0)
    assert histogram.bucket_counts() == [("1", 1), ("2", 2), ("+Inf", 3)]


def test_histogram_empty_quantile_and_bad_q():
    histogram = MetricsRegistry().histogram("empty")
    assert histogram.quantile(0.99) == 0.0
    with pytest.raises(ShadowError):
        histogram.quantile(1.5)


def test_default_buckets_are_sorted_and_unique():
    assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


def test_snapshot_shape_and_stable_order():
    registry = MetricsRegistry()
    registry.counter("b_total").inc(2)
    registry.counter("a_total", {"k": "v"}).inc()
    registry.gauge("depth").set(3)
    registry.histogram("seconds").observe(0.25)
    snapshot = registry.snapshot()
    assert [entry["name"] for entry in snapshot["counters"]] == [
        "a_total",
        "b_total",
    ]
    assert snapshot["counters"][0]["labels"] == {"k": "v"}
    assert snapshot["gauges"] == [
        {"name": "depth", "labels": {}, "value": 3.0}
    ]
    histogram = snapshot["histograms"][0]
    assert histogram["count"] == 1
    assert histogram["sum"] == pytest.approx(0.25)
    assert histogram["p50"] == 0.5  # upper bound of the holding bucket
    assert histogram["buckets"][-1][0] == "+Inf"


def test_concurrent_increments_are_exact():
    registry = MetricsRegistry()
    counter = registry.counter("races_total")

    def spin() -> None:
        for _ in range(1000):
            counter.inc()

    threads = [threading.Thread(target=spin) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == 8000
