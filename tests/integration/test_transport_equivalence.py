"""Transport equivalence: the same protocol bytes on every channel.

The paper's client/server run over real TCP; our benchmarks run the
identical code over the simulated wire.  These tests pin the property
that makes that substitution valid: byte-for-byte identical payloads and
identical end state across loopback, simulated, and TCP transports.
"""

import pytest

from repro.core.server import ShadowServer
from repro.core.service import SimulatedDeployment, loopback_pair, tcp_pair
from repro.simnet.link import LAN_10M
from repro.workload.edits import modify_percent
from repro.workload.files import make_text_file

PATH = "/data/input.dat"
SCRIPT = "wc input.dat\nsort input.dat > sorted.txt"


def run_scenario(client, server):
    """The same workload on any deployment; returns observable state."""
    base = make_text_file(15_000, seed=150)
    client.write_file(PATH, base)
    first_job = client.submit(SCRIPT, [PATH])
    first = client.fetch_output(first_job)
    edited = modify_percent(base, 3, seed=150)
    client.write_file(PATH, edited)
    second_job = client.submit(SCRIPT, [PATH])
    second = client.fetch_output(second_job)
    key = str(client.workspace.resolve(PATH))
    return {
        "first_stdout": first.stdout,
        "second_stdout": second.stdout,
        "sorted": second.output_files["sorted.txt"],
        "cached_version": server.cache.peek_version(key),
        "cached_content": server.cache.get(key).content,
    }


class TestTransportEquivalence:
    def test_loopback_vs_tcp(self):
        loop_client, loop_server = loopback_pair()
        loop_result = run_scenario(loop_client, loop_server)
        with tcp_pair() as deployment:
            tcp_result = run_scenario(deployment.client, deployment.server)
        assert loop_result == tcp_result

    def test_loopback_vs_eventloop_tcp(self):
        """The event-loop backend must be observationally identical to
        every other transport — same bytes, same end state."""
        loop_client, loop_server = loopback_pair()
        loop_result = run_scenario(loop_client, loop_server)
        with tcp_pair(transport="eventloop") as deployment:
            event_result = run_scenario(deployment.client, deployment.server)
        assert loop_result == event_result

    def test_threaded_vs_eventloop_tcp(self):
        with tcp_pair(transport="threaded") as deployment:
            threaded_result = run_scenario(
                deployment.client, deployment.server
            )
        with tcp_pair(transport="eventloop") as deployment:
            event_result = run_scenario(deployment.client, deployment.server)
        assert threaded_result == event_result

    def test_loopback_vs_simulated(self):
        loop_client, loop_server = loopback_pair()
        loop_result = run_scenario(loop_client, loop_server)
        deployment = SimulatedDeployment.build(LAN_10M)
        sim_result = run_scenario(deployment.client, deployment.server)
        assert loop_result == sim_result

    def test_simulated_wire_bytes_match_channel_stats(self):
        deployment = SimulatedDeployment.build(LAN_10M)
        run_scenario(deployment.client, deployment.server)
        channel = deployment.channel
        # The wires saw exactly what the channel shipped (payload level).
        assert deployment.uplink.stats.payload_bytes >= channel.stats.request_bytes
        assert (
            deployment.downlink.stats.payload_bytes >= channel.stats.reply_bytes
        )


class TestServerDescribe:
    def test_describe_reflects_activity(self):
        client, server = loopback_pair()
        client.write_file(PATH, make_text_file(5_000, seed=151))
        job_id = client.submit("wc input.dat", [PATH])
        client.fetch_output(job_id)
        described = server.describe()
        assert described["clients"] == [client.client_id]
        assert described["cache"]["entries"] == 1
        assert described["jobs"]["by_state"]["completed"] == 1
        assert described["jobs"]["queued"] == 0
        assert described["stale_files"] == 0

    def test_describe_counts_stale_files(self):
        from repro.jobs.scheduler import PullPolicy, Scheduler

        server = ShadowServer(
            scheduler=Scheduler(pull_policy=PullPolicy.ON_SUBMIT)
        )
        from repro.core.client import ShadowClient
        from repro.core.workspace import MappingWorkspace
        from repro.transport.base import LoopbackChannel

        client = ShadowClient("alice@ws", MappingWorkspace())
        client.connect(server.name, LoopbackChannel(server.handle))
        client.write_file(PATH, b"deferred content here\n")
        assert server.describe()["stale_files"] == 1
