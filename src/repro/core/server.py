"""The shadow server: cache, demand-driven pulls, job execution (§6).

"A shadow server runs at each supercomputer site. ... The server accepts
requests for job execution, initiates execution at the supercomputer,
reports on the status of outstanding jobs, and transfers results back to
an appropriate client."

The server is a pure request handler (`handle` maps request payload to
reply payload), so the same instance runs over loopback, the simulated
wire, or TCP.  When given a :class:`SimulatedClock` it charges virtual
CPU seconds for patching, diffing and job execution from a
:class:`ProcessingModel` — reproducing 1987 costs on modern hardware.

Internally the server is four explicit layers, each safe under the
multi-threaded TCP transport:

1. a :class:`~repro.core.router.RequestRouter` decoding envelopes and
   dispatching by message type;
2. a :class:`~repro.core.sessions.SessionRegistry` holding one
   :class:`~repro.core.sessions.ClientSession` per client (reply cache,
   traffic account, callback) — requests for the *same* client
   serialise on the session lock, different clients never contend;
3. an off-path job pipeline (:mod:`repro.jobs.pipeline`) — Submit
   enqueues and returns; workers drain the queue (inline under a
   simulated clock, a bounded thread pool when ``workers > 0``);
4. a sharded, byte-budgeted :class:`~repro.cache.store.CacheStore`.

Every request carries a :class:`~repro.metrics.tracing.RequestTrace`
through the layers (decode, session wait, dispatch, encode, plus
handler sub-phases) into a bounded :class:`TraceLog`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.cache.coherence import CoherenceTracker
from repro.cache.store import CacheStore
from repro.compression.pipeline import Pipeline
from repro.core import protocol
from repro.core.protocol import (
    BatchNotify,
    BatchReply,
    BatchUpdate,
    Bye,
    CancelJob,
    ChunkAck,
    Envelope,
    ErrorReply,
    FetchOutput,
    HealthQuery,
    HealthReply,
    Hello,
    Message,
    Notify,
    NotifyReply,
    Ok,
    OutputReply,
    Probe,
    ProbeReply,
    Resync,
    ResyncReply,
    ShardTransfer,
    StatsQuery,
    StatsReply,
    StatusQuery,
    StatusReply,
    Submit,
    SubmitReply,
    Update,
    UpdateAck,
    UpdateChunk,
    decode_message,
)
from repro.core.router import RequestRouter
from repro.core.sessions import ClientSession, SessionRegistry, TrafficAccount
from repro.diffing import tichy
from repro.durability.manager import (
    DEFAULT_SNAPSHOT_EVERY,
    DurabilityManager,
    pack_bytes,
    request_dict,
)
from repro.diffing.model import checksum as content_checksum
from repro.diffing.model import decode_delta
from repro.diffing.selector import worthwhile
from repro.errors import (
    CacheMissError,
    JobCommandError,
    JobError,
    PatchConflictError,
    ProtocolError,
    ShadowError,
)
from repro.jobs import pipeline as job_pipeline
from repro.jobs.executor import Executor, SimulatedExecutor
from repro.jobs.output import DeliveryPlan, OutputBundle
from repro.jobs.queue import JobQueue, QueuedJob
from repro.jobs.scheduler import Scheduler
from repro.jobs.spec import JobCommandFile, JobRequest
from repro.jobs.status import JobRecord, JobState, StatusTable
from repro.metrics.recorder import ResilienceStats
from repro.metrics.tracing import (
    RequestTrace,
    TraceLog,
    active_trace,
    recording_trace,
    traced_phase,
)
from repro.simnet.clock import Clock
from repro.simnet.link import ProcessingModel
from repro.telemetry.events import EventLog
from repro.telemetry.flightrecorder import FlightRecorder
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.slo import SloEngine
from repro.telemetry.spans import SpanRecorder, current_span_id
from repro.transport.base import RequestChannel

__all__ = ["ShadowServer", "TrafficAccount"]

#: Backwards-compatible alias; the canonical constant lives with the
#: pipeline that enforces it.
_RETAINED_BUNDLES_PER_CLIENT = job_pipeline.RETAINED_BUNDLES_PER_CLIENT


class ShadowServer:
    """One supercomputer site's shadow service."""

    def __init__(
        self,
        name: str = "supercomputer",
        cache: Optional[CacheStore] = None,
        executor: Optional[Executor] = None,
        scheduler: Optional[Scheduler] = None,
        clock: Optional[Clock] = None,
        processing: Optional[ProcessingModel] = None,
        reverse_shadow: bool = True,
        push_outputs: bool = False,
        reply_cache_size: int = 1024,
        workers: int = 0,
        trace_capacity: int = 256,
        telemetry: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
        slow_request_seconds: float = 0.25,
        journal_dir: Optional[str] = None,
        journal_fsync: bool = False,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        span_capacity: int = 512,
        span_sink: Optional[Any] = None,
        flight_dir: Optional[str] = None,
        slo_window_seconds: float = 300.0,
    ) -> None:
        self.name = name
        #: This server's metric series: every layer below reports here.
        self.telemetry = telemetry if telemetry is not None else MetricsRegistry()
        #: Structured events (slow requests, job lifecycle, evictions).
        self.events = events if events is not None else EventLog()
        self.events.bind_telemetry(self.telemetry)
        #: Finished spans (request roots + layer children), always on:
        #: a bounded ring costs nothing on the wire, and the flight
        #: recorder freezes it into postmortem bundles.  ``span_sink``
        #: (any callable taking a dict; a JsonLinesSink for files)
        #: additionally streams every span out for offline assembly.
        self.spans = SpanRecorder(
            site=f"server:{name}", capacity=span_capacity, sink=span_sink
        )
        #: Rolling-window SLO evaluation over the registry; sampled by
        #: the serve loop and on demand by HealthQuery.
        self.slo = SloEngine(self.telemetry, window_seconds=slo_window_seconds)
        #: Black-box flight recorder; triggers are counted always,
        #: bundles are written when ``flight_dir`` is set.
        self.flight = FlightRecorder(
            collect=self._flight_bundle,
            dump_dir=flight_dir,
            telemetry=self.telemetry,
            events=self.events,
        )
        #: Requests slower than this (wall seconds) emit a
        #: ``slow_request`` event with the full phase breakdown.
        self.slow_request_seconds = slow_request_seconds
        self.cache = cache if cache is not None else CacheStore()
        self.cache.bind_telemetry(self.telemetry, events=self.events)
        self.coherence = CoherenceTracker(self.cache)
        self.executor = executor if executor is not None else SimulatedExecutor()
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self.clock = clock
        self.processing = processing
        self.reverse_shadow = reverse_shadow
        self.push_outputs = push_outputs
        #: Layer 2: per-client sessions (validates reply_cache_size).
        self.sessions = SessionRegistry(
            reply_cache_size=reply_cache_size, telemetry=self.telemetry
        )
        self.reply_cache_size = reply_cache_size
        self.status = StatusTable()
        self.queue = JobQueue()
        self._pipeline = Pipeline.default()
        self._job_counter = 0
        self._requests: Dict[str, JobRequest] = {}
        self._plans: Dict[str, DeliveryPlan] = {}
        #: job id -> its QueuedJob, retained past the queue pop so a
        #: snapshot can persist (and recovery re-queue) a job that was
        #: RUNNING when the server died.
        self._job_meta: Dict[str, QueuedJob] = {}
        #: Per-queued-job input staging, independent of the cache: a file
        #: larger than the whole cache must still reach its job (§5.1's
        #: worst case is re-transfer, never failure).  Cleared on run.
        self._staged: Dict[str, Dict[str, bytes]] = {}
        self._finished: "OrderedDict[str, OutputBundle]" = OrderedDict()
        self._routed: Dict[str, str] = {}
        #: Guards queue/status/staging/bundle state shared between the
        #: request path and the job workers.  Re-entrant: the inline
        #: pipeline drains while a handler may already hold it.
        self._jobs_lock = threading.RLock()
        #: Counters for idempotent replays and resyncs served.
        self.resilience = ResilienceStats(registry=self.telemetry)
        self.telemetry.gauge(
            "jobs_queued", callback=lambda: float(len(self.queue))
        )
        self.telemetry.gauge(
            "jobs_total", callback=lambda: float(len(self.status))
        )
        self.telemetry.gauge(
            "jobs_retained_bundles",
            callback=lambda: float(len(self._finished)),
        )
        self.telemetry.gauge(
            "chunk_assemblies",
            callback=lambda: float(
                sum(
                    session.chunk_assemblies
                    for session in self.sessions.all_sessions()
                )
            ),
        )
        #: Optional hook fired as (client_id, key) whenever a change
        #: notification is deferred; a BackgroundPuller attaches here to
        #: realise §6.4's postponed retrieval.
        self.on_deferred_pull = None
        #: Layer 1: message-type routing table.
        self.router = RequestRouter()
        self._register_routes()
        #: Per-request structured traces (diagnostic, wall-clock only).
        self.traces = TraceLog(capacity=trace_capacity)
        #: Layer 3: the off-path job pipeline.  ``workers == 0`` drains
        #: inline on the request thread (virtual-time mode, the
        #: benchmark-faithful default); ``workers > 0`` runs a bounded
        #: thread pool so Submit returns before execution.
        self.pipeline = job_pipeline.build_pipeline(self, workers)
        #: True while :meth:`close` drains; new Hellos get SERVER-BUSY.
        self._closing = False
        #: Replication epoch fence.  0 = replication off (omitted from
        #: every wire message, keeping non-replicated runs
        #: byte-identical); >= 1 once a ReplicationManager attaches.
        #: Recovery may restore a persisted epoch before any manager
        #: exists, so the attribute lives here rather than on the
        #: manager.
        self.epoch = 0
        #: Optional :class:`~repro.replication.manager.ReplicationManager`;
        #: set by its constructor, never created here (the core server
        #: does not import the replication layer).
        self.replication = None
        #: Optional :class:`~repro.fleet.member.FleetMember`; set by its
        #: constructor the same way (the core server does not import the
        #: fleet layer).  None — fleet mode off, the default — keeps
        #: every reply byte-identical to a single-server build.
        self.fleet = None
        #: Optional durability layer: write-ahead journal + periodic
        #: snapshot + startup recovery.  ``None`` (the default) keeps the
        #: server purely in-memory and byte-identical to earlier builds.
        self.durability: Optional[DurabilityManager] = None
        if journal_dir is not None:
            self.durability = DurabilityManager(
                journal_dir,
                fsync=journal_fsync,
                snapshot_every=snapshot_every,
                telemetry=self.telemetry,
                events=self.events,
            )
            self.cache.on_drop = self._journal_cache_drop
            self.durability.recover(self)
            # Jobs that were queued (or RUNNING) at the crash are ready
            # again; their effects never left the server, so re-running
            # them is the exactly-once-visible outcome.
            self.pipeline.kick()

    def _register_routes(self) -> None:
        self.router.register(Hello, self._on_hello)
        self.router.register(Notify, self._on_notify)
        self.router.register(Update, self._on_update)
        self.router.register(BatchNotify, self._on_batch_notify)
        self.router.register(BatchUpdate, self._on_batch_update)
        self.router.register(UpdateChunk, self._on_update_chunk)
        self.router.register(Submit, self._on_submit)
        self.router.register(StatusQuery, self._on_status)
        self.router.register(FetchOutput, self._on_fetch)
        self.router.register(CancelJob, self._on_cancel)
        self.router.register(Resync, self._on_resync)
        self.router.register(Bye, self._on_bye)
        self.router.register(StatsQuery, self._on_stats)
        self.router.register(HealthQuery, self._on_health)
        self.router.register(ShardTransfer, self._on_shard_transfer)
        self.router.register(Probe, self._on_probe)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """Operational snapshot for monitoring and the admin examples."""
        states: Dict[str, int] = {}
        for record in self.status.all_records():
            states[record.state.value] = states.get(record.state.value, 0) + 1
        info = {
            "component": "server",
            "name": self.name,
            "clients": sorted(self._clients),
            "sessions": len(self.sessions),
            "cache": self.cache.describe(),
            "jobs": {
                "queued": len(self.queue),
                "total": len(self.status),
                "by_state": states,
            },
            "pipeline": self.pipeline.describe(),
            "retained_bundles": len(self._finished),
            "stale_files": len(self.coherence.stale_keys()),
            "resilience": {
                "reply_cache_entries": self.sessions.reply_cache_entries(),
                "reply_cache_capacity": self.reply_cache_size,
                **{
                    name: value
                    for name, value in self.resilience.as_dict().items()
                    if value
                },
            },
            "traces": self.traces.summary(),
            "telemetry": {
                "series": len(self.telemetry.collect()),
                "events": self.events.describe(),
                "spans": self.spans.describe(),
                "flight": self.flight.describe(),
                "slow_request_seconds": self.slow_request_seconds,
            },
        }
        if self.durability is not None:
            info["durability"] = self.durability.describe()
        if self.replication is not None:
            info["replication"] = self.replication.describe()
        if self.fleet is not None:
            info["fleet"] = self.fleet.describe()
        return info

    def close(self, drain_seconds: float = 5.0) -> None:
        """Graceful shutdown.

        Refuses new Hellos with SERVER-BUSY, lets in-flight jobs finish
        (bounded by ``drain_seconds``), stops the workers, then writes a
        final snapshot and releases the journal so the next start
        recovers instantly from the snapshot alone.
        """
        self._closing = True
        self.pipeline.drain(timeout=drain_seconds)
        self.pipeline.close()
        if self.durability is not None:
            self.durability.close(self)
        self.events.close()
        self.spans.close()

    # ------------------------------------------------------------------
    # compatibility views over the session registry
    # ------------------------------------------------------------------
    @property
    def ledger(self) -> Dict[str, TrafficAccount]:
        """client id -> traffic account (live objects, snapshot dict)."""
        return self.sessions.accounts()

    @property
    def _clients(self) -> Dict[str, str]:
        return self.sessions.greeted_clients()

    @_clients.setter
    def _clients(self, value: Dict[str, str]) -> None:
        # State restore assigns the greeted-client map wholesale.
        for session in self.sessions.all_sessions():
            if session.client_id not in value and session.greeted:
                session.farewell()
        for client_id, domain in value.items():
            self.sessions.ensure(client_id).greet(domain)

    @property
    def _callbacks(self) -> Dict[str, RequestChannel]:
        return self.sessions.callbacks()

    def register_callback(self, client_id: str, channel: RequestChannel) -> None:
        """Attach a server->client channel for pushes (sim / live modes)."""
        self.sessions.ensure(client_id).callback = channel

    def callback_for(self, client_id: str) -> Optional[RequestChannel]:
        session = self.sessions.get(client_id)
        return session.callback if session is not None else None

    # ------------------------------------------------------------------
    # time helpers
    # ------------------------------------------------------------------
    def now(self) -> float:
        return self.clock.now() if self.clock is not None else 0.0

    def _charge(self, seconds: float) -> None:
        """Consume virtual CPU time when running under a simulated clock."""
        if self.clock is not None and seconds > 0:
            self.clock.advance(seconds)

    def _patch_cost(self, result_bytes: int) -> float:
        if self.processing is None:
            return 0.0
        return self.processing.patch_seconds(result_bytes)

    def _diff_cost(self, file_bytes: int) -> float:
        if self.processing is None:
            return 0.0
        return self.processing.diff_seconds(file_bytes)

    # ------------------------------------------------------------------
    # the wire entry point
    # ------------------------------------------------------------------
    def handle(self, payload: bytes) -> bytes:
        """Decode, route, encode — every request lands here.

        Enveloped requests (the resilience layer wraps everything in an
        :class:`Envelope` carrying a request id) are deduplicated: a
        retry of a request whose reply was lost is answered verbatim
        from the session's bounded reply cache, so side effects happen
        exactly once even though delivery is at-least-once.

        Handling is serialised *per session*: the same client's
        requests (and retries) run one at a time, different clients run
        concurrently under the threaded TCP transport.
        """
        trace = RequestTrace(request_id=self.traces.next_request_id())
        # The span scope wraps the trace scope: on exit (trace finished
        # by recording_trace) it emits the request root span — parented
        # on the envelope's ``psp`` once decode reveals it — plus one
        # child span per phase.  Layers below add their own children
        # (journal append, replication ship) via ``child_span``.
        with self.spans.trace_scope(trace, "server.request"):
            with recording_trace(self.traces, trace):
                reply = self._handle_traced(payload, trace)
            if self.replication is not None:
                # Ship every journal record this request appended to the
                # standby BEFORE the reply escapes: an acknowledged effect
                # exists on the standby by the time the client sees the
                # ack.  Inside the span scope, so the per-record ship
                # spans parent on this request.
                self.replication.pump()
        self._observe_request(trace)
        if self.durability is not None:
            # After every lock is released: the snapshot capture takes
            # server locks itself (server locks before the journal lock,
            # never the reverse).
            self.durability.maybe_snapshot(self)
        return reply

    def _handle_traced(self, payload: bytes, trace: RequestTrace) -> bytes:
        with trace.phase("decode"):
            try:
                message = decode_message(payload)
            except ShadowError as exc:
                trace.outcome = "error:bad-message"
                return ErrorReply(
                    code="bad-message", message=str(exc)
                ).to_wire()
            rid = ""
            epo = 0
            if isinstance(message, Envelope):
                try:
                    inner = message.open()
                except ShadowError as exc:
                    trace.outcome = "error:bad-message"
                    return ErrorReply(
                        code="bad-message", message=str(exc)
                    ).to_wire()
                rid = message.rid
                epo = message.epo
                trace.trace_id = message.tid
                trace.parent_span = message.psp
                message = inner
        if rid:
            trace.request_id = rid
        trace.kind = message.TYPE
        if self.replication is not None:
            # Epoch fence + standby refusal.  Deliberately *before* the
            # reply cache: a refusal is about this server's role right
            # now, and must never be replayed after a promotion.
            refusal = self.replication.admit(message, epo)
            if refusal is not None:
                trace.outcome = f"error:{refusal.code}"
                return refusal.to_wire()
        if self.fleet is not None:
            # Ring-range fence.  Like the replication admit: the verdict
            # is about this shard's range right now, so it runs before
            # the reply cache and is never replayed from it.
            redirect = self.fleet.admit(message)
            if redirect is not None:
                trace.outcome = "error:wrong-shard"
                return redirect.to_wire()
        client_id = getattr(message, "client_id", "")
        trace.client_id = client_id
        session = self.sessions.ensure(client_id)
        wait_begin = time.perf_counter()
        with session.lock:
            wait = time.perf_counter() - wait_begin
            trace.mark("session-wait", wait)
            self.telemetry.histogram("session_lock_wait_seconds").observe(wait)
            return self._handle_locked(session, message, payload, rid, trace)

    def _observe_request(self, trace: RequestTrace) -> None:
        """Fold a finished request trace into the metric series."""
        kind = trace.kind or "unknown"
        outcome = trace.outcome.split(":", 1)[0]  # ok / replayed / error
        self.telemetry.counter(
            "requests_total", {"type": kind, "outcome": outcome}
        ).inc()
        self.telemetry.histogram(
            "request_seconds", {"type": kind}
        ).observe(trace.total_seconds)
        if trace.total_seconds >= self.slow_request_seconds:
            self.events.emit("slow_request", **trace.as_dict())
            self.flight.trigger(
                "slow-request",
                request_id=trace.request_id,
                kind=kind,
                seconds=round(trace.total_seconds, 6),
            )
        if outcome == "error":
            self.flight.trigger(
                "handler-error",
                request_id=trace.request_id,
                kind=kind,
                outcome=trace.outcome,
            )

    def _handle_locked(
        self,
        session: ClientSession,
        message: Message,
        payload: bytes,
        rid: str,
        trace: RequestTrace,
    ) -> bytes:
        """The per-session critical section: replay check, dispatch,
        reply caching and accounting."""
        if rid and self.reply_cache_size:
            cached = session.cached_reply(rid)
            if cached is not None:
                self.resilience.duplicate_replies_served += 1
                trace.outcome = "replayed"
                self._account(session, len(payload), len(cached))
                return cached
        with trace.phase("dispatch"):
            reply = self.router.respond(message)
        with trace.phase("encode"):
            encoded = reply.to_wire()
        if isinstance(reply, ErrorReply):
            trace.outcome = f"error:{reply.code}"
        if rid and self.reply_cache_size:
            session.store_reply(rid, encoded)
            # Reply journaled after the handler's own records: a crash
            # here loses only the reply, and the client's retry is
            # answered from the recovered reply cache — exactly once.
            self._journal(
                "reply",
                client=session.client_id,
                rid=rid,
                data=pack_bytes(encoded),
            )
        self._account(session, len(payload), len(encoded))
        return encoded

    def _account(
        self, session: ClientSession, bytes_in: int, bytes_out: int
    ) -> None:
        # Anonymous payloads (no client_id) are not billable to anyone.
        if session.client_id:
            session.charge(bytes_in, bytes_out)

    # ------------------------------------------------------------------
    # session management
    # ------------------------------------------------------------------
    def _journal(self, kind: str, **fields: Any) -> None:
        """Append one durability record (no-op when journaling is off)."""
        if self.durability is not None:
            self.durability.record(kind, **fields)

    def _journal_cache_drop(self, key: str) -> None:
        """Cache ``on_drop`` hook: evictions and invalidations must be
        journaled, or recovery would resurrect entries the running
        server had dropped — and reconcile would then call a repaired
        file ``divergent`` where the truth is ``missing``."""
        self._journal("cache-drop", key=key)

    def _on_hello(self, message: Hello) -> Message:
        if self._closing:
            return ErrorReply(
                code="server-busy",
                message=f"{self.name} is shutting down; try again later",
            )
        if message.protocol_version != protocol.PROTOCOL_VERSION:
            return ErrorReply(
                code="version",
                message=(
                    f"server speaks protocol {protocol.PROTOCOL_VERSION}, "
                    f"client spoke {message.protocol_version}"
                ),
            )
        if not message.client_id:
            return ErrorReply(code="bad-client", message="empty client id")
        # A Hello starts a new session incarnation; replies cached for an
        # earlier life of this client can only ever be wrong answers now.
        self.sessions.ensure(message.client_id).greet(message.domain)
        self._journal(
            "hello", client=message.client_id, domain=message.domain
        )
        # A replicated server teaches the client its epoch so envelopes
        # can fence a resurrected old primary; epoch 0 is omitted from
        # the wire entirely (non-replicated replies are byte-identical).
        # A fleet member likewise teaches the shard map; an empty map
        # (fleet off) is omitted the same way.
        return Ok(
            detail=f"welcome to {self.name}",
            epoch=self.epoch,
            shard_map=(
                self.fleet.map_payload() if self.fleet is not None else {}
            ),
        )

    def _on_bye(self, message: Bye) -> Message:
        session = self.sessions.get(message.client_id)
        if session is not None:
            session.farewell()
        self._journal("bye", client=message.client_id)
        with self._jobs_lock:
            for job in self.queue.remove_for_owner(message.client_id):
                self._staged.pop(job.job_id, None)
                record = self.status.get(job.job_id)
                if not record.state.terminal:
                    record.transition(
                        JobState.CANCELLED, self.now(), "client left"
                    )
                    self._journal(
                        "job-cancel",
                        job_id=job.job_id,
                        ts=self.now(),
                        detail="client left",
                    )
        return Ok(detail="bye")

    def _require_client(self, client_id: str) -> None:
        if not self.sessions.greeted(client_id):
            raise ProtocolError(f"client {client_id!r} has not said hello")

    # ------------------------------------------------------------------
    # telemetry over the wire
    # ------------------------------------------------------------------
    def _on_stats(self, message: StatsQuery) -> Message:
        """Answer a :class:`StatsQuery` with the telemetry snapshot.

        Read-only and idempotent; deliberately allowed *without* a
        Hello so ``shadow stats host:port`` can inspect any reachable
        server without joining it as a client.
        """
        snapshot: Dict[str, Any] = {
            "server": self.name,
            "registry": self.telemetry.snapshot(),
            "events_log": self.events.describe(),
            "traces_log": self.traces.summary(),
            "spans_log": self.spans.describe(),
            "health": self.slo.evaluate(),
            "flight": self.flight.describe(),
        }
        if self.replication is not None:
            snapshot["replication"] = self.replication.describe()
        if self.fleet is not None:
            snapshot["fleet"] = self.fleet.describe()
        if message.events > 0:
            snapshot["events"] = self.events.snapshot()[-message.events:]
        if message.traces > 0:
            snapshot["traces"] = [
                trace.as_dict()
                for trace in self.traces.snapshot()[-message.traces:]
            ]
        if message.spans > 0:
            snapshot["spans"] = [
                span.as_dict()
                for span in self.spans.snapshot()[-message.spans:]
            ]
        if message.sections:
            wanted = set(message.sections) | {"server"}
            snapshot = {
                key: value
                for key, value in snapshot.items()
                if key in wanted
            }
        return StatsReply(snapshot=snapshot)

    def _on_health(self, message: HealthQuery) -> Message:
        """Answer a :class:`HealthQuery` with the SLO verdict.

        Allowed without a Hello, and — unlike everything else — answered
        even by fenced and standby servers (see
        :meth:`~repro.replication.manager.ReplicationManager.admit`): a
        probe must reach a server precisely when it refuses real work.
        """
        report = self.slo.evaluate()
        return HealthReply(status=report["status"], report=report)

    def _on_probe(self, message: Probe) -> Message:
        """Answer a supervisor's liveness :class:`Probe`.

        Answered by every role — solo, primary, standby, fenced — so a
        supervisor can tell a dead shard from one that is alive but
        refusing traffic (the difference between "promote the standby"
        and "do nothing").
        """
        repl = self.replication
        role = repl.role if repl is not None else "solo"
        fenced = bool(repl is not None and repl.fenced)
        fleet = self.fleet
        return ProbeReply(
            shard=self.name,
            epoch=self.epoch,
            role=role,
            serving=not self._closing and role != "standby" and not fenced,
            map_epoch=(
                fleet.shard_map.epoch if fleet is not None else 0
            ),
            nonce=message.nonce,
            shard_map=fleet.map_payload() if fleet is not None else {},
        )

    def _flight_bundle(self) -> Dict[str, Any]:
        """Freeze the diagnostic rings into one postmortem body."""
        bundle: Dict[str, Any] = {
            "server": self.name,
            "health": self.slo.evaluate(),
            "registry": self.telemetry.snapshot(),
            "events": self.events.snapshot(),
            "spans": [span.as_dict() for span in self.spans.snapshot()],
            "traces": [
                trace.as_dict() for trace in self.traces.snapshot()
            ],
        }
        if self.replication is not None:
            bundle["replication"] = self.replication.describe()
        if self.durability is not None:
            bundle["durability"] = self.durability.describe()
        return bundle

    # ------------------------------------------------------------------
    # coherence: notifications and updates
    # ------------------------------------------------------------------
    def _notify_decision(self, message: Notify) -> Tuple[str, int]:
        """The demand-driven verdict for one change notification.

        Returns ``(verdict, base_version)`` where the verdict is
        ``"pull-now"`` (send the update immediately), ``"deferred"``
        (the server will pull later) or ``"current"`` (the cache already
        holds this content).  Shared verbatim by the single
        :class:`Notify` path and the batch path, so batching can never
        change a pull decision.
        """
        if message.version < 1:
            raise ProtocolError(f"bad version {message.version}")
        self.coherence.note_notification(message.key, message.version)
        cached = self.cache.peek_entry(message.key)
        if cached is not None and cached.version >= message.version:
            # Version numbers are per-client lineage; only a matching
            # content checksum proves the cache is actually current (two
            # clients sharing one NFS file both start at version 1).
            if not message.checksum or cached.checksum == message.checksum:
                return "current", cached.version
            base = 0  # divergent content: a delta base cannot be trusted
        else:
            base = cached.version if cached is not None else 0
        if self.scheduler.should_pull_on_notify(self.now()):
            return "pull-now", base
        if self.on_deferred_pull is not None:
            self.on_deferred_pull(message.client_id, message.key)
        return "deferred", base

    def _on_notify(self, message: Notify) -> Message:
        self._require_client(message.client_id)
        verdict, base = self._notify_decision(message)
        return NotifyReply(pull_now=(verdict == "pull-now"), base_version=base)

    # ------------------------------------------------------------------
    # batched and chunked transfers
    # ------------------------------------------------------------------

    #: Batch-size histogram buckets (items per frame).
    _BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

    def _observe_batch(self, kind: str, items: int) -> None:
        self.telemetry.histogram(
            "batch_items", {"type": kind}, buckets=self._BATCH_BUCKETS
        ).observe(float(items))

    def _on_batch_notify(self, message: BatchNotify) -> Message:
        self._require_client(message.client_id)
        self._observe_batch("notify", len(message.items))
        verdicts: List[Dict[str, Any]] = []
        for entry in message.items:
            if len(entry) < 2:
                raise ProtocolError("batch-notify items need (key, version)")
            key = str(entry[0])
            notify = Notify(
                client_id=message.client_id,
                key=key,
                version=int(entry[1]),
                size=int(entry[2]) if len(entry) > 2 else 0,
                checksum=str(entry[3]) if len(entry) > 3 else "",
            )
            try:
                verdict, base = self._notify_decision(notify)
            except ShadowError as exc:
                error = self.router.translate(exc)
                verdicts.append(
                    {
                        "key": key,
                        "verdict": "error",
                        "error": error.code,
                        "message": error.message,
                    }
                )
            else:
                verdicts.append(
                    {"key": key, "verdict": verdict, "base_version": base}
                )
        return BatchReply(items=tuple(verdicts))

    def _on_batch_update(self, message: BatchUpdate) -> Message:
        self._require_client(message.client_id)
        self._observe_batch("update", len(message.items))
        acks: List[Dict[str, Any]] = []
        for item in message.items:
            key = str(item.get("key", ""))
            try:
                reply = self._on_update(
                    _update_from_item(message.client_id, item)
                )
            except ShadowError as exc:
                # One bad item (say a delta whose base was evicted) must
                # not void its neighbours' stores: the verdict carries
                # the same code an ErrorReply would, per item.
                error = self.router.translate(exc)
                acks.append(
                    {"key": key, "error": error.code, "message": error.message}
                )
            else:
                assert isinstance(reply, UpdateAck)
                acks.append(
                    {
                        "key": reply.key,
                        "stored_version": reply.stored_version,
                        "cached": reply.cached,
                    }
                )
        return BatchReply(items=tuple(acks))

    def _on_update_chunk(self, message: UpdateChunk) -> Message:
        self._require_client(message.client_id)
        session = self.sessions.ensure(message.client_id)
        payload = session.chunk_add(
            message.key,
            message.version,
            message.seq,
            message.total,
            message.size,
            message.data,
        )
        self.telemetry.counter("chunk_frames_total").inc()
        if payload is None:
            return ChunkAck(
                key=message.key,
                version=message.version,
                seq=message.seq,
                received=session.chunks_received(message.key, message.version),
            )
        self.telemetry.counter("chunk_payloads_total").inc()
        return self._on_update(
            Update(
                client_id=message.client_id,
                key=message.key,
                version=message.version,
                base_version=message.base_version,
                is_delta=message.is_delta,
                compressed=message.compressed,
                payload=payload,
            )
        )

    def _on_resync(self, message: Resync) -> Message:
        """Reconciliation after a reconnect (§5.1 made explicit).

        For each ``(key, latest_version, checksum)`` the client reports,
        ask the cache to judge its copy (:meth:`CacheStore.reconcile`)
        and translate the verdict into a repair request: a stale entry
        asks for a delta from the cached version (the last common point
        this server can patch from); a missing or divergent one asks for
        full content — the best-effort worst case.
        """
        self._require_client(message.client_id)
        needs: List[Tuple[str, int]] = []
        current: List[str] = []
        for entry in message.entries:
            key, version = entry[0], entry[1]
            checksum = entry[2] if len(entry) > 2 else ""
            if version < 1:
                raise ProtocolError(f"bad version {version} for {key}")
            self.coherence.note_notification(key, version)
            verdict = self.cache.reconcile(key, version, checksum)
            if verdict == self.cache.CURRENT:
                current.append(key)
            elif verdict == self.cache.STALE:
                needs.append((key, self.cache.peek_version(key) or 0))
            else:  # missing or divergent
                needs.append((key, 0))
        self.resilience.resyncs += 1
        return ResyncReply(needs=tuple(needs), current=tuple(current))

    def _on_update(self, message: Update) -> Message:
        self._require_client(message.client_id)
        payload = message.payload
        if message.compressed:
            payload = self._pipeline.decompress(payload)
        if message.is_delta:
            if message.base_version is None:
                raise ProtocolError("delta update without base_version")
            try:
                entry = self.cache.get(message.key, self.now())
            except CacheMissError:
                # Evicted since the pull decision: best-effort fallback.
                raise PatchConflictError(
                    f"no cached base for {message.key}; send full"
                ) from None
            if entry.version != message.base_version:
                raise PatchConflictError(
                    f"cached version {entry.version} != update base "
                    f"{message.base_version}; send full"
                )
            with traced_phase("patch"):
                delta = decode_delta(payload)
                content = delta.apply(entry.content)
            self._charge(self._patch_cost(len(content)))
        else:
            content = payload
        self.coherence.note_notification(message.key, message.version)
        with traced_phase("cache-write"):
            stored = self.cache.put(
                message.key, content, message.version, self.now()
            )
        with traced_phase("stage"):
            job_pipeline.stage_for_waiting_jobs(
                self, message.key, message.version, content
            )
        # Journaled whether or not the cache admitted it: replay must
        # re-run the same admission decision AND re-pin the content for
        # any job that was waiting on it.
        self._journal(
            "cache-put",
            key=message.key,
            version=message.version,
            content=pack_bytes(content),
            ts=self.now(),
        )
        self.pipeline.kick()
        return UpdateAck(
            key=message.key,
            stored_version=message.version,
            cached=stored is not None,
        )

    def _on_shard_transfer(self, message: ShardTransfer) -> Message:
        """Accept one cache entry migrating in from a fleet peer.

        A server-to-server admin path (no Hello required, like stats):
        the sending shard lost ownership of ``key`` in a reshard and
        this shard gained it.  The entry is cached and **journaled as an
        ordinary cache-put**, so a replacement shard recovering from
        this journal replays migrated entries exactly like
        client-pushed ones — zero new replay code in the durability
        layer.
        """
        if not message.key:
            raise ProtocolError("shard-transfer without a key")
        if message.version < 1:
            raise ProtocolError(
                f"bad version {message.version} for {message.key}"
            )
        if message.checksum and message.checksum != content_checksum(
            message.content
        ):
            raise ProtocolError(
                f"shard-transfer content for {message.key} does not match "
                f"its checksum — refusing to cache a corrupt entry"
            )
        self.telemetry.counter("fleet_transfers_in_total").inc()
        if self.fleet is not None:
            self.fleet.transfers_in += 1
        self.coherence.note_notification(message.key, message.version)
        with traced_phase("cache-write"):
            stored = self.cache.put(
                message.key, message.content, message.version, self.now()
            )
        with traced_phase("stage"):
            job_pipeline.stage_for_waiting_jobs(
                self, message.key, message.version, message.content
            )
        self._journal(
            "cache-put",
            key=message.key,
            version=message.version,
            content=pack_bytes(message.content),
            ts=self.now(),
        )
        self.pipeline.kick()
        return UpdateAck(
            key=message.key,
            stored_version=message.version,
            cached=stored is not None,
        )

    # ------------------------------------------------------------------
    # submission and execution
    # ------------------------------------------------------------------
    def _on_submit(self, message: Submit) -> Message:
        self._require_client(message.client_id)
        command_file = JobCommandFile.parse(message.script)
        request = JobRequest(
            command_file=command_file,
            data_files=tuple(entry[0] for entry in message.files),
            output_file=message.output_file,
            error_file=message.error_file,
            deliver_to_host=message.deliver_to_host,
        )
        file_versions: Dict[str, int] = {}
        file_checksums: Dict[str, str] = {}
        for entry in message.files:
            key, version = entry[0], entry[1]
            file_versions[key] = version
            # Checksums are an optional third element (older clients and
            # hand-built messages may omit them; identity checks then skip).
            file_checksums[key] = entry[2] if len(entry) > 2 else ""
        _stage_names(file_versions)  # validate basename collisions early
        for key, version in file_versions.items():
            if version < 1:
                raise ProtocolError(f"bad version {version} for {key}")
            self.coherence.note_notification(key, version)
        request_trace = active_trace()
        trace_id = request_trace.trace_id if request_trace is not None else ""
        # The submit request's root span parents the async job-execution
        # span, joining the off-path execution into the same span tree.
        parent_span = current_span_id()
        with traced_phase("enqueue"), self._jobs_lock:
            self._job_counter += 1
            job_id = f"{self.name}-job-{self._job_counter:05d}"
            job = QueuedJob(
                job_id=job_id,
                owner=message.client_id,
                request=request,
                file_keys=tuple(file_versions),
                file_versions=file_versions,
                file_checksums=file_checksums,
                enqueued_at=self.now(),
                priority=message.priority,
                trace_id=trace_id,
                parent_span=parent_span,
            )
            record = JobRecord(
                job_id=job_id, owner=message.client_id, submitted_at=self.now()
            )
            self.status.add(record)
            self._requests[job_id] = request
            self._job_meta[job_id] = job
            self._plans[job_id] = DeliveryPlan.for_request(
                job_id, request, client_host=message.client_id
            )
            needs = job_pipeline.missing_files(self, job)
            self.queue.push(job)
            if needs:
                record.transition(
                    JobState.WAITING_FILES,
                    self.now(),
                    f"waiting for {len(needs)} files",
                )
            # Inside the jobs lock: a worker claims (and completes) jobs
            # under this same lock, so the submit record always precedes
            # the job's job-done record in the journal.
            self._journal(
                "job-submit",
                job_id=job_id,
                owner=message.client_id,
                submitted_at=record.submitted_at,
                request=request_dict(request),
                file_versions=file_versions,
                file_checksums=file_checksums,
                priority=message.priority,
                enqueued_at=job.enqueued_at,
                trace_id=trace_id,
                parent_span=parent_span,
            )
        self.events.emit(
            "job_enqueued",
            job_id=job_id,
            owner=message.client_id,
            trace_id=trace_id,
            missing_files=len(needs),
        )
        # Off the request path: inline workers drain now (virtual-time
        # mode), thread workers are merely woken — Submit has already
        # got its answer.
        self.pipeline.kick()
        return SubmitReply(job_id=job_id, needs=tuple(needs))

    # ------------------------------------------------------------------
    # status and output
    # ------------------------------------------------------------------
    def _on_status(self, message: StatusQuery) -> Message:
        self._require_client(message.client_id)
        if message.job_id is not None:
            records = [self.status.get(message.job_id)]
        else:
            records = [
                record
                for record in self.status.pending()
                if record.owner == message.client_id
            ]
        return StatusReply(
            records=tuple(_record_dict(record) for record in records)
        )

    def _on_cancel(self, message: CancelJob) -> Message:
        self._require_client(message.client_id)
        with self._jobs_lock:
            record = self.status.get(message.job_id)
            if record.owner != message.client_id:
                raise JobError(
                    f"{message.job_id} belongs to {record.owner}, "
                    f"not {message.client_id}"
                )
            if record.state.terminal:
                return Ok(detail=f"already {record.state.value}")
            if message.job_id in self.queue:
                self.queue.pop(message.job_id)
            self._staged.pop(message.job_id, None)
            # A RUNNING job (claimed by a worker) may also be cancelled;
            # the worker notices the terminal state and drops the output.
            record.transition(
                JobState.CANCELLED, self.now(), "cancelled by owner"
            )
            self._journal(
                "job-cancel",
                job_id=message.job_id,
                ts=self.now(),
                detail="cancelled by owner",
            )
        return Ok(detail="cancelled")

    def _on_fetch(self, message: FetchOutput) -> Message:
        self._require_client(message.client_id)
        with self._jobs_lock:
            record = self.status.get(message.job_id)
            if not record.state.terminal:
                return OutputReply(
                    job_id=message.job_id, ready=False, state=record.state.value
                )
            if message.job_id in self._routed:
                return OutputReply(
                    job_id=message.job_id,
                    ready=True,
                    state=f"routed:{self._routed[message.job_id]}",
                    exit_code=record.exit_code or 0,
                )
            bundle = self._finished.get(message.job_id)
        if bundle is None:
            if record.state is JobState.CANCELLED:
                return OutputReply(
                    job_id=message.job_id, ready=True, state="cancelled"
                )
            raise JobError(f"output of {message.job_id} no longer retained")
        streams = self._encode_streams(bundle, message.have_output_of)
        return OutputReply(
            job_id=message.job_id,
            ready=True,
            state=record.state.value,
            exit_code=bundle.exit_code,
            cpu_seconds=bundle.cpu_seconds,
            streams=streams,
        )

    def _encode_streams(
        self, bundle: OutputBundle, have_output_of: str
    ) -> Dict[str, Dict[str, Any]]:
        """Full streams, or reverse-shadow deltas against a prior bundle."""
        with self._jobs_lock:
            base = (
                self._finished.get(have_output_of)
                if self.reverse_shadow and have_output_of
                else None
            )
        if base is None:
            return _full_streams(bundle)
        streams: Dict[str, Dict[str, Any]] = {}
        for name, data in _stream_items(bundle):
            base_data = dict(_stream_items(base)).get(name)
            if base_data is None:
                streams[name] = {"kind": "full", "data": data}
                continue
            self._charge(self._diff_cost(len(base_data)))
            delta = tichy.diff(base_data, data)
            if worthwhile(delta, len(data)):
                streams[name] = {
                    "kind": "delta",
                    "base_job": have_output_of,
                    "data": delta.encode(),
                }
            else:
                streams[name] = {"kind": "full", "data": data}
        return streams


#: Fields a batch-update item may carry; anything else is a protocol
#: violation (catching typos early beats silently ignoring them).
_BATCH_UPDATE_FIELDS = frozenset(
    {"key", "version", "base_version", "is_delta", "compressed", "payload"}
)


def _update_from_item(client_id: str, item: Dict[str, Any]) -> Update:
    """Materialise one batch-update item as a plain :class:`Update`."""
    unknown = set(item) - _BATCH_UPDATE_FIELDS
    if unknown:
        raise ProtocolError(
            f"unknown batch-update fields {sorted(unknown)}"
        )
    if "key" not in item or "version" not in item:
        raise ProtocolError("batch-update items need key and version")
    base = item.get("base_version")
    return Update(
        client_id=client_id,
        key=str(item["key"]),
        version=int(item["version"]),
        base_version=int(base) if base is not None else None,
        is_delta=bool(item.get("is_delta", False)),
        compressed=bool(item.get("compressed", False)),
        payload=bytes(item.get("payload", b"")),
    )


def _stage_names(file_versions: Dict[str, int]) -> Dict[str, str]:
    """Map global keys to the basenames the job script uses.

    Raises if two staged files collide on basename — the script could not
    tell them apart.
    """
    names: Dict[str, str] = {}
    seen: Dict[str, str] = {}
    for key in file_versions:
        basename = key.rsplit("/", 1)[-1]
        if basename in seen:
            raise JobCommandError(
                f"staged files {seen[basename]!r} and {key!r} both "
                f"named {basename!r}"
            )
        seen[basename] = key
        names[key] = basename
    return names


def _stream_items(bundle: OutputBundle) -> List[Tuple[str, bytes]]:
    items = [("stdout", bundle.stdout), ("stderr", bundle.stderr)]
    items.extend(
        (f"file:{name}", content)
        for name, content in sorted(bundle.output_files.items())
    )
    return items


def _full_streams(bundle: OutputBundle) -> Dict[str, Dict[str, Any]]:
    return {
        name: {"kind": "full", "data": data}
        for name, data in _stream_items(bundle)
    }


def _record_dict(record: JobRecord) -> Dict[str, Any]:
    return {
        "job_id": record.job_id,
        "owner": record.owner,
        "state": record.state.value,
        "submitted_at": record.submitted_at,
        "started_at": record.started_at if record.started_at is not None else -1.0,
        "finished_at": (
            record.finished_at if record.finished_at is not None else -1.0
        ),
        "exit_code": record.exit_code if record.exit_code is not None else -1,
        "detail": record.detail,
    }
