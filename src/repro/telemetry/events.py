"""Structured event log: JSON-lines records behind a pluggable sink.

Counters say *how much*; events say *what happened*.  The runtime emits
a small set of structured records — slow requests past a configurable
threshold, job lifecycle transitions, cache evictions, circuit-breaker
transitions — through an :class:`EventLog` whose sink is pluggable:

* the default :class:`MemorySink` keeps a bounded ring for tests,
  ``describe()`` blocks and the ``stats`` CLI;
* :class:`JsonLinesSink` writes one JSON object per line to any text
  stream (a file, stderr, a pipe to a shipper);
* any callable taking the event dict can be a sink (fan-out, filtering).

Events carry a monotonically increasing ``seq`` and a wall-clock ``ts``
(diagnostic only — the simulated clock is never read), the event
``kind``, and the emitter's fields.  A sink that raises is disabled for
the rest of the process instead of taking the request path down.
"""

from __future__ import annotations

import io
import json
import os
import sys
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, TextIO

Sink = Callable[[Dict[str, Any]], None]


class MemorySink:
    """Bounded in-memory ring of events (the default sink)."""

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._events: Deque[Dict[str, Any]] = deque(maxlen=capacity or None)
        self._lock = threading.Lock()

    def __call__(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(event)

    def snapshot(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class JsonLinesSink:
    """Write each event as one JSON line to a text stream.

    Every event is flushed through the stdio buffer as it is written;
    ``fsync=True`` additionally forces the file to stable storage on
    :meth:`close` and :meth:`rotate`, so a log shipped after a crash is
    complete up to the last record the process survived to write.
    """

    def __init__(self, stream: TextIO, fsync: bool = False) -> None:
        self.stream = stream
        self.fsync = fsync
        self._lock = threading.Lock()

    def __call__(self, event: Dict[str, Any]) -> None:
        line = json.dumps(event, sort_keys=True, default=str)
        with self._lock:
            self.stream.write(line + "\n")
            self.stream.flush()

    def _sync_locked(self, stream: TextIO) -> None:
        stream.flush()
        if self.fsync:
            try:
                os.fsync(stream.fileno())
            except (OSError, ValueError, io.UnsupportedOperation):
                pass  # stream has no file descriptor (StringIO, pipes)

    def rotate(self, stream: TextIO) -> TextIO:
        """Swap to a fresh stream (log rotation), flushing — and when
        ``fsync`` is set, syncing — the old one first.

        Returns the previous stream; the caller closes it if it owns it.
        """
        with self._lock:
            old = self.stream
            self._sync_locked(old)
            self.stream = stream
        return old

    def close(self) -> None:
        """Flush (and optionally fsync) pending lines, then close the
        stream — unless it is the process's stdout/stderr, which belong
        to the caller."""
        with self._lock:
            try:
                self._sync_locked(self.stream)
            except ValueError:
                return  # stream already closed
            if self.stream in (sys.stdout, sys.stderr):
                return
            try:
                self.stream.close()
            except OSError:
                pass


class EventLog:
    """Thread-safe event emitter over one or more sinks."""

    def __init__(self, sink: Optional[Sink] = None, capacity: int = 512) -> None:
        #: The memory ring is always attached so recent events stay
        #: queryable over the wire even when a file sink is plugged in.
        self.memory = MemorySink(capacity)
        self._sinks: List[Sink] = [self.memory]
        if sink is not None:
            self._sinks.append(sink)
        self._lock = threading.Lock()
        self._seq = 0
        self.emitted = 0
        self.dropped_sinks = 0
        self._drop_counter: Optional[Any] = None

    def add_sink(self, sink: Sink) -> None:
        with self._lock:
            self._sinks.append(sink)

    def bind_telemetry(self, registry: Any) -> None:
        """Mirror sink drops into ``telemetry_sink_drops_total`` so a dead
        JSONL sink is visible on a dashboard, not just in ``describe()``."""
        counter = registry.counter("telemetry_sink_drops_total")
        with self._lock:
            self._drop_counter = counter
            backlog = self.dropped_sinks
        if backlog:
            counter.inc(backlog)

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Record one event; returns the record that was sunk."""
        with self._lock:
            self._seq += 1
            event: Dict[str, Any] = {
                "seq": self._seq,
                "ts": time.time(),
                "kind": kind,
            }
            event.update(fields)
            self.emitted += 1
            sinks = list(self._sinks)
        for sink in sinks:
            try:
                sink(event)
            except Exception:
                # A broken sink must never break the request path; drop
                # it and keep serving.
                with self._lock:
                    dropped = sink in self._sinks and sink is not self.memory
                    if dropped:
                        self._sinks.remove(sink)
                        self.dropped_sinks += 1
                    counter = self._drop_counter
                if dropped and counter is not None:
                    counter.inc()
        return event

    def snapshot(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """Recent events from the memory ring, optionally by kind."""
        events = self.memory.snapshot()
        if kind is None:
            return events
        return [event for event in events if event["kind"] == kind]

    def __len__(self) -> int:
        return len(self.memory)

    def close(self) -> None:
        """Flush and close every sink that supports it.

        The memory ring has nothing to flush and stays queryable, so
        ``describe()`` and late ``stats`` reads keep working after close.
        """
        with self._lock:
            sinks = list(self._sinks)
        for sink in sinks:
            closer = getattr(sink, "close", None)
            if callable(closer):
                try:
                    closer()
                except Exception:
                    pass  # closing is best effort, mirrors emit()

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            sinks = len(self._sinks)
        return {
            "emitted": self.emitted,
            "retained": len(self.memory),
            "sinks": sinks,
            "dropped_sinks": self.dropped_sinks,
        }
