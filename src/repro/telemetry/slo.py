"""Rolling-window SLO evaluation over the metrics registry.

The registry's counters and histograms are cumulative since boot; an
operator cares about *now*.  The :class:`SloEngine` samples the relevant
series on a cadence (the serve loop's tick), keeps a bounded rolling
window of those samples, and evaluates each configured
:class:`Objective` over the **delta** between the newest and oldest
in-window sample — so a burst of errors an hour ago stops mattering once
it slides out of the window.

Each objective yields a *burn rate*: how fast the error budget is being
consumed (1.0 = consuming exactly the budget; availability follows the
standard error-ratio / budget formulation, latency and gauge objectives
use observed / target).  Burn below 1 is ``ok``, at or above 1 is
``degraded``, and at or above the objective's ``critical_burn`` is
``critical``.  The engine's overall status is the worst objective's,
which maps onto ``shadow health`` exit codes 0/1/2.

The default objectives cover the four signals the ISSUE names:
availability (error ratio of ``requests_total``), p99 of
``request_seconds``, replication lag (``replication_lag_records``
gauge), and journal fsync stalls (p99 of ``journal_append_seconds``).

Everything here is wall-clock and read-only over the registry — nothing
touches the simulated clock or the wire format.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.telemetry.registry import MetricsRegistry

#: Status names in increasing severity; index doubles as the exit code.
STATUSES = ("ok", "degraded", "critical")


def status_exit_code(status: str) -> int:
    """Map an SLO status onto the ``shadow health`` exit code (0/1/2)."""
    try:
        return STATUSES.index(status)
    except ValueError:
        return 2


@dataclass(frozen=True)
class Objective:
    """One service-level objective.

    ``kind`` selects the evaluator:

    * ``availability`` — error ratio of counter ``series`` (labels with
      an ``outcome`` starting with ``error`` count against the budget);
      ``target`` is the availability goal (e.g. 0.999).
    * ``latency`` — p99 of histogram ``series`` over the window;
      ``target`` is the latency bound in seconds.
    * ``gauge`` — current value of gauge ``series``; ``target`` is the
      maximum healthy value.
    """

    name: str
    kind: str
    series: str
    target: float
    critical_burn: float = 2.0


DEFAULT_OBJECTIVES: Tuple[Objective, ...] = (
    Objective("availability", "availability", "requests_total", 0.999,
              critical_burn=10.0),
    Objective("request_p99", "latency", "request_seconds", 0.25),
    Objective("replication_lag", "gauge", "replication_lag_records", 256.0),
    Objective("journal_stall_p99", "latency", "journal_append_seconds", 0.25),
)


@dataclass
class _Sample:
    ts: float
    counters: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    #: series -> (bucket le -> cumulative count)
    histograms: Dict[str, Dict[float, int]] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)


class SloEngine:
    """Sample the registry on a cadence; evaluate objectives over deltas."""

    def __init__(
        self,
        registry: MetricsRegistry,
        objectives: Tuple[Objective, ...] = DEFAULT_OBJECTIVES,
        window_seconds: float = 300.0,
        max_samples: int = 600,
    ) -> None:
        self.registry = registry
        self.objectives = tuple(objectives)
        self.window_seconds = window_seconds
        self._samples: Deque[_Sample] = deque(maxlen=max_samples)
        self._lock = threading.Lock()
        # The boot baseline: deltas are well-defined from the first
        # real sample onward even before the window fills.
        self._samples.append(self._take(time.time()))

    # -- sampling ---------------------------------------------------------

    def _take(self, now: float) -> _Sample:
        snapshot = self.registry.snapshot()
        sample = _Sample(ts=now)
        counter_names = {
            obj.series for obj in self.objectives
            if obj.kind == "availability"
        }
        histogram_names = {
            obj.series for obj in self.objectives if obj.kind == "latency"
        }
        gauge_names = {
            obj.series for obj in self.objectives if obj.kind == "gauge"
        }
        for entry in snapshot["counters"]:
            if entry["name"] not in counter_names:
                continue
            total, errors = sample.counters.get(entry["name"], (0.0, 0.0))
            total += entry["value"]
            if str(entry["labels"].get("outcome", "")).startswith("error"):
                errors += entry["value"]
            sample.counters[entry["name"]] = (total, errors)
        for entry in snapshot["histograms"]:
            if entry["name"] not in histogram_names:
                continue
            buckets = sample.histograms.setdefault(entry["name"], {})
            for le, count in entry["buckets"]:
                bound = float(le)
                buckets[bound] = buckets.get(bound, 0) + count
        for entry in snapshot["gauges"]:
            if entry["name"] not in gauge_names:
                continue
            sample.gauges[entry["name"]] = (
                sample.gauges.get(entry["name"], 0.0) + entry["value"]
            )
        return sample

    def sample(self, now: Optional[float] = None) -> None:
        """Record one rolling-window sample (call on the serve tick)."""
        now = time.time() if now is None else now
        sample = self._take(now)
        with self._lock:
            self._samples.append(sample)
            cutoff = now - self.window_seconds
            # Keep one sample older than the cutoff as the delta base.
            while len(self._samples) > 2 and self._samples[1].ts <= cutoff:
                self._samples.popleft()

    # -- evaluation -------------------------------------------------------

    @staticmethod
    def _delta_p99(
        newest: Dict[float, int], oldest: Dict[float, int]
    ) -> Tuple[float, int]:
        """(p99 seconds, observation count) from cumulative bucket deltas."""
        deltas = [
            (le, max(0, count - oldest.get(le, 0)))
            for le, count in sorted(newest.items())
        ]
        total = deltas[-1][1] if deltas else 0
        if total <= 0:
            return 0.0, 0
        rank = 0.99 * total
        for le, cumulative in deltas:
            if cumulative >= rank:
                return (le if le != float("inf") else deltas[-1][0]), total
        return deltas[-1][0], total

    def _evaluate_one(
        self, objective: Objective, newest: _Sample, oldest: _Sample
    ) -> Dict[str, Any]:
        value = 0.0
        burn = 0.0
        if objective.kind == "availability":
            new_total, new_errors = newest.counters.get(
                objective.series, (0.0, 0.0))
            old_total, old_errors = oldest.counters.get(
                objective.series, (0.0, 0.0))
            total = max(0.0, new_total - old_total)
            errors = max(0.0, new_errors - old_errors)
            if total > 0:
                error_ratio = errors / total
                value = 1.0 - error_ratio
                budget = max(1e-9, 1.0 - objective.target)
                burn = error_ratio / budget
            else:
                value = 1.0
        elif objective.kind == "latency":
            p99, observed = self._delta_p99(
                newest.histograms.get(objective.series, {}),
                oldest.histograms.get(objective.series, {}),
            )
            value = p99
            if observed:
                burn = p99 / max(1e-9, objective.target)
        elif objective.kind == "gauge":
            value = newest.gauges.get(objective.series, 0.0)
            burn = value / max(1e-9, objective.target)
        else:
            raise ValueError(f"unknown objective kind {objective.kind!r}")
        if burn < 1.0:
            status = "ok"
        elif burn < objective.critical_burn:
            status = "degraded"
        else:
            status = "critical"
        return {
            "name": objective.name,
            "kind": objective.kind,
            "series": objective.series,
            "status": status,
            "value": round(value, 6),
            "target": objective.target,
            "burn_rate": round(burn, 4),
        }

    def evaluate(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Evaluate every objective over the current window.

        Takes a fresh sample first, so an on-demand probe (HealthQuery)
        never judges stale data.
        """
        now = time.time() if now is None else now
        self.sample(now)
        with self._lock:
            oldest = self._samples[0]
            newest = self._samples[-1]
            retained = len(self._samples)
        results: List[Dict[str, Any]] = [
            self._evaluate_one(objective, newest, oldest)
            for objective in self.objectives
        ]
        worst = max(
            (STATUSES.index(entry["status"]) for entry in results), default=0
        )
        return {
            "status": STATUSES[worst],
            "window_seconds": self.window_seconds,
            "samples": retained,
            "span_seconds": round(newest.ts - oldest.ts, 3),
            "objectives": results,
        }
