"""Job lifecycle and the status table both sides keep (§6.2).

"The submit command returns a job identifier that can be used subsequently
to query the status of the job. ... The client maintains the information
on the status of all the jobs."

States move strictly forward::

    QUEUED -> WAITING_FILES -> READY -> RUNNING -> COMPLETED
                                             \\-> FAILED
    (any non-terminal state) -> CANCELLED
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import JobError, UnknownJobError


class JobState(enum.Enum):
    """Where a job is in its life."""

    QUEUED = "queued"
    WAITING_FILES = "waiting-files"
    READY = "ready"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED)


_ALLOWED = {
    JobState.QUEUED: {JobState.WAITING_FILES, JobState.READY, JobState.CANCELLED},
    JobState.WAITING_FILES: {JobState.READY, JobState.CANCELLED},
    JobState.READY: {JobState.RUNNING, JobState.CANCELLED},
    JobState.RUNNING: {JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED},
    JobState.COMPLETED: set(),
    JobState.FAILED: set(),
    JobState.CANCELLED: set(),
}


@dataclass
class JobRecord:
    """The status both client and server keep for one job."""

    job_id: str
    owner: str
    state: JobState = JobState.QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    exit_code: Optional[int] = None
    detail: str = ""

    def transition(
        self, state: JobState, timestamp: float = 0.0, detail: str = ""
    ) -> None:
        """Move to ``state``, enforcing the lifecycle graph."""
        if state not in _ALLOWED[self.state]:
            raise JobError(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {state.value}"
            )
        self.state = state
        if detail:
            self.detail = detail
        if state is JobState.RUNNING:
            self.started_at = timestamp
        if state.terminal:
            self.finished_at = timestamp

    @property
    def elapsed(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class StatusTable:
    """All job records known to one party, newest last."""

    def __init__(self) -> None:
        self._records: Dict[str, JobRecord] = {}

    def add(self, record: JobRecord) -> None:
        if record.job_id in self._records:
            raise JobError(f"duplicate job id {record.job_id!r}")
        self._records[record.job_id] = record

    def get(self, job_id: str) -> JobRecord:
        try:
            return self._records[job_id]
        except KeyError:
            raise UnknownJobError(job_id) from None

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._records

    def all_records(self) -> List[JobRecord]:
        return list(self._records.values())

    def pending(self) -> List[JobRecord]:
        """Jobs not yet in a terminal state (the status command default)."""
        return [
            record
            for record in self._records.values()
            if not record.state.terminal
        ]

    def for_owner(self, owner: str) -> List[JobRecord]:
        return [
            record for record in self._records.values() if record.owner == owner
        ]

    def __len__(self) -> int:
        return len(self._records)
