"""Deterministic discrete-event network simulator.

Models the 1987 long-haul environment the paper measured: slow serial lines
(Cypress at 9600 baud), congested ARPANET trunks, and Sun-3-era CPU costs.
All experiment timing in this repository is *virtual*: reproducible on any
machine, derived only from byte counts and these models.
"""

from repro.simnet.clock import Clock, SimulatedClock, WallClock
from repro.simnet.events import EventHandle, EventScheduler
from repro.simnet.link import (
    ARPANET_56K,
    CLEAR_56K,
    CYPRESS_9600,
    FREE_PROCESSING,
    LAN_10M,
    PRESET_LINKS,
    SUN3_PROCESSING,
    Link,
    LinkStats,
    ProcessingModel,
)
from repro.simnet.topology import Host, Network
from repro.simnet.traffic import (
    BurstyTraffic,
    CongestedLink,
    ConstantTraffic,
    DiurnalTraffic,
    TrafficModel,
)

__all__ = [
    "ARPANET_56K",
    "CLEAR_56K",
    "CYPRESS_9600",
    "FREE_PROCESSING",
    "LAN_10M",
    "PRESET_LINKS",
    "SUN3_PROCESSING",
    "BurstyTraffic",
    "Clock",
    "CongestedLink",
    "ConstantTraffic",
    "DiurnalTraffic",
    "EventHandle",
    "EventScheduler",
    "Host",
    "Link",
    "LinkStats",
    "Network",
    "ProcessingModel",
    "SimulatedClock",
    "TrafficModel",
    "WallClock",
]
