"""Edit generators: modify an exact percentage of a file (§8.1).

"We modified the data file by a different amount every time (the amount
of text modified varied from 1% of the text to 80% of the text) before
resubmitting the same file."  Figure 3's footnote pins the metric:
"percentage (in bytes) of text that was modified".

:func:`modify_percent` rewrites whole lines until the rewritten lines'
bytes reach the requested share of the file — the natural unit of change
under a text editor, and the unit line diffs charge for.  Variants
produce clustered edits, insertions and deletions for robustness and
ablation studies.  All generators are seeded and deterministic.
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import ShadowError

#: The modification percentages the paper's figures sweep.
FIGURE_PERCENTAGES = (1, 5, 10, 20, 40, 60, 80)

#: The subset Figure 3's speedup table reports.
TABLE_PERCENTAGES = (1, 5, 10, 20)


def _split_keep_sizes(data: bytes) -> List[bytes]:
    lines = data.split(b"\n")
    # Re-attach the newline to each line except a trailing empty segment.
    return [line + b"\n" for line in lines[:-1]] + (
        [lines[-1]] if lines[-1] else []
    )


def _rewrite(line: bytes, rng: random.Random) -> bytes:
    """A same-length rewrite of ``line`` (an edited line, byte-for-byte)."""
    body_len = max(0, len(line) - 1)
    alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789 "
    body = bytes(rng.choice(alphabet) for _ in range(body_len))
    return body + (b"\n" if line.endswith(b"\n") else b"")


def modify_percent(
    data: bytes, percent: float, seed: int = 0, clustered: bool = False
) -> bytes:
    """Rewrite lines totalling ``percent`` % of ``data``'s bytes.

    ``clustered`` rewrites one contiguous region (a focused editing
    session); the default scatters edits uniformly (typo fixes across the
    file).  The returned file has the same size and line structure, so
    sweeps isolate *how much* changed from *what kind* of change.
    """
    if not 0 <= percent <= 100:
        raise ShadowError(f"percent must be in [0, 100], got {percent}")
    if percent == 0 or not data:
        return data
    lines = _split_keep_sizes(data)
    if not lines:
        return data
    budget = len(data) * percent / 100.0
    rng = random.Random(str((seed, int(percent * 100), len(data))))
    order = list(range(len(lines)))
    if clustered:
        start = rng.randrange(len(lines))
        order = [(start + offset) % len(lines) for offset in range(len(lines))]
    else:
        rng.shuffle(order)
    edited = list(lines)
    spent = 0.0
    for index in order:
        if spent >= budget:
            break
        edited[index] = _rewrite(lines[index], rng)
        spent += len(lines[index])
    return b"".join(edited)


def insert_percent(data: bytes, percent: float, seed: int = 0) -> bytes:
    """Grow the file by ``percent`` % with new lines at a random spot."""
    if not 0 <= percent <= 100:
        raise ShadowError(f"percent must be in [0, 100], got {percent}")
    if percent == 0 or not data:
        return data
    lines = _split_keep_sizes(data)
    rng = random.Random(str((seed, int(percent * 100), len(data), "insert")))
    budget = len(data) * percent / 100.0
    new_lines: List[bytes] = []
    grown = 0.0
    while grown < budget:
        line = _rewrite(b"x" * 63 + b"\n", rng)
        new_lines.append(line)
        grown += len(line)
    position = rng.randrange(len(lines) + 1)
    return b"".join(lines[:position] + new_lines + lines[position:])


def delete_percent(data: bytes, percent: float, seed: int = 0) -> bytes:
    """Shrink the file by ``percent`` % by deleting scattered lines."""
    if not 0 <= percent <= 100:
        raise ShadowError(f"percent must be in [0, 100], got {percent}")
    if percent == 0 or not data:
        return data
    lines = _split_keep_sizes(data)
    rng = random.Random(str((seed, int(percent * 100), len(data), "delete")))
    order = list(range(len(lines)))
    rng.shuffle(order)
    budget = len(data) * percent / 100.0
    doomed = set()
    spent = 0.0
    for index in order:
        if spent >= budget or len(doomed) >= len(lines) - 1:
            break
        doomed.add(index)
        spent += len(lines[index])
    return b"".join(
        line for index, line in enumerate(lines) if index not in doomed
    )


def measured_change_percent(base: bytes, edited: bytes) -> float:
    """Rough %-changed metric: bytes of differing lines over file size."""
    if not base:
        return 100.0 if edited else 0.0
    base_lines = set(base.split(b"\n"))
    changed = sum(
        len(line) + 1
        for line in edited.split(b"\n")
        if line not in base_lines
    )
    return 100.0 * changed / len(base)
