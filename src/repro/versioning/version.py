"""File versions and per-file version chains (§6.3.2).

"On the client side, the system associates a version number with each
file.  Thus, every time a file is edited, a new version is created and
identified separately from the previous versions."

A :class:`VersionChain` is the ordered history of one file.  Version
numbers start at 1 and increase by one per edit; retention trims from the
oldest end only, so the retained set is always a contiguous suffix of the
history — the invariant the server relies on when naming a base version
it holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.diffing.model import checksum as content_checksum
from repro.errors import VersioningError, VersionNotFoundError


@dataclass(frozen=True)
class FileVersion:
    """An immutable snapshot of one file at one version number."""

    name: str
    number: int
    content: bytes
    checksum: str
    created_at: float = 0.0

    @property
    def size(self) -> int:
        return len(self.content)

    def __repr__(self) -> str:
        return (
            f"FileVersion(name={self.name!r}, number={self.number}, "
            f"size={self.size}, checksum={self.checksum!r})"
        )


class VersionChain:
    """The retained history of one file, oldest first."""

    def __init__(self, name: str, max_retained: Optional[int] = None) -> None:
        if max_retained is not None and max_retained < 1:
            raise VersioningError(
                f"max_retained must be >= 1, got {max_retained}"
            )
        self.name = name
        self.max_retained = max_retained
        self._versions: Dict[int, FileVersion] = {}
        self._next_number = 1

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def add(self, content: bytes, timestamp: float = 0.0) -> FileVersion:
        """Record a new version; enforces the retention limit."""
        version = FileVersion(
            name=self.name,
            number=self._next_number,
            content=content,
            checksum=content_checksum(content),
            created_at=timestamp,
        )
        self._versions[version.number] = version
        self._next_number += 1
        self._enforce_limit()
        return version

    def _enforce_limit(self) -> None:
        if self.max_retained is None:
            return
        while len(self._versions) > self.max_retained:
            del self._versions[min(self._versions)]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def latest_number(self) -> int:
        """Highest version number ever created (0 if none)."""
        return self._next_number - 1

    @property
    def retained_numbers(self) -> List[int]:
        return sorted(self._versions)

    def retains(self, number: int) -> bool:
        return number in self._versions

    def get(self, number: int) -> FileVersion:
        try:
            return self._versions[number]
        except KeyError:
            raise VersionNotFoundError(self.name, number) from None

    def latest(self) -> FileVersion:
        if not self._versions:
            raise VersionNotFoundError(self.name, self.latest_number)
        return self._versions[max(self._versions)]

    @property
    def retained_bytes(self) -> int:
        return sum(version.size for version in self._versions.values())

    # ------------------------------------------------------------------
    # pruning
    # ------------------------------------------------------------------
    def prune_older_than(self, number: int) -> int:
        """Drop every version strictly below ``number``.

        The paper prunes "after the server acknowledges the receipt of a
        later version": once the server holds version N, no delta will
        ever be requested from a base below N.  Returns how many versions
        were dropped.  The latest version is never dropped.
        """
        keep_floor = min(number, self.latest_number)
        doomed = [n for n in self._versions if n < keep_floor]
        for n in doomed:
            del self._versions[n]
        return len(doomed)

    def __len__(self) -> int:
        return len(self._versions)

    def __repr__(self) -> str:
        return (
            f"VersionChain(name={self.name!r}, retained={self.retained_numbers},"
            f" latest={self.latest_number})"
        )
