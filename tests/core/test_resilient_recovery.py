"""A fault at *every* protocol step of a full cycle recovers transparently.

Satellite of the resilience work: run one notify -> pull -> submit ->
fetch cycle and, for each request position it takes on the wire, rerun
it with a fault armed at exactly that step — both a dropped request and
the nastier lost-reply-after-processing.  Every variant must converge to
the same end state as the clean run, with no duplicate job submissions.
"""

import functools

import pytest

from repro.core.client import ShadowClient
from repro.core.server import ShadowServer
from repro.core.workspace import MappingWorkspace
from repro.resilience.policy import RetryPolicy
from repro.resilience.session import ResilienceConfig
from repro.transport.base import LoopbackChannel
from repro.transport.flaky import FailNextChannel
from repro.workload.files import make_text_file

PATH = "/data/input.dat"

#: Fast, jitter-free retries keep the matrix quick and deterministic.
FAST = ResilienceConfig(
    retry=RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0)
)


def build():
    server = ShadowServer()
    client = ShadowClient("alice@ws", MappingWorkspace(), resilience=FAST)
    channel = FailNextChannel(LoopbackChannel(server.handle))
    client.connect(server.name, channel)
    return server, client, channel


def run_cycle(client):
    """One user cycle: edit (notify + pull), submit, poll, fetch."""
    content = make_text_file(4_000, seed=140)
    client.write_file(PATH, content)
    job_id = client.submit("wc input.dat", [PATH])
    client.job_status(job_id)
    bundle = client.fetch_output(job_id)
    return content, job_id, bundle


@functools.lru_cache(maxsize=1)
def clean_run():
    """The fault-free reference: request count and end state."""
    server, client, channel = build()
    start = channel.requests_seen
    content, job_id, bundle = run_cycle(client)
    key = str(client.workspace.resolve(PATH))
    return {
        "steps": channel.requests_seen - start,
        "content": content,
        "stdout": bundle.stdout,
        "cached": server.cache.get(key).content,
    }


#: Upper bound on cycle length; positions beyond the real count skip.
MAX_STEPS = 12


def test_reference_cycle_shape():
    reference = clean_run()
    # notify, update, submit, status, fetch at minimum.
    assert 5 <= reference["steps"] <= MAX_STEPS
    assert reference["cached"] == reference["content"]


@pytest.mark.parametrize("lose_reply", [False, True], ids=["drop", "lost-reply"])
@pytest.mark.parametrize("fault_at", range(1, MAX_STEPS + 1))
def test_fault_at_every_step_recovers(fault_at, lose_reply):
    reference = clean_run()
    if fault_at > reference["steps"]:
        pytest.skip(f"cycle is only {reference['steps']} requests long")
    server, client, channel = build()
    channel.schedule_failure(fault_at, lose_reply=lose_reply)
    content, job_id, bundle = run_cycle(client)

    assert channel.faults_injected == 1  # the fault really fired
    assert client.resilience_stats.retries >= 1  # and was retried

    # End state is indistinguishable from the clean run.
    key = str(client.workspace.resolve(PATH))
    assert server.cache.get(key).content == content == reference["content"]
    assert bundle is not None and bundle.stdout == reference["stdout"]

    # Exactly one job exists anywhere, even when the submit reply was
    # lost after the server processed it (idempotent retry, no double
    # submission).
    assert len(server.status) == 1
    assert len(client.status) == 1
    if lose_reply:
        assert server.resilience.duplicate_replies_served >= 1
