"""Tests for the simulated virtual file system."""

import pytest

from repro.errors import (
    FileNotFoundInVfsError,
    NamingError,
    SymlinkLoopError,
)
from repro.naming.vfs import VirtualFileSystem, join_path, split_path


@pytest.fixture
def vfs():
    fs = VirtualFileSystem()
    fs.mkdir("/home/user")
    fs.write_file("/home/user/notes.txt", b"hello")
    return fs


class TestPaths:
    def test_split_requires_absolute(self):
        with pytest.raises(NamingError):
            split_path("relative/path")

    def test_split_normalises_dots_and_doubles(self):
        assert split_path("/a//b/./c") == ["a", "b", "c"]

    def test_join_inverts_split(self):
        assert join_path(split_path("/x/y/z")) == "/x/y/z"

    def test_root_splits_empty(self):
        assert split_path("/") == []


class TestBasicOperations:
    def test_read_back(self, vfs):
        assert vfs.read_file("/home/user/notes.txt") == b"hello"

    def test_overwrite(self, vfs):
        vfs.write_file("/home/user/notes.txt", b"new")
        assert vfs.read_file("/home/user/notes.txt") == b"new"

    def test_write_creates_parents(self, vfs):
        vfs.write_file("/deep/nested/dir/file", b"x")
        assert vfs.read_file("/deep/nested/dir/file") == b"x"

    def test_missing_file_raises(self, vfs):
        with pytest.raises(FileNotFoundInVfsError):
            vfs.read_file("/no/such/file")

    def test_read_directory_raises(self, vfs):
        with pytest.raises(NamingError):
            vfs.read_file("/home/user")

    def test_write_over_directory_raises(self, vfs):
        with pytest.raises(NamingError):
            vfs.write_file("/home/user", b"nope")

    def test_exists(self, vfs):
        assert vfs.exists("/home/user/notes.txt")
        assert not vfs.exists("/ghost")

    def test_list_directory(self, vfs):
        vfs.write_file("/home/user/a", b"")
        assert vfs.list_directory("/home/user") == ["a", "notes.txt"]

    def test_list_root(self, vfs):
        assert "home" in vfs.list_directory("/")

    def test_remove_file(self, vfs):
        vfs.remove("/home/user/notes.txt")
        assert not vfs.exists("/home/user/notes.txt")

    def test_remove_nonempty_directory_raises(self, vfs):
        with pytest.raises(NamingError):
            vfs.remove("/home/user")

    def test_mkdir_idempotent(self, vfs):
        vfs.mkdir("/home/user")
        assert vfs.exists("/home/user/notes.txt")


class TestHardLinks:
    def test_links_share_content(self, vfs):
        vfs.hard_link("/home/user/notes.txt", "/home/user/alias.txt")
        vfs.write_file("/home/user/notes.txt", b"updated")
        assert vfs.read_file("/home/user/alias.txt") == b"updated"

    def test_links_share_inode(self, vfs):
        vfs.hard_link("/home/user/notes.txt", "/alias")
        assert vfs.inode_of("/alias") == vfs.inode_of("/home/user/notes.txt")

    def test_distinct_files_distinct_inodes(self, vfs):
        vfs.write_file("/other", b"hello")
        assert vfs.inode_of("/other") != vfs.inode_of("/home/user/notes.txt")

    def test_link_to_directory_rejected(self, vfs):
        with pytest.raises(NamingError):
            vfs.hard_link("/home/user", "/dirlink")

    def test_link_over_existing_rejected(self, vfs):
        vfs.write_file("/target", b"")
        with pytest.raises(NamingError):
            vfs.hard_link("/home/user/notes.txt", "/target")


class TestSymlinks:
    def test_absolute_symlink_followed(self, vfs):
        vfs.symlink("/home/user", "/u")
        assert vfs.read_file("/u/notes.txt") == b"hello"

    def test_relative_symlink_followed(self, vfs):
        vfs.symlink("user/notes.txt", "/home/shortcut")
        assert vfs.read_file("/home/shortcut") == b"hello"

    def test_chained_symlinks(self, vfs):
        vfs.symlink("/home/user", "/a")
        vfs.symlink("/a", "/b")
        assert vfs.read_file("/b/notes.txt") == b"hello"

    def test_symlink_with_dotdot(self, vfs):
        vfs.mkdir("/home/other")
        vfs.symlink("../user/notes.txt", "/home/other/link")
        assert vfs.read_file("/home/other/link") == b"hello"

    def test_symlink_loop_detected(self, vfs):
        vfs.symlink("/loop2", "/loop1")
        vfs.symlink("/loop1", "/loop2")
        with pytest.raises(SymlinkLoopError):
            vfs.read_file("/loop1")

    def test_realpath_resolves_symlinks(self, vfs):
        vfs.symlink("/home/user", "/u")
        assert vfs.realpath("/u/notes.txt") == "/home/user/notes.txt"

    def test_realpath_collapses_dotdot(self, vfs):
        assert (
            vfs.realpath("/home/user/../user/notes.txt")
            == "/home/user/notes.txt"
        )

    def test_dangling_symlink_read_raises(self, vfs):
        vfs.symlink("/nowhere", "/dangling")
        with pytest.raises(FileNotFoundInVfsError):
            vfs.read_file("/dangling")

    def test_symlink_over_existing_rejected(self, vfs):
        with pytest.raises(NamingError):
            vfs.symlink("/x", "/home/user/notes.txt")


class TestBoundaries:
    def test_resolution_stops_at_boundary(self, vfs):
        vfs.mkdir("/mnt/remote")
        resolved, remainder = vfs.realpath_until(
            "/mnt/remote/sub/file", frozenset({"/mnt/remote"})
        )
        assert resolved == "/mnt/remote"
        assert remainder == ["sub", "file"]

    def test_boundary_reached_via_symlink(self, vfs):
        vfs.mkdir("/mnt/remote")
        vfs.symlink("/mnt/remote", "/shortcut")
        resolved, remainder = vfs.realpath_until(
            "/shortcut/data", frozenset({"/mnt/remote"})
        )
        assert resolved == "/mnt/remote"
        assert remainder == ["data"]

    def test_exact_boundary_path(self, vfs):
        vfs.mkdir("/mnt/remote")
        resolved, remainder = vfs.realpath_until(
            "/mnt/remote", frozenset({"/mnt/remote"})
        )
        assert resolved == "/mnt/remote"
        assert remainder == []

    def test_no_boundary_resolves_fully(self, vfs):
        resolved, remainder = vfs.realpath_until(
            "/home/user/notes.txt", frozenset()
        )
        assert resolved == "/home/user/notes.txt"
        assert remainder == []
