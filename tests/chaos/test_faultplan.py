"""FaultPlan DSL + link-level injection primitives.

Determinism is the whole product here: the same seed must build the
same plan on every run, and partitions / slow links / garbles must key
off the simulated clock, never the wall clock.
"""

import pytest

from repro.chaos import ChaosFleet, FaultPlan
from repro.chaos.inject import LinkFaults, garble_bytes
from repro.errors import ShadowError, TransportError
from repro.simnet.clock import SimulatedClock


class TestPlanDeterminism:
    def test_same_seed_same_plan(self):
        shards = ("alpha", "beta", "gamma")
        first = FaultPlan(seed=722)
        second = FaultPlan(seed=722)
        assert (
            first.random_crashes(shards, max_record=20, count=10)
            == second.random_crashes(shards, max_record=20, count=10)
        )
        assert first.describe() == second.describe()

    def test_different_seed_different_plan(self):
        shards = ("alpha", "beta", "gamma")
        first = FaultPlan(seed=722)
        second = FaultPlan(seed=723)
        assert (
            first.random_crashes(shards, max_record=50, count=10)
            != second.random_crashes(shards, max_record=50, count=10)
        )

    def test_fluent_builders_record_faults(self):
        plan = (
            FaultPlan()
            .crash_at_record("alpha", 3, after_ship=True)
            .disk_full("beta", 2)
            .partition("gamma", start=1.0, duration=5.0)
            .slow_link("alpha", start=0.0, duration=2.0, delay=0.25)
            .garble("beta", at_request=4)
        )
        kinds = [fault.kind for fault in plan.faults]
        assert kinds == [
            "crash-at-record",
            "disk-full",
            "partition",
            "slow-link",
            "garble",
        ]
        assert plan.for_shard("alpha")[0].after_ship is True

    def test_invalid_faults_refused(self):
        plan = FaultPlan()
        with pytest.raises(ShadowError):
            plan.crash_at_record("alpha", 0)
        with pytest.raises(ShadowError):
            plan.partition("alpha", start=0.0, duration=0.0)
        with pytest.raises(ShadowError):
            plan.garble("", at_request=1)


class TestLinkFaults:
    def test_partition_window_is_virtual_time(self):
        clock = SimulatedClock()
        links = LinkFaults(clock.now)
        links.add_partition("alpha", start=2.0, duration=3.0)
        links.check_partition("alpha")  # before the window: fine
        clock.advance(2.5)
        with pytest.raises(TransportError, match="partitioned"):
            links.check_partition("alpha")
        clock.advance(3.0)  # past the window
        links.check_partition("alpha")
        assert links.partitioned_requests == 1

    def test_slow_link_window(self):
        clock = SimulatedClock()
        links = LinkFaults(clock.now)
        links.add_slow_link("beta", start=0.0, duration=1.0, delay=0.2)
        assert links.link_delay("beta") == 0.2
        assert links.link_delay("alpha") == 0.0
        clock.advance(1.5)
        assert links.link_delay("beta") == 0.0

    def test_garble_hits_the_armed_ordinal_once(self):
        clock = SimulatedClock()
        links = LinkFaults(clock.now)
        links.arm_garble("alpha", at_request=2)
        assert links.maybe_garble("alpha", b"one") == b"one"
        assert links.maybe_garble("alpha", b"two") != b"two"
        assert links.maybe_garble("alpha", b"two") == b"two"
        assert links.garbled_replies == 1

    def test_garble_bytes_always_changes_the_frame(self):
        for frame in (b"", b"x", b"d2:_t5:hello" * 4):
            assert garble_bytes(frame) != frame


class TestApplyPlan:
    def test_partition_blocks_fleet_traffic(self, tmp_path):
        fleet = ChaosFleet(str(tmp_path), auto_heal=False)
        plan = FaultPlan().partition("alpha", start=0.0, duration=10.0)
        fleet.apply(plan)
        with pytest.raises(TransportError, match="partitioned"):
            fleet._dispatch("alpha", "alpha@p", b"le")
        # Other shards keep serving their ranges.
        fleet._dispatch("beta", "beta@p", b"le")
        fleet.close()

    def test_unknown_kind_refused(self, tmp_path):
        from repro.chaos import apply_fault
        from repro.chaos.plan import Fault

        fleet = ChaosFleet(str(tmp_path))
        bad = Fault(kind="meteor", shard="alpha")
        with pytest.raises(TransportError, match="unknown fault"):
            apply_fault(fleet, bad)
        fleet.close()
