"""Persistence for the shadow environment database (§6.3.1).

"The shadow environment is a database that contains the information
about the status of all the jobs submitted and customization information
for each user. ... Users should not be required to maintain or set up
any state information ... The system should establish and maintain any
such state information automatically without user intervention."

The command-line tools run one process per command, so the client's
state — retained file versions (needed to compute the *next* delta), the
job table, delivered results, and the customisation parameters — must
survive between invocations.  This module serialises all of it to a
single JSON document (binary content base64-encoded) and restores it.
"""

from __future__ import annotations

import base64
import json
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.client import ShadowClient, SubmittedJob
from repro.core.environment import ShadowEnvironment
from repro.core.server import ShadowServer
from repro.errors import ShadowError
from repro.jobs.output import OutputBundle
from repro.jobs.status import JobRecord, JobState
from repro.versioning.version import VersionChain

_FORMAT = "shadow-state-v1"


def _encode_bytes(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _decode_bytes(text: str) -> bytes:
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except Exception as exc:
        raise ShadowError(f"corrupt base64 in state file: {exc}") from exc


def snapshot_client(client: ShadowClient) -> Dict[str, Any]:
    """Capture everything a future process needs, as JSON-able data."""
    chains = {}
    for name in client.versions.names:
        chain = client.versions.chain(name)
        chains[name] = {
            "next_number": chain.latest_number + 1,
            "versions": [
                {
                    "number": version.number,
                    "content": _encode_bytes(version.content),
                    "created_at": version.created_at,
                }
                for version in (
                    chain.get(number) for number in chain.retained_numbers
                )
            ],
        }
    jobs = {
        job_id: {
            "job_id": job.job_id,
            "host": job.host,
            "signature": job.signature,
            "output_file": job.output_file,
            "error_file": job.error_file,
        }
        for job_id, job in client._jobs.items()
    }
    records = [
        {
            "job_id": record.job_id,
            "owner": record.owner,
            "state": record.state.value,
            "submitted_at": record.submitted_at,
            "started_at": record.started_at,
            "finished_at": record.finished_at,
            "exit_code": record.exit_code,
            "detail": record.detail,
        }
        for record in client.status.all_records()
    ]
    retained_outputs = {
        signature: {
            "job_id": job_id,
            "streams": {
                name: _encode_bytes(content)
                for name, content in streams.items()
            },
        }
        for signature, (job_id, streams) in client._retained_outputs.items()
    }
    return {
        "format": _FORMAT,
        "client_id": client.client_id,
        # The highest replication epoch this client has been told (0 =
        # replication never seen).  Persisted so a later process cannot
        # be lured back to a resurrected stale primary: its first
        # enveloped request carries the epoch and fences the old server.
        "epoch": client._epoch,
        "environment": client.environment.describe(),
        "version_chains": chains,
        "jobs": jobs,
        "status": records,
        "results": {
            name: _encode_bytes(content)
            for name, content in client.results.items()
        },
        "retained_outputs": retained_outputs,
    }


def restore_client(client: ShadowClient, state: Dict[str, Any]) -> None:
    """Load a snapshot into a freshly constructed client (in place)."""
    if state.get("format") != _FORMAT:
        raise ShadowError(
            f"unknown state format {state.get('format')!r}; expected {_FORMAT}"
        )
    if state.get("client_id") != client.client_id:
        raise ShadowError(
            f"state belongs to {state.get('client_id')!r}, "
            f"not {client.client_id!r}"
        )
    client._epoch = max(client._epoch, int(state.get("epoch", 0)))
    for name, chain_state in state.get("version_chains", {}).items():
        chain = VersionChain(name, max_retained=client.versions.max_retained)
        for version_state in chain_state["versions"]:
            # Recreate history gaps by advancing the counter first.
            chain._next_number = version_state["number"]
            chain.add(
                _decode_bytes(version_state["content"]),
                timestamp=version_state.get("created_at", 0.0),
            )
        chain._next_number = chain_state["next_number"]
        client.versions._chains[name] = chain
    for job_id, job_state in state.get("jobs", {}).items():
        client._jobs[job_id] = SubmittedJob(**job_state)
    for record_state in state.get("status", []):
        record = JobRecord(
            job_id=record_state["job_id"],
            owner=record_state["owner"],
            submitted_at=record_state["submitted_at"],
        )
        record.state = JobState(record_state["state"])
        record.started_at = record_state.get("started_at")
        record.finished_at = record_state.get("finished_at")
        record.exit_code = record_state.get("exit_code")
        record.detail = record_state.get("detail", "")
        client.status.add(record)
    for name, encoded in state.get("results", {}).items():
        client.results[name] = _decode_bytes(encoded)
    for signature, retained in state.get("retained_outputs", {}).items():
        client._retained_outputs[signature] = (
            retained["job_id"],
            {
                name: _decode_bytes(content)
                for name, content in retained["streams"].items()
            },
        )


def environment_from_state(state: Dict[str, Any]) -> ShadowEnvironment:
    """Rebuild the customisation parameters stored in a snapshot."""
    described = state.get("environment", {})
    known = {field.name for field in dataclass_fields(ShadowEnvironment)}
    return ShadowEnvironment(
        **{key: value for key, value in described.items() if key in known}
    )


_SERVER_FORMAT = "shadow-server-state-v1"


def snapshot_server(server: "ShadowServer") -> Dict[str, Any]:
    """Capture the server-side half of the shadow environment (§6.3.1).

    Persisting the cache across restarts preserves the whole point of
    shadow processing: clients resume sending deltas instead of refilling
    the cache with full transfers.
    """
    entries = []
    for key in sorted(
        entry.key for entry in server.cache._entries.values()
    ):
        entry = server.cache.peek_entry(key)
        assert entry is not None
        entries.append(
            {
                "key": entry.key,
                "version": entry.version,
                "content": _encode_bytes(entry.content),
                "created_at": entry.created_at,
                "last_access": entry.last_access,
                "access_count": entry.access_count,
            }
        )
    # Terminal jobs and their retained outputs survive a restart, so a
    # client can fetch results submitted before the server went down.
    # In-flight (queued / waiting) jobs are deliberately dropped: their
    # owners resubmit, exactly as with classic batch systems.
    terminal_records = [
        {
            "job_id": record.job_id,
            "owner": record.owner,
            "state": record.state.value,
            "submitted_at": record.submitted_at,
            "started_at": record.started_at,
            "finished_at": record.finished_at,
            "exit_code": record.exit_code,
            "detail": record.detail,
        }
        for record in server.status.all_records()
        if record.state.terminal
    ]
    bundles = {
        job_id: {
            "exit_code": bundle.exit_code,
            "stdout": _encode_bytes(bundle.stdout),
            "stderr": _encode_bytes(bundle.stderr),
            "cpu_seconds": bundle.cpu_seconds,
            "files": {
                name: _encode_bytes(content)
                for name, content in bundle.output_files.items()
            },
        }
        for job_id, bundle in server._finished.items()
    }
    return {
        "format": _SERVER_FORMAT,
        "name": server.name,
        "cache_entries": entries,
        "latest_known": dict(server.coherence._latest_known),
        "job_counter": server._job_counter,
        "jobs": terminal_records,
        "bundles": bundles,
        "routed": dict(server._routed),
    }


def restore_server(server: "ShadowServer", state: Dict[str, Any]) -> None:
    """Load a server snapshot into a freshly constructed server."""
    if state.get("format") != _SERVER_FORMAT:
        raise ShadowError(
            f"unknown server state format {state.get('format')!r}"
        )
    for entry_state in state.get("cache_entries", []):
        entry = server.cache.put(
            entry_state["key"],
            _decode_bytes(entry_state["content"]),
            version=entry_state["version"],
            timestamp=entry_state.get("created_at", 0.0),
        )
        if entry is not None:
            entry.last_access = entry_state.get("last_access", 0.0)
            entry.access_count = entry_state.get("access_count", 0)
    for key, version in state.get("latest_known", {}).items():
        server.coherence.note_notification(key, int(version))
    for record_state in state.get("jobs", []):
        record = JobRecord(
            job_id=record_state["job_id"],
            owner=record_state["owner"],
            submitted_at=record_state.get("submitted_at", 0.0),
        )
        record.state = JobState(record_state["state"])
        record.started_at = record_state.get("started_at")
        record.finished_at = record_state.get("finished_at")
        record.exit_code = record_state.get("exit_code")
        record.detail = record_state.get("detail", "")
        server.status.add(record)
    for job_id, bundle_state in state.get("bundles", {}).items():
        server._finished[job_id] = OutputBundle(
            job_id=job_id,
            exit_code=bundle_state["exit_code"],
            stdout=_decode_bytes(bundle_state["stdout"]),
            stderr=_decode_bytes(bundle_state["stderr"]),
            output_files={
                name: _decode_bytes(content)
                for name, content in bundle_state.get("files", {}).items()
            },
            cpu_seconds=bundle_state.get("cpu_seconds", 0.0),
        )
    server._routed.update(state.get("routed", {}))
    # Job ids keep increasing so old and new ids never collide.
    server._job_counter = int(state.get("job_counter", 0))


def save_server_state(server: "ShadowServer", path: Union[str, Path]) -> None:
    """Write the server's state file (atomic rename)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    scratch = target.with_suffix(target.suffix + ".tmp")
    scratch.write_text(json.dumps(snapshot_server(server), indent=1))
    scratch.replace(target)


def save_state(client: ShadowClient, path: Union[str, Path]) -> None:
    """Write the client's state file (created atomically via rename)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    scratch = target.with_suffix(target.suffix + ".tmp")
    scratch.write_text(json.dumps(snapshot_client(client), indent=1))
    scratch.replace(target)


def load_state(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Read a state file; None when it does not exist yet."""
    target = Path(path)
    if not target.exists():
        return None
    try:
        state = json.loads(target.read_text())
    except json.JSONDecodeError as exc:
        raise ShadowError(f"corrupt state file {target}: {exc}") from exc
    if not isinstance(state, dict):
        raise ShadowError(f"corrupt state file {target}: not an object")
    return state
