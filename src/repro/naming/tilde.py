"""The Tilde file naming scheme [CM86] (§5.3).

The paper surveys Tilde as an alternative naming discipline: "the
directory system [is organised] into a set of logically independent
directory trees called tilde trees.  Files within a tree are accessed
using the tree's tilde name and a pathname within that tree.  Each user
specifies his own tilde trees ...  An absolute name is associated with
each tilde tree and is unique across all machines."

This module implements that scheme over the simulated NFS environment so
the repository can demonstrate (as the paper argues) why a per-user tilde
name alone is *not* globally unique: two users may bind the same tilde
name to different trees, and one tree may carry different tilde names.
The combination ``absolute tree name + path within tree`` is what feeds
the global-name mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import NamingError
from repro.naming.vfs import join_path, split_path


@dataclass(frozen=True)
class TildeTree:
    """A logically independent directory tree.

    ``absolute_name`` is unique across all machines; ``host``/``root``
    give its current physical location, which "may migrate from a machine
    to another without altering the user's view".
    """

    absolute_name: str
    host: str
    root: str

    def __post_init__(self) -> None:
        if not self.absolute_name:
            raise NamingError("tilde tree requires an absolute name")
        if not self.root.startswith("/"):
            raise NamingError(f"tree root must be absolute: {self.root!r}")


class TildeNamespace:
    """All tilde trees known to an installation, plus per-user views."""

    def __init__(self) -> None:
        self._trees: Dict[str, TildeTree] = {}
        self._user_views: Dict[str, Dict[str, str]] = {}

    # ------------------------------------------------------------------
    # trees
    # ------------------------------------------------------------------
    def create_tree(self, absolute_name: str, host: str, root: str) -> TildeTree:
        if absolute_name in self._trees:
            raise NamingError(f"tilde tree {absolute_name!r} already exists")
        tree = TildeTree(absolute_name, host, root)
        self._trees[absolute_name] = tree
        return tree

    def tree(self, absolute_name: str) -> TildeTree:
        try:
            return self._trees[absolute_name]
        except KeyError:
            raise NamingError(f"unknown tilde tree {absolute_name!r}") from None

    def migrate_tree(self, absolute_name: str, host: str, root: str) -> TildeTree:
        """Move a tree to a new physical location, keeping its identity."""
        self.tree(absolute_name)  # must exist
        tree = TildeTree(absolute_name, host, root)
        self._trees[absolute_name] = tree
        return tree

    # ------------------------------------------------------------------
    # per-user views
    # ------------------------------------------------------------------
    def bind(self, user: str, tilde_name: str, absolute_name: str) -> None:
        """Give ``user`` a tilde name for a tree in their personal view."""
        self.tree(absolute_name)  # must exist
        if not tilde_name or "/" in tilde_name:
            raise NamingError(f"invalid tilde name {tilde_name!r}")
        self._user_views.setdefault(user, {})[tilde_name] = absolute_name

    def bindings(self, user: str) -> Dict[str, str]:
        return dict(self._user_views.get(user, {}))

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def parse(self, name: str) -> Tuple[str, List[str]]:
        """Split ``~tree/path/inside`` into (tilde name, components)."""
        if not name.startswith("~"):
            raise NamingError(f"not a tilde name: {name!r}")
        body = name[1:]
        tilde_name, _, rest = body.partition("/")
        if not tilde_name:
            raise NamingError(f"empty tilde tree name in {name!r}")
        components = [part for part in rest.split("/") if part not in ("", ".")]
        return tilde_name, components

    def resolve(self, user: str, name: str) -> Tuple[str, str]:
        """Resolve a user's ``~tree/path`` to ``(host, absolute path)``.

        The result feeds the NFS/global-name resolution chain; it is *not*
        itself globally unique until stamped with the tree's absolute name
        and domain (which the paper highlights as Tilde's subtlety).
        """
        tilde_name, components = self.parse(name)
        view = self._user_views.get(user, {})
        if tilde_name not in view:
            raise NamingError(
                f"user {user!r} has no tilde tree named ~{tilde_name}"
            )
        tree = self.tree(view[tilde_name])
        return tree.host, join_path(split_path(tree.root) + components)

    def canonical_name(self, user: str, name: str) -> str:
        """The location-independent name: ``absolute_tree:path-in-tree``."""
        tilde_name, components = self.parse(name)
        view = self._user_views.get(user, {})
        if tilde_name not in view:
            raise NamingError(
                f"user {user!r} has no tilde tree named ~{tilde_name}"
            )
        return f"{view[tilde_name]}:{join_path(components)}"
