"""Journal shipping: bootstrap, streaming, refusals, heartbeats.

These tests drive a :class:`~repro.replication.harness.ReplicatedPair`
over loopback channels and assert the stream contract directly: the
standby's live state tracks the primary record-for-record, wrong-role
and out-of-sequence traffic is refused (never silently applied), and
heartbeats keep the failure detector fed when no client writes flow.
"""

import pytest

from repro.core.client import ShadowClient
from repro.core.protocol import (
    ErrorReply,
    Hello,
    Ok,
    ReplicateAck,
    Heartbeat,
    ReplicateRecord,
    StatsQuery,
    StatsReply,
)
from repro.core.workspace import MappingWorkspace
from repro.replication import ReplicatedPair
from repro.resilience.policy import RetryPolicy
from repro.resilience.session import RawSession, ResilienceConfig
from repro.simnet.clock import SimulatedClock
from repro.transport.base import LoopbackChannel
from repro.workload.files import make_text_file

FAST = ResilienceConfig(
    retry=RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0)
)

PATHS = [f"/data/file{index}.dat" for index in range(4)]


def make_pair(tmp_path, **kwargs):
    return ReplicatedPair(
        str(tmp_path / "primary"), str(tmp_path / "standby"), **kwargs
    )


def connect(pair):
    client = ShadowClient("alice@ws", MappingWorkspace(), resilience=FAST)
    channel = pair.client_channel()
    client.connect("supercomputer", channel)
    return client, channel


def cache_version(server, client, path):
    key = str(client.workspace.resolve(path))
    entry = server.cache.peek_entry(key)
    return None if entry is None else entry.version


def test_stream_keeps_standby_state_current(tmp_path):
    pair = make_pair(tmp_path)
    client, _ = connect(pair)
    for index, path in enumerate(PATHS):
        client.write_file(path, make_text_file(2_000, seed=index))
    client.write_file(PATHS[0], make_text_file(2_050, seed=99))

    # Every acknowledged version exists on the standby, byte-identical.
    for path in PATHS:
        key = str(client.workspace.resolve(path))
        primary_entry = pair.primary.cache.peek_entry(key)
        standby_entry = pair.standby.cache.peek_entry(key)
        assert standby_entry is not None
        assert standby_entry.version == primary_entry.version
        assert standby_entry.content == primary_entry.content
    assert cache_version(pair.standby, client, PATHS[0]) == 2
    # Fully shipped: nothing pending, stream acked through the HWM.
    described = pair.primary_repl.describe()
    assert described["pending_records"] == 0
    assert described["shipped_seq"] == described["stream_seq"]
    assert pair.standby_repl.applied_seq == described["stream_seq"]
    pair.close()


def test_standby_refuses_client_traffic_until_promoted(tmp_path):
    pair = make_pair(tmp_path)
    session = RawSession(LoopbackChannel(pair.handle_standby))
    reply = session.send(Hello(client_id="eve@ws"))
    assert isinstance(reply, ErrorReply)
    assert reply.code == "standby-mode"
    # Observation is always allowed, and reports the standby role.
    stats = session.send(StatsQuery(client_id="eve@ws"))
    assert isinstance(stats, StatsReply)
    assert stats.snapshot["replication"]["role"] == "standby"

    pair.standby_repl.promote()
    reply = session.send(Hello(client_id="eve@ws"))
    assert isinstance(reply, Ok)
    assert reply.epoch == pair.standby.epoch >= 2
    pair.close()


def test_out_of_sequence_record_is_refused_not_applied(tmp_path):
    pair = make_pair(tmp_path)
    session = RawSession(LoopbackChannel(pair.handle_standby))
    epoch = pair.standby.epoch
    reply = session.send(
        ReplicateRecord(
            sender="impostor", epoch=epoch, seq=99, record={"kind": "noop"}
        )
    )
    assert isinstance(reply, ErrorReply)
    assert reply.code == "repl-gap"
    assert pair.standby_repl.applied_seq == 0

    # A duplicate (already-applied) seq is acked idempotently instead.
    client, _ = connect(pair)
    client.write_file(PATHS[0], make_text_file(1_000, seed=1))
    applied = pair.standby_repl.applied_seq
    reply = session.send(
        ReplicateRecord(
            sender="impostor", epoch=epoch, seq=1, record={"kind": "noop"}
        )
    )
    assert isinstance(reply, ReplicateAck)
    assert pair.standby_repl.applied_seq == applied
    pair.close()


def test_stale_peer_epoch_is_fenced_and_newer_adopted(tmp_path):
    pair = make_pair(tmp_path)
    session = RawSession(LoopbackChannel(pair.handle_standby))
    # A peer behind our epoch is a resurrected primary: refuse it.
    reply = session.send(Heartbeat(sender="ghost", epoch=0, seq=0))
    assert isinstance(reply, ErrorReply)
    assert reply.code == "stale-epoch"
    # A peer ahead of us carries news: adopt its epoch.
    reply = session.send(Heartbeat(sender="future", epoch=7, seq=0))
    assert isinstance(reply, ReplicateAck)
    assert reply.epoch == 7
    assert pair.standby.epoch == 7
    pair.close()


def test_heartbeats_feed_the_detector_between_writes(tmp_path):
    clock = SimulatedClock()
    pair = make_pair(tmp_path, clock=clock)
    client, _ = connect(pair)
    client.write_file(PATHS[0], make_text_file(1_000, seed=3))
    beats_before = pair.standby_repl.detector.beats
    assert beats_before > 0  # bootstrap + stream already counted

    # Idle except for read-only stats queries: the pump still beats.
    session = RawSession(LoopbackChannel(pair.handle_primary))
    for _ in range(3):
        clock.advance(pair.heartbeat_interval + 0.01)
        session.send(StatsQuery(client_id="probe@cli"))
    assert pair.standby_repl.detector.beats >= beats_before + 3
    assert not pair.standby_repl.detector.expired()

    # Kill the primary: silence outlasts the timeout and expiry fires.
    pair.kill_primary()
    clock.advance(pair.heartbeat_timeout + 0.01)
    assert pair.standby_repl.detector.expired()
    pair.close()


def test_lagging_standby_is_detached_and_rebootstraps(tmp_path):
    pair = make_pair(tmp_path)
    client, _ = connect(pair)
    client.write_file(PATHS[0], make_text_file(1_000, seed=5))
    assert pair.primary_repl.describe()["standby_attached"]

    # Choke the pending buffer: one request journals more records than
    # the bound, so the pump declares the standby too far behind.
    pair.primary_repl.max_pending = 1
    client.write_file(PATHS[1], make_text_file(1_000, seed=6))
    assert not pair.primary_repl.describe()["standby_attached"]
    # The write itself was never at risk: replication is best-effort
    # behind the journal, the client saw a normal ack.
    assert cache_version(pair.primary, client, PATHS[1]) == 1

    # Reattach: a fresh bootstrap snapshot heals the gap completely.
    pair.primary_repl.max_pending = 10_000
    pair.primary_repl.attach_standby(
        LoopbackChannel(pair.handle_standby), name=pair.standby.name
    )
    client.write_file(PATHS[2], make_text_file(1_000, seed=7))
    for path in PATHS[:3]:
        assert cache_version(pair.standby, client, path) == 1
    pair.close()


def test_replication_telemetry_gauges_and_stats_section(tmp_path):
    pair = make_pair(tmp_path)
    client, _ = connect(pair)
    client.write_file(PATHS[0], make_text_file(1_000, seed=8))

    snapshot = pair.primary.telemetry.snapshot()
    gauges = {entry["name"]: entry["value"] for entry in snapshot["gauges"]}
    assert gauges["replication_epoch"] == float(pair.primary.epoch)
    assert gauges["replication_lag_records"] == 0.0
    assert gauges["replication_lag_bytes"] == 0.0
    counters = {
        entry["name"]: entry["value"] for entry in snapshot["counters"]
    }
    assert counters["replication_records_shipped"] > 0
    assert counters["replication_snapshots_shipped"] == 1

    described = pair.primary.describe()
    assert described["replication"]["role"] == "primary"
    assert described["replication"]["standby_attached"] is True
    pair.close()
