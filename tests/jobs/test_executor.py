"""Tests for the simulated and local executors."""

import sys

import pytest

from repro.jobs.executor import (
    ExecutorCostModel,
    LocalExecutor,
    SimulatedExecutor,
    _simulate_computation,
)
from repro.jobs.spec import JobCommandFile


@pytest.fixture
def executor():
    return SimulatedExecutor()


def run(executor, script, **inputs):
    encoded = {name: content for name, content in inputs.items()}
    return executor.execute(JobCommandFile.parse(script), encoded)


class TestBuiltins:
    def test_cat(self, executor):
        result = run(executor, "cat a b", a=b"one ", b=b"two")
        assert result.succeeded
        assert result.stdout == b"one two"

    def test_wc_counts(self, executor):
        result = run(executor, "wc data", data=b"a b\nc d e\n")
        assert result.succeeded
        assert b"2" in result.stdout  # two newlines
        assert b"data" in result.stdout

    def test_sort(self, executor):
        result = run(executor, "sort f", f=b"b\na\nc")
        assert result.stdout.startswith(b"a\nb\nc")

    def test_grep(self, executor):
        result = run(executor, "grep needle f", f=b"hay\nneedle here\nhay")
        assert result.stdout == b"needle here\n"

    def test_grep_no_match(self, executor):
        result = run(executor, "grep absent f", f=b"nothing")
        assert result.stdout == b""
        assert result.succeeded

    def test_echo(self, executor):
        result = run(executor, "echo hello world")
        assert result.stdout == b"hello world\n"

    def test_gen_output_exact_size(self, executor):
        result = run(executor, "gen-output 12345")
        assert len(result.stdout) == 12345

    def test_gen_output_deterministic(self, executor):
        first = run(executor, "gen-output 1000").stdout
        second = run(executor, "gen-output 1000").stdout
        assert first == second

    def test_simulate_produces_log(self, executor):
        result = run(executor, "simulate 10 f", f=b"input data")
        lines = result.stdout.split(b"\n")
        assert lines[0] == b"step residual checksum"
        assert len(lines) == 12  # header + 10 steps + trailing empty

    def test_sleep_charges_cpu(self, executor):
        result = run(executor, "sleep 30")
        assert result.cpu_seconds > 30

    def test_fail_sets_exit_and_stderr(self, executor):
        result = run(executor, "fail disk on fire")
        assert result.exit_code == 1
        assert b"disk on fire" in result.stderr

    def test_unknown_program_fails(self, executor):
        result = run(executor, "frobnicate x")
        assert result.exit_code == 1
        assert b"unknown program" in result.stderr

    def test_missing_staged_file_fails(self, executor):
        result = run(executor, "cat ghost")
        assert result.exit_code == 1
        assert b"ghost" in result.stderr

    def test_failure_stops_remaining_commands(self, executor):
        result = run(executor, "fail early\necho never")
        assert b"never" not in result.stdout


class TestRedirection:
    def test_redirect_to_output_file(self, executor):
        result = run(executor, "sort f > sorted.txt", f=b"b\na")
        assert result.stdout == b""
        assert result.output_files["sorted.txt"].startswith(b"a\nb")

    def test_attached_redirect_form(self, executor):
        result = run(executor, "echo hi >greeting", )
        assert result.output_files["greeting"] == b"hi\n"

    def test_later_commands_read_redirected_file(self, executor):
        result = run(executor, "echo first > tmp\ncat tmp")
        assert result.stdout == b"first\n"


class TestSimulateStability:
    def test_pure_function_of_inputs(self):
        assert _simulate_computation(50, b"abc") == _simulate_computation(
            50, b"abc"
        )

    def test_localised_edit_perturbs_few_rows(self):
        base = b"A" * 4096
        edited = b"A" * 2048 + b"B" + b"A" * 2047
        out_base = _simulate_computation(64, base).split(b"\n")
        out_edited = _simulate_computation(64, edited).split(b"\n")
        differing = sum(1 for a, b in zip(out_base, out_edited) if a != b)
        # 8 chunks of 512; 1-2 chunks touched -> ~1/8 to 2/8 of 64 rows.
        assert 0 < differing <= 20


class TestCostModel:
    def test_cost_grows_with_bytes(self):
        model = ExecutorCostModel()
        assert model.command_cost(1_000_000, 0) > model.command_cost(10, 0)

    def test_cpu_seconds_accumulate_per_command(self):
        executor = SimulatedExecutor(
            ExecutorCostModel(per_command_seconds=1.0)
        )
        result = run(executor, "echo a\necho b\necho c")
        assert result.cpu_seconds >= 3.0


class TestLocalExecutor:
    @pytest.mark.skipif(sys.platform == "win32", reason="POSIX tools")
    def test_real_subprocess_runs(self):
        executor = LocalExecutor()
        result = run(executor, "cat data", data=b"real bytes")
        assert result.succeeded
        assert result.stdout == b"real bytes"

    @pytest.mark.skipif(sys.platform == "win32", reason="POSIX tools")
    def test_missing_command_reports_127(self):
        executor = LocalExecutor()
        result = run(executor, "definitely-not-a-command-xyz")
        assert result.exit_code == 127

    @pytest.mark.skipif(sys.platform == "win32", reason="POSIX tools")
    def test_redirect_collected_as_output_file(self):
        executor = LocalExecutor()
        result = run(executor, "cat data > copy.txt", data=b"payload")
        assert result.output_files.get("copy.txt") == b"payload"

    @pytest.mark.skipif(sys.platform == "win32", reason="POSIX tools")
    def test_input_names_sanitised(self):
        executor = LocalExecutor()
        result = run(executor, "cat escape", **{"escape": b"ok"})
        assert result.succeeded
