"""Job executors: the simulated supercomputer, and a real-subprocess one.

The paper's testbed used "a remote UNIX system [that] currently serves as
the supercomputer" (§7) — the evaluation never depends on *what* the jobs
compute, only that submitted files are staged and commands run against
them.  :class:`SimulatedExecutor` interprets a small command language over
the staged shadow files deterministically and charges virtual CPU
seconds, so benchmark timings are reproducible.  :class:`LocalExecutor`
runs real subprocesses in a scratch directory for the live TCP examples.

Command language (one command per job-script line)::

    cat FILE...            concatenate staged files to stdout
    wc FILE...             line/word/byte counts
    sort FILE              sort lines
    grep PATTERN FILE      print matching lines
    head N FILE            first N lines
    tail N FILE            last N lines
    checksum FILE...       content digest per file
    paste FILE FILE        join files line-wise with tabs
    echo WORD...           print arguments
    simulate STEPS FILE    deterministic "scientific computation" over FILE
    gen-output NBYTES      produce NBYTES of deterministic output
    sleep SECONDS          consume virtual CPU seconds
    fail MESSAGE           exit non-zero (failure injection)

Any command may end with ``> NAME`` to write stdout to an output file
instead, which the output-delivery stage ships back (or onward, §8.3).
"""

from __future__ import annotations

import hashlib
import subprocess
import tempfile
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.errors import JobCommandError
from repro.jobs.spec import JobCommand, JobCommandFile


@dataclass
class ExecutionResult:
    """Everything a finished job produced."""

    exit_code: int
    stdout: bytes
    stderr: bytes
    output_files: Dict[str, bytes] = field(default_factory=dict)
    cpu_seconds: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.exit_code == 0


@dataclass(frozen=True)
class ExecutorCostModel:
    """Virtual CPU accounting for the simulated supercomputer.

    A 1987 vector machine chews through data far faster than the 9600-baud
    line feeds it, so the defaults keep execution cheap relative to
    transfer — matching the paper, where E-time and S-time differ only in
    transfer, not compute.
    """

    per_command_seconds: float = 0.2
    per_input_byte_seconds: float = 2e-7
    per_output_byte_seconds: float = 2e-7

    def command_cost(self, input_bytes: int, output_bytes: int) -> float:
        return (
            self.per_command_seconds
            + input_bytes * self.per_input_byte_seconds
            + output_bytes * self.per_output_byte_seconds
        )


class Executor(ABC):
    """Runs a job command file against staged input files."""

    @abstractmethod
    def execute(
        self, command_file: JobCommandFile, inputs: Dict[str, bytes]
    ) -> ExecutionResult:
        """Run every command; stop at the first failure."""


class SimulatedExecutor(Executor):
    """Deterministic in-process interpreter for the command language."""

    def __init__(self, cost_model: Optional[ExecutorCostModel] = None) -> None:
        self.cost_model = cost_model if cost_model is not None else ExecutorCostModel()

    def execute(
        self, command_file: JobCommandFile, inputs: Dict[str, bytes]
    ) -> ExecutionResult:
        stdout = bytearray()
        stderr = bytearray()
        outputs: Dict[str, bytes] = {}
        cpu = 0.0
        workspace = dict(inputs)
        for command in command_file.commands:
            arguments, redirect = self._split_redirect(command.arguments)
            try:
                text, consumed = self._run_builtin(
                    command.program, arguments, workspace
                )
            except JobCommandError as exc:
                stderr += f"{command.program}: {exc}\n".encode()
                cpu += self.cost_model.command_cost(0, 0)
                return ExecutionResult(1, bytes(stdout), bytes(stderr), outputs, cpu)
            cpu += self.cost_model.command_cost(consumed, len(text))
            if command.program == "sleep" and arguments:
                cpu += float(arguments[0])
            if redirect is not None:
                outputs[redirect] = text
                workspace[redirect] = text  # later commands may read it
            else:
                stdout += text
        return ExecutionResult(0, bytes(stdout), bytes(stderr), outputs, cpu)

    @staticmethod
    def _split_redirect(
        arguments: Tuple[str, ...]
    ) -> Tuple[Tuple[str, ...], Optional[str]]:
        if len(arguments) >= 2 and arguments[-2] == ">":
            return arguments[:-2], arguments[-1]
        if arguments and arguments[-1].startswith(">") and len(arguments[-1]) > 1:
            return arguments[:-1], arguments[-1][1:]
        return arguments, None

    def _run_builtin(
        self,
        program: str,
        arguments: Tuple[str, ...],
        workspace: Dict[str, bytes],
    ) -> Tuple[bytes, int]:
        """Return (stdout bytes, input bytes consumed)."""

        def staged(name: str) -> bytes:
            if name not in workspace:
                raise JobCommandError(f"no staged file {name!r}")
            return workspace[name]

        if program == "cat":
            if not arguments:
                raise JobCommandError("cat requires at least one file")
            data = b"".join(staged(name) for name in arguments)
            return data, len(data)
        if program == "wc":
            if not arguments:
                raise JobCommandError("wc requires at least one file")
            consumed = 0
            lines = []
            for name in arguments:
                data = staged(name)
                consumed += len(data)
                lines.append(
                    f"{data.count(10):7d} {len(data.split()):7d} "
                    f"{len(data):7d} {name}".encode()
                )
            return b"\n".join(lines) + b"\n", consumed
        if program == "sort":
            if len(arguments) != 1:
                raise JobCommandError("sort requires exactly one file")
            data = staged(arguments[0])
            body = data.split(b"\n")
            return b"\n".join(sorted(body)) + b"\n", len(data)
        if program == "grep":
            if len(arguments) != 2:
                raise JobCommandError("grep requires PATTERN FILE")
            pattern = arguments[0].encode()
            data = staged(arguments[1])
            hits = [line for line in data.split(b"\n") if pattern in line]
            return b"\n".join(hits) + (b"\n" if hits else b""), len(data)
        if program == "head" or program == "tail":
            if len(arguments) != 2:
                raise JobCommandError(f"{program} requires N FILE")
            count = self._positive_int(arguments[0], "line count")
            data = staged(arguments[1])
            lines = data.split(b"\n")
            if lines and lines[-1] == b"":
                lines.pop()
            chosen = lines[:count] if program == "head" else lines[-count:]
            return b"\n".join(chosen) + (b"\n" if chosen else b""), len(data)
        if program == "checksum":
            if not arguments:
                raise JobCommandError("checksum requires at least one file")
            consumed = 0
            rows = []
            for name in arguments:
                data = staged(name)
                consumed += len(data)
                digest = hashlib.sha256(data).hexdigest()[:16]
                rows.append(f"{digest}  {name}".encode())
            return b"\n".join(rows) + b"\n", consumed
        if program == "paste":
            if len(arguments) != 2:
                raise JobCommandError("paste requires exactly two files")
            left = staged(arguments[0]).split(b"\n")
            right = staged(arguments[1]).split(b"\n")
            length = max(len(left), len(right))
            left += [b""] * (length - len(left))
            right += [b""] * (length - len(right))
            joined = b"\n".join(
                a + b"\t" + b for a, b in zip(left, right)
            )
            consumed = sum(len(staged(name)) for name in arguments)
            return joined + b"\n", consumed
        if program == "echo":
            return " ".join(arguments).encode() + b"\n", 0
        if program == "simulate":
            if len(arguments) != 2:
                raise JobCommandError("simulate requires STEPS FILE")
            steps = self._positive_int(arguments[0], "steps")
            data = staged(arguments[1])
            return _simulate_computation(steps, data), len(data)
        if program == "gen-output":
            if len(arguments) != 1:
                raise JobCommandError("gen-output requires NBYTES")
            nbytes = self._positive_int(arguments[0], "nbytes")
            return _deterministic_bytes(nbytes, seed=b"gen-output"), 0
        if program == "sleep":
            if len(arguments) != 1:
                raise JobCommandError("sleep requires SECONDS")
            try:
                seconds = float(arguments[0])
            except ValueError:
                raise JobCommandError(f"bad sleep duration {arguments[0]!r}") from None
            if seconds < 0:
                raise JobCommandError("sleep duration must be >= 0")
            return b"", 0
        if program == "fail":
            raise JobCommandError(" ".join(arguments) or "job failed")
        raise JobCommandError(f"unknown program {program!r}")

    @staticmethod
    def _positive_int(text: str, what: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise JobCommandError(f"bad {what} {text!r}") from None
        if value <= 0:
            raise JobCommandError(f"{what} must be positive, got {value}")
        return value


def _deterministic_bytes(count: int, seed: bytes) -> bytes:
    """Reproducible pseudo-random text of ``count`` bytes."""
    out = bytearray()
    block_index = 0
    while len(out) < count:
        digest = hashlib.sha256(seed + block_index.to_bytes(8, "big")).hexdigest()
        out += f"{digest}\n".encode()
        block_index += 1
    return bytes(out[:count])


_SIMULATE_CHUNK = 512


def _simulate_computation(steps: int, data: bytes) -> bytes:
    """A fake scientific code: an iteration log derived from the input.

    Each step's row is a digest of one *chunk* of the input (round-robin),
    so a small localised input edit perturbs only the rows fed by the
    touched chunks while the rest of the log is byte-identical — the
    partially-stable-output regime reverse shadow processing (§8.3)
    exploits.  Output is a pure function of (steps, data).
    """
    rows = [b"step residual checksum"]
    chunks = [
        data[offset : offset + _SIMULATE_CHUNK]
        for offset in range(0, len(data), _SIMULATE_CHUNK)
    ] or [b""]
    for step in range(1, steps + 1):
        chunk = chunks[(step - 1) % len(chunks)]
        state = hashlib.sha256(chunk + step.to_bytes(4, "big")).digest()
        residual = int.from_bytes(state[:4], "big") / 2**32
        rows.append(f"{step:5d} {residual:.8f} {state[:6].hex()}".encode())
    return b"\n".join(rows) + b"\n"


class LocalExecutor(Executor):
    """Runs each command as a real subprocess in a scratch directory.

    Used by the live TCP examples, where the 'supercomputer' is the local
    machine.  Commands run with ``shell=False``; the staged files are
    materialised into a temporary directory that is the working directory.
    """

    def __init__(self, timeout_seconds: float = 30.0) -> None:
        self.timeout_seconds = timeout_seconds

    def execute(
        self, command_file: JobCommandFile, inputs: Dict[str, bytes]
    ) -> ExecutionResult:
        stdout = bytearray()
        stderr = bytearray()
        outputs: Dict[str, bytes] = {}
        with tempfile.TemporaryDirectory(prefix="shadow-job-") as scratch:
            root = Path(scratch)
            for name, content in inputs.items():
                safe = Path(name).name  # no path escapes out of scratch
                (root / safe).write_bytes(content)
            before = {path.name for path in root.iterdir()}
            for command in command_file.commands:
                argv = [command.program, *command.arguments]
                redirect: Optional[str] = None
                if len(argv) >= 3 and argv[-2] == ">":
                    redirect = Path(argv[-1]).name
                    argv = argv[:-2]
                try:
                    completed = subprocess.run(
                        argv,
                        cwd=root,
                        capture_output=True,
                        timeout=self.timeout_seconds,
                        check=False,
                    )
                except FileNotFoundError:
                    stderr += f"{command.program}: command not found\n".encode()
                    return ExecutionResult(127, bytes(stdout), bytes(stderr), outputs)
                except subprocess.TimeoutExpired:
                    stderr += f"{command.program}: timed out\n".encode()
                    return ExecutionResult(124, bytes(stdout), bytes(stderr), outputs)
                stderr += completed.stderr
                if redirect is not None:
                    (root / redirect).write_bytes(completed.stdout)
                else:
                    stdout += completed.stdout
                if completed.returncode != 0:
                    return ExecutionResult(
                        completed.returncode, bytes(stdout), bytes(stderr), outputs
                    )
            for path in root.iterdir():
                if path.name not in before and path.is_file():
                    outputs[path.name] = path.read_bytes()
        return ExecutionResult(0, bytes(stdout), bytes(stderr), outputs)
