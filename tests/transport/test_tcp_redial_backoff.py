"""Bounded, jittered, deterministic backoff between TCP re-dials.

A dead server must not be hammered once per request per client — the
retry storm §5.1 warns about.  The channel sleeps an exponentially
growing (capped) delay before each re-dial after a failure, through an
injectable sleep function and a seeded rng, so simulated runs stay
deterministic and tests need no wall-clock waits.
"""

import pytest

from repro.errors import TransportError
from repro.resilience.policy import RetryPolicy
from repro.transport.tcp import (
    DEFAULT_REDIAL_POLICY,
    TcpChannel,
    TcpChannelServer,
)

NO_JITTER = RetryPolicy(
    max_attempts=3, base_delay=0.1, multiplier=2.0, max_delay=0.4, jitter=0.0
)


def make_dead_channel(policy, seed=2718):
    """A channel whose server died right after the first dial."""
    server = TcpChannelServer(lambda payload: payload)
    slept = []
    channel = TcpChannel(
        "127.0.0.1",
        server.port,
        timeout=2.0,
        redial_policy=policy,
        redial_sleep=slept.append,
        redial_seed=seed,
    )
    server.close(drain_seconds=0.0)
    return channel, slept


def test_backoff_grows_exponentially_then_plateaus():
    channel, slept = make_dead_channel(NO_JITTER)
    for _ in range(6):
        with pytest.raises(TransportError):
            channel.reconnect()
    # First re-dial after a healthy connection pays nothing; each
    # consecutive failure then widens the wait, capped at max_delay.
    assert slept == [0.1, 0.2, 0.4, 0.4, 0.4]
    assert channel.redial_waits == 5
    assert channel.redial_wait_seconds == pytest.approx(1.5)
    channel.close()


def test_successful_redial_resets_the_backoff():
    server = TcpChannelServer(lambda payload: payload)
    port = server.port
    slept = []
    channel = TcpChannel(
        "127.0.0.1",
        port,
        timeout=2.0,
        redial_policy=NO_JITTER,
        redial_sleep=slept.append,
    )
    server.close(drain_seconds=0.0)
    for _ in range(3):
        with pytest.raises(TransportError):
            channel.reconnect()
    assert slept == [0.1, 0.2]

    # The server comes back on the same port: the re-dial (which still
    # pays the owed 0.4s wait) succeeds and the streak is forgotten.
    revived = TcpChannelServer(lambda payload: payload, port=port)
    try:
        channel.reconnect()
        assert channel.reconnects == 1
    finally:
        revived.close(drain_seconds=0.0)
    assert slept == [0.1, 0.2, 0.4]
    # Dead again: the backoff restarts from the bottom of the curve.
    with pytest.raises(TransportError):
        channel.reconnect()
    with pytest.raises(TransportError):
        channel.reconnect()
    assert slept == [0.1, 0.2, 0.4, 0.1]
    channel.close()


def test_jitter_is_seeded_and_deterministic():
    policy = RetryPolicy(
        max_attempts=4,
        base_delay=0.1,
        multiplier=2.0,
        max_delay=1.0,
        jitter=0.25,
    )
    runs = []
    for _ in range(2):
        channel, slept = make_dead_channel(policy, seed=42)
        for _ in range(5):
            with pytest.raises(TransportError):
                channel.reconnect()
        channel.close()
        runs.append(slept)
    assert runs[0] == runs[1]  # same seed, same schedule
    assert all(delay > 0 for delay in runs[0])

    channel, other = make_dead_channel(policy, seed=43)
    for _ in range(5):
        with pytest.raises(TransportError):
            channel.reconnect()
    channel.close()
    assert other != runs[0]  # different seed decorrelates clients


def test_default_policy_is_bounded():
    assert DEFAULT_REDIAL_POLICY.max_delay <= 2.0
    assert DEFAULT_REDIAL_POLICY.base_delay > 0
