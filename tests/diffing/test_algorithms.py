"""Tests for the three diff algorithms: HM, Myers, Tichy."""

import random

import pytest

from repro.diffing import hunt_mcilroy, myers, tichy
from repro.diffing.hunt_mcilroy import longest_common_subsequence
from repro.diffing.model import BlockDelta, CopyOp, LineDelta
from repro.diffing.myers import shortest_edit_matches
from repro.workload.files import make_text_file

LINE_ALGORITHMS = [hunt_mcilroy, myers]
ALL_ALGORITHMS = [hunt_mcilroy, myers, tichy]


def edit_cases():
    base = make_text_file(4_000, seed=1)
    lines = base.split(b"\n")
    scattered = list(lines)
    for index in range(0, len(scattered), 7):
        scattered[index] = b"CHANGED " + scattered[index]
    inserted = lines[:10] + [b"brand new line"] * 3 + lines[10:]
    deleted = lines[:5] + lines[20:]
    return {
        "identical": (base, base),
        "scattered": (base, b"\n".join(scattered)),
        "insertion": (base, b"\n".join(inserted)),
        "deletion": (base, b"\n".join(deleted)),
        "replace-all": (base, make_text_file(4_000, seed=2)),
        "empty-to-content": (b"", base),
        "content-to-empty": (base, b""),
        "no-trailing-newline": (b"a\nb\nc", b"a\nB\nc"),
        "only-newlines": (b"\n\n\n", b"\n\n"),
    }


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS, ids=lambda m: m.ALGORITHM_NAME)
@pytest.mark.parametrize("case", sorted(edit_cases()))
def test_apply_reconstructs_target(algorithm, case):
    base, target = edit_cases()[case]
    delta = algorithm.diff(base, target)
    assert delta.apply(base) == target


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS, ids=lambda m: m.ALGORITHM_NAME)
def test_small_edit_makes_small_delta(algorithm):
    base = make_text_file(50_000, seed=3)
    lines = base.split(b"\n")
    lines[100] = b"one single edited line"
    target = b"\n".join(lines)
    delta = algorithm.diff(base, target)
    assert delta.encoded_size < len(target) * 0.05


@pytest.mark.parametrize("algorithm", LINE_ALGORITHMS, ids=lambda m: m.ALGORITHM_NAME)
def test_identity_has_no_ops(algorithm):
    base = b"line\nanother\n"
    delta = algorithm.diff(base, base)
    assert isinstance(delta, LineDelta)
    assert delta.ops == ()


def test_algorithm_names_differ():
    assert len({m.ALGORITHM_NAME for m in ALL_ALGORITHMS}) == 3


def test_delta_records_algorithm_name():
    for module in ALL_ALGORITHMS:
        delta = module.diff(b"a\n", b"b\n")
        assert delta.algorithm == module.ALGORITHM_NAME


class TestHuntMcIlroyLcs:
    def test_classic_example(self):
        a = [b"a", b"b", b"c", b"a", b"b", b"b", b"a"]
        b = [b"c", b"b", b"a", b"b", b"a", b"c"]
        matches = longest_common_subsequence(a, b)
        assert len(matches) == 4  # LCS of abcabba/cbabac is caba/baba etc.

    def test_matches_are_strictly_increasing(self):
        a = make_text_file(2_000, seed=4).split(b"\n")
        b = list(a)
        b[3] = b"edit"
        del b[10:12]
        matches = longest_common_subsequence(a, b)
        for (a1, b1), (a2, b2) in zip(matches, matches[1:]):
            assert a2 > a1 and b2 > b1

    def test_matched_lines_are_equal(self):
        a = [b"x", b"y", b"z"]
        b = [b"y", b"q", b"z"]
        for ai, bi in longest_common_subsequence(a, b):
            assert a[ai] == b[bi]

    def test_no_common_lines(self):
        assert longest_common_subsequence([b"a"], [b"b"]) == []

    def test_duplicate_heavy_input(self):
        a = [b"dup"] * 50
        b = [b"dup"] * 30
        matches = longest_common_subsequence(a, b)
        assert len(matches) == 30


class TestMyers:
    def test_matches_lie_on_diagonals(self):
        a = make_text_file(2_000, seed=5).split(b"\n")
        b = list(a)
        b.insert(5, b"added")
        matches = shortest_edit_matches(a, b)
        for ai, bi in matches:
            assert a[ai] == b[bi]

    def test_single_insertion_keeps_all_base_lines(self):
        a = [b"1", b"2", b"3"]
        b = [b"1", b"x", b"2", b"3"]
        matches = shortest_edit_matches(a, b)
        assert [ai for ai, _ in matches] == [0, 1, 2]

    def test_shortest_script_for_small_case(self):
        # abc -> axc needs exactly one change op.
        delta = myers.diff(b"a\nb\nc", b"a\nx\nc")
        assert len(delta.ops) == 1

    def test_myers_not_larger_than_hm_on_heavy_edits(self):
        base = make_text_file(10_000, seed=6)
        target = make_text_file(10_000, seed=7)
        myers_delta = myers.diff(base, target)
        hm_delta = hunt_mcilroy.diff(base, target)
        # Myers guarantees a shortest edit script; sizes may differ but
        # both must reconstruct and be within a small factor.
        assert myers_delta.apply(base) == target
        assert myers_delta.encoded_size <= hm_delta.encoded_size * 1.2


class TestTichy:
    def test_block_move_found_across_reordering(self):
        base = b"A" * 200 + b"B" * 200
        target = b"B" * 200 + b"A" * 200
        delta = tichy.diff(base, target)
        assert delta.apply(base) == target
        # Reordering should be two copies, far smaller than the content.
        assert delta.encoded_size < 100

    def test_byte_level_edit_cheaper_than_line_diff(self):
        # One character changed in a 1000-character single line: the line
        # diff must resend the whole line, Tichy only the neighbourhood.
        base = b"x" * 1000 + b"\n" + make_text_file(5_000, seed=8)
        target = b"x" * 500 + b"Y" + b"x" * 499 + b"\n" + make_text_file(
            5_000, seed=8
        )
        block = tichy.diff(base, target)
        line = hunt_mcilroy.diff(base, target)
        assert block.apply(base) == target
        assert block.encoded_size < line.encoded_size

    def test_ops_reference_valid_base_ranges(self):
        base = make_text_file(3_000, seed=9)
        target = make_text_file(3_000, seed=10)
        delta = tichy.diff(base, target)
        assert isinstance(delta, BlockDelta)
        for op in delta.ops:
            if isinstance(op, CopyOp):
                assert op.offset + op.length <= len(base)

    def test_repetitive_base_bounded_index(self):
        # An all-zero base must not blow up the match search.
        base = b"\x00" * 50_000
        target = b"\x00" * 25_000 + b"\x01" + b"\x00" * 24_999
        delta = tichy.diff(base, target)
        assert delta.apply(base) == target

    def test_binary_content(self):
        rng = random.Random(11)
        base = bytes(rng.getrandbits(8) for _ in range(5_000))
        target = bytearray(base)
        target[1000:1100] = bytes(rng.getrandbits(8) for _ in range(100))
        delta = tichy.diff(base, bytes(target))
        assert delta.apply(base) == bytes(target)
        assert delta.encoded_size < len(base)
