"""Batched notify/update frames, chunked transfers, and write coalescing.

The pipelined batch-transfer wire layer: many small protocol exchanges
collapse into few frames, with per-item verdicts so one failure never
voids its neighbours — and the single-message paths stay untouched.
"""

import pytest

from repro.core.protocol import (
    BatchNotify,
    BatchReply,
    BatchUpdate,
    ChunkAck,
    Hello,
    Ok,
    Update,
    UpdateAck,
    UpdateChunk,
)
from repro.core.environment import ShadowEnvironment
from repro.core.server import ShadowServer
from repro.core.service import loopback_pair
from repro.diffing.model import checksum
from repro.errors import ProtocolError, ShadowError
from repro.resilience.session import RawSession
from repro.transport.base import LoopbackChannel

CLIENT = "alice@ws"


@pytest.fixture
def server():
    return ShadowServer()


@pytest.fixture
def session(server):
    session = RawSession(LoopbackChannel(server.handle))
    reply = session.send(Hello(client_id=CLIENT, domain="/"))
    assert isinstance(reply, Ok)
    return session


def store(session, key, content, version=1):
    reply = session.send(
        Update(client_id=CLIENT, key=key, version=version, payload=content)
    )
    assert isinstance(reply, UpdateAck)
    return reply


class TestBatchNotify:
    def test_per_item_verdicts(self, server, session):
        content = b"cached content\n"
        store(session, "/d/a", content, version=1)
        reply = session.send(
            BatchNotify(
                client_id=CLIENT,
                items=(
                    ("/d/a", 1, len(content), checksum(content)),
                    ("/d/a", 2),
                    ("/d/new", 1),
                ),
            )
        )
        assert isinstance(reply, BatchReply)
        current, stale, new = reply.items
        assert current == {
            "key": "/d/a", "verdict": "current", "base_version": 1,
        }
        # Version 2 is newer than the cache: pull from the cached base.
        assert stale["verdict"] == "pull-now"
        assert stale["base_version"] == 1
        assert new["verdict"] == "pull-now"
        assert new["base_version"] == 0

    def test_divergent_checksum_demands_full(self, server, session):
        store(session, "/d/a", b"server copy", version=3)
        reply = session.send(
            BatchNotify(
                client_id=CLIENT, items=(("/d/a", 3, 9, "different"),)
            )
        )
        verdict = reply.items[0]
        assert verdict["verdict"] == "pull-now"
        assert verdict["base_version"] == 0  # delta base cannot be trusted

    def test_bad_item_gets_error_verdict_neighbours_survive(self, session):
        reply = session.send(
            BatchNotify(
                client_id=CLIENT, items=(("/d/ok", 1), ("/d/bad", 0))
            )
        )
        ok, bad = reply.items
        assert ok["verdict"] == "pull-now"
        assert bad["verdict"] == "error"
        assert bad["error"] == "protocol"

    def test_verdicts_match_single_notify_decisions(self, server, session):
        """Batching must never change a pull decision (byte-identity of
        the protocol semantics, not just the wire)."""
        from repro.core.protocol import Notify, NotifyReply

        store(session, "/d/a", b"x" * 10, version=1)
        single = session.send(Notify(client_id=CLIENT, key="/d/a", version=2))
        assert isinstance(single, NotifyReply)
        batched = session.send(
            BatchNotify(client_id=CLIENT, items=(("/d/a", 2),))
        ).items[0]
        assert (batched["verdict"] == "pull-now") == single.pull_now
        assert batched["base_version"] == single.base_version


class TestBatchUpdate:
    def test_items_stored_independently(self, server, session):
        reply = session.send(
            BatchUpdate(
                client_id=CLIENT,
                items=(
                    {"key": "/d/a", "version": 1, "payload": b"aaa"},
                    {"key": "/d/b", "version": 1, "payload": b"bbb"},
                ),
            )
        )
        assert isinstance(reply, BatchReply)
        assert [item["stored_version"] for item in reply.items] == [1, 1]
        assert all(item["cached"] for item in reply.items)
        assert server.cache.peek_entry("/d/a").content == b"aaa"
        assert server.cache.peek_entry("/d/b").content == b"bbb"

    def test_need_full_is_per_item(self, server, session):
        """A delta whose base was never cached fails alone; its
        neighbour's store still lands."""
        reply = session.send(
            BatchUpdate(
                client_id=CLIENT,
                items=(
                    {
                        "key": "/d/missing", "version": 2,
                        "base_version": 1, "is_delta": True,
                        "payload": b"bogus delta",
                    },
                    {"key": "/d/fine", "version": 1, "payload": b"ok"},
                ),
            )
        )
        failed, stored = reply.items
        assert failed["error"] == "need-full"
        assert stored["stored_version"] == 1
        assert server.cache.peek_entry("/d/fine").content == b"ok"
        assert server.cache.peek_entry("/d/missing") is None

    def test_unknown_item_field_is_a_protocol_error(self, session):
        reply = session.send(
            BatchUpdate(
                client_id=CLIENT,
                items=(
                    {"key": "/d/a", "version": 1, "payload": b"x",
                     "typo_field": 1},
                ),
            )
        )
        assert reply.items[0]["error"] == "protocol"


class TestChunkedUpdates:
    def chunks(self, key, payload, step, version=1):
        total = -(-len(payload) // step)
        return [
            UpdateChunk(
                client_id=CLIENT, key=key, version=version,
                seq=seq, total=total, size=len(payload),
                data=payload[seq * step : (seq + 1) * step],
            )
            for seq in range(total)
        ]

    def test_in_order_reassembly(self, server, session):
        payload = b"0123456789" * 30
        frames = self.chunks("/d/big", payload, step=100)
        assert len(frames) == 3
        for expected, frame in enumerate(frames[:-1], start=1):
            ack = session.send(frame)
            assert isinstance(ack, ChunkAck)
            assert ack.received == expected
        final = session.send(frames[-1])
        assert isinstance(final, UpdateAck)
        assert final.stored_version == 1
        assert server.cache.peek_entry("/d/big").content == payload

    def test_out_of_order_chunks_absorbed(self, server, session):
        payload = bytes(range(256)) * 4
        frames = self.chunks("/d/shuffled", payload, step=300)
        order = [1, 0, 2, 3]
        final = None
        for index in order:
            final = session.send(frames[index])
        assert isinstance(final, UpdateAck)
        assert server.cache.peek_entry("/d/shuffled").content == payload

    def test_duplicate_chunk_is_absorbed(self, server, session):
        payload = b"ab" * 200
        frames = self.chunks("/d/dup", payload, step=150)
        session.send(frames[0])
        session.send(frames[0])  # replayed frame, rid fell out of cache
        session.send(frames[1])
        final = session.send(frames[2])
        assert isinstance(final, UpdateAck)
        assert server.cache.peek_entry("/d/dup").content == payload

    def test_shape_change_drops_the_assembly(self, server, session):
        frames = self.chunks("/d/x", b"z" * 200, step=100)
        session.send(frames[0])
        reshaped = UpdateChunk(
            client_id=CLIENT, key="/d/x", version=1,
            seq=0, total=5, size=200, data=b"z" * 40,
        )
        error = session.send(reshaped)
        assert error.TYPE == "error"
        assert error.code == "protocol"
        session_state = server.sessions.get(CLIENT)
        assert session_state.chunk_assemblies == 0

    def test_declared_size_must_match(self, server, session):
        lying = UpdateChunk(
            client_id=CLIENT, key="/d/short", version=1,
            seq=0, total=1, size=100, data=b"only these bytes",
        )
        error = session.send(lying)
        assert error.TYPE == "error"
        assert error.code == "protocol"
        assert server.cache.peek_entry("/d/short") is None


class TestWriteFilesAndCoalescer:
    def test_write_files_converges_byte_identically(self):
        client, server = loopback_pair()
        contents = {
            f"/data/f{i}.txt": f"file {i}\n".encode() * 20 for i in range(6)
        }
        numbers = client.write_files(contents)
        assert set(numbers.values()) == {1}
        for path, content in contents.items():
            key = str(client.workspace.resolve(path))
            assert server.cache.peek_entry(key).content == content

    def test_batches_split_at_max_items_and_pipeline(self):
        environment = ShadowEnvironment().customized(batch_max_items=2)
        client, server = loopback_pair(environment=environment)
        contents = {f"/data/f{i}.txt": b"x" * 64 for i in range(5)}
        client.write_files(contents)
        # 5 announcements in frames of 2 -> a 3-frame pipelined batch.
        assert client.resilience_stats.pipelined_batches >= 1
        for path, content in contents.items():
            key = str(client.workspace.resolve(path))
            assert server.cache.peek_entry(key).content == content

    def test_coalescer_holds_until_flush(self):
        client, server = loopback_pair()
        with client.batched(flush_window=1000.0) as batch:
            client.write_file("/d/a.txt", b"held")
            client.write_file("/d/b.txt", b"back")
            assert batch.pending == 2
            assert len(server.cache) == 0  # nothing announced yet
            batch.flush()
            assert batch.pending == 0
            assert len(server.cache) == 2
        assert client._coalescer is None

    def test_coalescer_flushes_at_max_items(self):
        client, server = loopback_pair()
        with client.batched(flush_window=1000.0, max_items=2) as batch:
            client.write_file("/d/a.txt", b"one")
            assert batch.pending == 1
            client.write_file("/d/b.txt", b"two")
            assert batch.pending == 0  # hit the cap, flushed itself
            assert len(server.cache) == 2

    def test_coalescer_flushes_before_submit(self):
        client, server = loopback_pair()
        with client.batched(flush_window=1000.0):
            client.write_file("/data/in.txt", b"payload\n")
            job_id = client.submit("wc in.txt", ["/data/in.txt"])
        bundle = client.fetch_output(job_id)
        assert bundle is not None and bundle.exit_code == 0

    def test_coalescer_keeps_latest_version_per_key(self):
        client, server = loopback_pair()
        with client.batched(flush_window=1000.0) as batch:
            client.write_file("/d/a.txt", b"v1")
            client.write_file("/d/a.txt", b"v2")
            assert batch.pending == 1
        key = str(client.workspace.resolve("/d/a.txt"))
        entry = server.cache.peek_entry(key)
        assert entry.version == 2
        assert entry.content == b"v2"

    def test_nested_batching_refused(self):
        client, _ = loopback_pair()
        with client.batched():
            with pytest.raises(ShadowError):
                client.batched()

    def test_failed_body_does_not_mask_exception_with_flush(self):
        client, server = loopback_pair()
        with pytest.raises(ValueError):
            with client.batched(flush_window=1000.0):
                client.write_file("/d/a.txt", b"held")
                raise ValueError("body failed")
        # The coalescer detached without flushing over the wire.
        assert client._coalescer is None
        assert len(server.cache) == 0

    def test_failed_body_parks_held_writes_for_replay(self):
        client, server = loopback_pair()
        with pytest.raises(ValueError):
            with client.batched(flush_window=1000.0):
                client.write_file("/d/a.txt", b"v1")
                client.write_file("/d/a.txt", b"v2")
                client.write_file("/d/b.txt", b"other")
                raise ValueError("body failed")
        # The held announcements were parked (latest version per key),
        # not dropped on the floor.
        key_a = str(client.workspace.resolve("/d/a.txt"))
        parked = client._parked["supercomputer"]
        assert parked[key_a] == 2
        assert len(parked) == 2
        assert client.resilience_stats.parked_notifications == 2
        # The next request to the host replays them: the server's
        # coherence view catches up without a fresh write.
        client.write_file("/d/c.txt", b"later")
        assert client.resilience_stats.replayed_notifications == 2
        assert server.cache.peek_entry(key_a).content == b"v2"
        assert client._parked.get("supercomputer") is None

    def test_write_inside_batch_rejects_other_host(self):
        client, _ = loopback_pair()
        with client.batched(flush_window=1000.0):
            client.write_file("/d/a.txt", b"ok")  # default host: fine
            client.write_file("/d/b.txt", b"ok", host="supercomputer")
            with pytest.raises(ShadowError):
                client.write_file("/d/c.txt", b"bad", host="elsewhere")
            with pytest.raises(ShadowError):
                client.write_files({"/d/d.txt": b"bad"}, host="elsewhere")
