"""Ablation A5: congestion sensitivity (§2.2, §8.1).

The paper argues that reducing traffic volume matters *more* as networks
congest ("More traffic causes the network congestion and results in poor
performance [Nag84]") and that even 56 kbps-and-faster trunks reward
deltas because effective per-user bandwidth is congestion-limited.

This bench sweeps the available fraction of a clear 56 kbps line and
shows the shadow-vs-conventional speedup holding (and the absolute gap
widening) as congestion grows — plus the bursty-traffic model for a
non-stationary trace.
"""

from __future__ import annotations

from functools import lru_cache

from conftest import publish

from repro.metrics.report import format_table
from repro.simnet.link import CLEAR_56K
from repro.simnet.traffic import BurstyTraffic, CongestedLink, ConstantTraffic
from repro.workload.cycles import (
    ExperimentConfig,
    run_conventional_experiment,
    run_shadow_experiment,
)

FILE_SIZE = 100_000
PERCENT = 5
AVAILABLE_FRACTIONS = (1.0, 0.5, 0.2, 0.1)


@lru_cache(maxsize=1)
def run_sweep():
    results = {}
    for available in AVAILABLE_FRACTIONS:
        link = CongestedLink(CLEAR_56K, ConstantTraffic(available=available))
        config = ExperimentConfig(link=link)
        conventional = run_conventional_experiment(FILE_SIZE, config)
        _, shadow = run_shadow_experiment(FILE_SIZE, PERCENT, config)
        results[f"{int(available * 100)}% available"] = (
            conventional.seconds,
            shadow.seconds,
        )
    bursty = CongestedLink(CLEAR_56K, BurstyTraffic(seed=1988))
    config = ExperimentConfig(link=bursty)
    conventional = run_conventional_experiment(FILE_SIZE, config)
    _, shadow = run_shadow_experiment(FILE_SIZE, PERCENT, config)
    results["bursty trace"] = (conventional.seconds, shadow.seconds)
    return results


def test_congestion_sweep(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        [
            label,
            f"{conventional:.1f}s",
            f"{shadow:.1f}s",
            f"{conventional / shadow:.1f}x",
        ]
        for label, (conventional, shadow) in results.items()
    ]
    publish(
        "ablation_a5_congestion",
        format_table(
            ["congestion", "conventional", "shadow", "speedup"], rows
        ),
    )
    labels = [f"{int(a * 100)}% available" for a in AVAILABLE_FRACTIONS]
    # Conventional time explodes with congestion...
    conventional_times = [results[label][0] for label in labels]
    assert conventional_times == sorted(conventional_times)
    # ...and the absolute seconds saved per cycle grow with congestion.
    savings = [results[label][0] - results[label][1] for label in labels]
    assert savings == sorted(savings)
    # Speedup stays solid even on the *uncongested* fast line ("utility
    # not limited to low-speed lines").
    clear_conventional, clear_shadow = results["100% available"]
    assert clear_conventional / clear_shadow > 2.0
    # And under the bursty trace.
    bursty_conventional, bursty_shadow = results["bursty trace"]
    assert bursty_conventional / bursty_shadow > 3.0
