"""Adversarial-input tests: the server must never crash on bad bytes.

Every payload handed to :meth:`ShadowServer.handle` — random garbage,
truncated real messages, type-confused values — must produce an encoded
``ErrorReply`` (or a valid reply), never an exception, and must leave the
server able to serve the next well-formed request.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import codec
from repro.core.protocol import (
    ErrorReply,
    Hello,
    Message,
    Notify,
    Submit,
    Update,
    decode_message,
)
from repro.core.server import ShadowServer


@pytest.fixture
def server():
    server = ShadowServer()
    # Register a client so stateful messages get past the hello check.
    server.handle(Hello(client_id="fuzz@ws").to_wire())
    return server


def is_valid_reply(payload: bytes) -> bool:
    reply = decode_message(payload)
    return isinstance(reply, Message)


@settings(max_examples=300, deadline=None)
@given(payload=st.binary(max_size=400))
def test_random_bytes_never_crash(payload):
    server = ShadowServer()
    reply = server.handle(payload)
    assert is_valid_reply(reply)


@settings(max_examples=150, deadline=None)
@given(cut=st.integers(min_value=0, max_value=200))
def test_truncated_real_messages(cut):
    server = ShadowServer()
    wire = Notify(
        client_id="fuzz@ws", key="d/h:/f", version=3, size=10, checksum="ab"
    ).to_wire()
    reply = server.handle(wire[: min(cut, len(wire) - 1)])
    assert is_valid_reply(reply)


json_like = st.recursive(
    st.none() | st.booleans() | st.integers() | st.binary(max_size=30)
    | st.text(max_size=30),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)


@settings(max_examples=200, deadline=None)
@given(
    type_tag=st.sampled_from(
        ["hello", "notify", "update", "submit", "status", "fetch", "bye"]
    ),
    fields=st.dictionaries(st.text(max_size=12), json_like, max_size=5),
)
def test_type_confused_fields_never_crash(type_tag, fields):
    server = ShadowServer()
    payload = dict(fields)
    payload["_t"] = type_tag
    reply = server.handle(codec.encode(payload))
    assert is_valid_reply(reply)


class TestServerSurvivesGarbage:
    def test_still_serves_after_garbage(self, server):
        for junk in (b"", b"\x00" * 50, b"dGARBAGE", codec.encode([1, 2])):
            server.handle(junk)
        reply = decode_message(
            server.handle(
                Notify(
                    client_id="fuzz@ws",
                    key="d/h:/f",
                    version=1,
                    size=5,
                    checksum="x",
                ).to_wire()
            )
        )
        assert not isinstance(reply, ErrorReply)

    def test_delta_for_uncached_file_is_clean_error(self, server):
        reply = decode_message(
            server.handle(
                Update(
                    client_id="fuzz@ws",
                    key="d/h:/never-seen",
                    version=2,
                    base_version=1,
                    is_delta=True,
                    payload=b"not even a delta",
                ).to_wire()
            )
        )
        assert isinstance(reply, ErrorReply)
        assert reply.code == "need-full"

    def test_submit_with_bogus_version_is_clean_error(self, server):
        reply = decode_message(
            server.handle(
                Submit(
                    client_id="fuzz@ws",
                    script="echo hi",
                    files=(("d/h:/f", 0),),
                ).to_wire()
            )
        )
        assert isinstance(reply, ErrorReply)

    def test_submit_with_empty_script_is_clean_error(self, server):
        reply = decode_message(
            server.handle(
                Submit(client_id="fuzz@ws", script="   \n", files=()).to_wire()
            )
        )
        assert isinstance(reply, ErrorReply)

    def test_corrupt_compressed_update_is_clean_error(self, server):
        reply = decode_message(
            server.handle(
                Update(
                    client_id="fuzz@ws",
                    key="d/h:/f",
                    version=1,
                    compressed=True,
                    payload=b"NOT A COMPRESSION FRAME",
                ).to_wire()
            )
        )
        assert isinstance(reply, ErrorReply)
