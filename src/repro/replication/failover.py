"""Client-side failover: one channel over a dial list of endpoints.

A :class:`FailoverChannel` looks like any other
:class:`~repro.transport.base.RequestChannel`, but behind it sits an
ordered list of endpoints — live channels, or zero-argument factories
dialled lazily (so a standby that is down at client start costs
nothing until needed).

On a transport fault, *or* a reply that says the endpoint cannot serve
us (``standby-mode``: not promoted yet; ``stale-epoch``: a fenced old
primary), the channel rotates to the next endpoint and raises a
:class:`~repro.errors.TransportError`.  The resilience layer above
retries the SAME request id on the new endpoint, and the promoted
standby's replicated reply cache answers an already-acknowledged
request verbatim — failover preserves exactly-once without any new
client-side protocol.

One rotation per delivery keeps the retry budget and backoff with the
:class:`~repro.resilience.session.ResilientSession` that owns them,
instead of burning all endpoints inside a single opaque call.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from repro.core.protocol import ErrorReply, decode_message
from repro.errors import (
    ShadowError,
    TransportClosedError,
    TransportError,
)
from repro.transport.base import RequestChannel

#: An endpoint: a ready channel, or a factory that dials one on demand.
Endpoint = Union[RequestChannel, Callable[[], RequestChannel]]

#: Reply codes that mean "this endpoint will never serve this client
#: until the topology changes" — rotate instead of retrying in place.
REFUSAL_CODES = ("standby-mode", "stale-epoch")


class FailoverChannel(RequestChannel):
    """A request channel that fails over across a dial list."""

    @classmethod
    def from_spec(
        cls, spec: Union[str, "object"], timeout: float = 30.0
    ) -> "FailoverChannel":
        """Build from a dial spec (string or parsed
        :class:`~repro.transport.dialspec.DialSpec`).

        The one string grammar shared with ``repro.api`` and the CLI;
        a single endpoint becomes a one-entry dial list (no rotation
        target, but the same refusal handling).  Endpoints dial lazily:
        a downed standby costs nothing until rotation reaches it.
        """
        from repro.transport.dialspec import DialSpec
        from repro.transport.tcp import TcpChannel

        parsed = DialSpec.of(spec)
        if parsed.kind == "fleet":
            raise TransportError(
                f"{parsed} names a shard fleet; a failover channel "
                f"rotates a dial list — use FleetChannel (or "
                f"DialSpec.connect) for fleets"
            )
        return cls(
            [
                TcpChannel(host, port, timeout=timeout, lazy=True)
                for host, port in parsed.endpoints
            ]
        )

    def __init__(self, endpoints: Sequence[Endpoint]) -> None:
        super().__init__()
        endpoints = list(endpoints)
        if not endpoints:
            raise TransportError("a failover channel needs >= 1 endpoint")
        self._endpoints = endpoints
        #: Channels realised from factory entries, dropped on rotation
        #: so a later rotation back re-dials fresh.
        self._realized: List[Optional[RequestChannel]] = [None] * len(
            endpoints
        )
        self.active = 0
        self.failovers = 0
        self.last_rotation = ""

    # ------------------------------------------------------------------
    # endpoint management
    # ------------------------------------------------------------------
    def _current(self) -> RequestChannel:
        entry = self._endpoints[self.active]
        if isinstance(entry, RequestChannel):
            return entry
        channel = self._realized[self.active]
        if channel is None or channel.closed:
            try:
                channel = entry()
            except (TransportError, OSError) as exc:
                raise TransportError(
                    f"endpoint {self.active} failed to dial: {exc}"
                ) from exc
            self._realized[self.active] = channel
        return channel

    def rotate(self, reason: str) -> int:
        """Advance to the next endpoint; returns the new index.

        A realised (factory-dialled) channel for the endpoint we are
        leaving is closed and dropped — if we ever rotate back, the
        re-dial starts on a clean connection.  Direct channel entries
        are left untouched: the caller owns their lifecycle and a
        revived endpoint (a restarted primary) must stay reachable.
        """
        realized = self._realized[self.active]
        if realized is not None:
            try:
                realized.close()
            except (TransportError, OSError):
                pass
            self._realized[self.active] = None
        self.active = (self.active + 1) % len(self._endpoints)
        self.failovers += 1
        self.last_rotation = reason
        return self.active

    def _refusal(self, raw: bytes) -> str:
        """The refusal code of a rotate-worthy reply, or ''.

        Substring pre-check first — decoding every reply would tax the
        hot path; the codes cannot appear in a well-formed non-error
        reply without also appearing literally in its bytes.
        """
        if (
            b"stale-epoch" not in raw
            and b"standby-mode" not in raw
        ):
            return ""
        try:
            message = decode_message(raw)
        except ShadowError:
            return ""
        if isinstance(message, ErrorReply) and message.code in REFUSAL_CODES:
            return message.code
        return ""

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def _deliver(self, payload: bytes) -> bytes:
        try:
            channel = self._current()
            reply = channel.request(payload)
        except TransportClosedError as exc:
            # The *inner* channel died; the failover channel itself is
            # still usable — surface a retryable fault, not a closure.
            self.rotate(f"endpoint closed: {exc}")
            raise TransportError(str(exc)) from exc
        except TransportError as exc:
            self.rotate(f"endpoint fault: {exc}")
            raise
        refusal = self._refusal(reply)
        if refusal:
            self.rotate(f"endpoint refused: {refusal}")
            raise TransportError(
                f"endpoint refused with {refusal}; failing over"
            )
        return reply

    def _deliver_many(
        self, payloads: Sequence[bytes]
    ) -> List[Optional[bytes]]:
        """Pipeline through the active endpoint.

        A whole-batch transport fault, or any refused reply, rotates and
        raises — the resilience layer re-ships the batch (same request
        ids) on the next endpoint and the reply cache keeps effects
        exactly-once.  Per-item ``None`` slots pass through untouched.
        """
        try:
            channel = self._current()
            replies = channel.request_many(payloads)
        except TransportClosedError as exc:
            self.rotate(f"endpoint closed: {exc}")
            raise TransportError(str(exc)) from exc
        except TransportError as exc:
            self.rotate(f"endpoint fault: {exc}")
            raise
        for raw in replies:
            if raw is None:
                continue
            refusal = self._refusal(raw)
            if refusal:
                self.rotate(f"endpoint refused: {refusal}")
                raise TransportError(
                    f"endpoint refused with {refusal}; failing over"
                )
        return replies

    def close(self) -> None:
        super().close()
        for index, channel in enumerate(self._realized):
            if channel is not None:
                try:
                    channel.close()
                except (TransportError, OSError):
                    pass
                self._realized[index] = None
