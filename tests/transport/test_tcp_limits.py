"""Tests for connection-thread reaping and the max-connections cap."""

import socket
import time

import pytest

from repro.errors import TransportClosedError, TransportError
from repro.transport.framing import FrameDecoder
from repro.transport.tcp import (
    SERVER_BUSY_FRAME,
    TcpChannel,
    TcpChannelServer,
    _recv_frame,
)


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestThreadReaping:
    def test_finished_threads_are_reaped(self):
        server = TcpChannelServer(lambda payload: payload)
        try:
            for _ in range(5):
                channel = TcpChannel("127.0.0.1", server.port)
                assert channel.request(b"ping") == b"ping"
                channel.close()
            assert _wait_until(lambda: server.live_connections == 0)
            # A new connection triggers the reap of the dead threads.
            channel = TcpChannel("127.0.0.1", server.port)
            try:
                assert channel.request(b"ping") == b"ping"
                assert _wait_until(lambda: len(server._threads) <= 1)
            finally:
                channel.close()
            assert server.accepted_connections == 6
            assert server.refused_connections == 0
        finally:
            server.close()


class TestMaxConnections:
    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            TcpChannelServer(lambda p: p, max_connections=0)

    def test_surplus_connection_refused_with_busy_frame(self):
        server = TcpChannelServer(lambda p: p, max_connections=1)
        try:
            first = TcpChannel("127.0.0.1", server.port)
            try:
                assert first.request(b"one") == b"one"
                # The refusal is a clean framed notice pushed at accept
                # time, then close — readable without sending anything.
                surplus = socket.create_connection(
                    ("127.0.0.1", server.port), timeout=5.0
                )
                try:
                    surplus.settimeout(5.0)
                    frame = _recv_frame(surplus, FrameDecoder())
                    assert frame == SERVER_BUSY_FRAME
                finally:
                    surplus.close()
                assert _wait_until(
                    lambda: server.refused_connections == 1
                )
                # The admitted connection is unaffected.
                assert first.request(b"still-here") == b"still-here"
            finally:
                first.close()
        finally:
            server.close()

    def test_slot_freed_after_disconnect(self):
        server = TcpChannelServer(lambda p: p, max_connections=1)
        try:
            first = TcpChannel("127.0.0.1", server.port)
            assert first.request(b"a") == b"a"
            first.close()
            assert _wait_until(lambda: server.live_connections == 0)

            def admitted():
                channel = TcpChannel("127.0.0.1", server.port)
                try:
                    return channel.request(b"b") == b"b"
                except (TransportError, TransportClosedError):
                    return False
                finally:
                    channel.close()

            # The dead thread is reaped on the accept, freeing the slot
            # (retry in case the reap races the connection teardown).
            assert _wait_until(admitted)
        finally:
            server.close()
