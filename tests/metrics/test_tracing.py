"""Tests for per-request structured tracing through the server layers."""

import threading

from repro.core.protocol import Envelope, Hello, Notify, Submit, decode_message
from repro.core.server import ShadowServer
from repro.metrics.report import format_traces
from repro.metrics.tracing import (
    RequestTrace,
    TraceLog,
    active_trace,
    set_active_trace,
    traced_phase,
)


class TestRequestTrace:
    def test_phases_accumulate_in_order(self):
        trace = RequestTrace(request_id="r1", kind="test")
        with trace.phase("first"):
            pass
        trace.mark("second", 0.5)
        assert [name for name, _ in trace.phases] == ["first", "second"]
        assert trace.phase_seconds("second") == 0.5

    def test_finish_stamps_total(self):
        trace = RequestTrace()
        trace.finish()
        assert trace.total_seconds >= 0.0
        assert trace.as_dict()["outcome"] == "ok"


class TestTraceLog:
    def test_bounded_retention(self):
        log = TraceLog(capacity=3)
        for index in range(5):
            log.record(RequestTrace(request_id=f"r{index}"))
        kept = [trace.request_id for trace in log.snapshot()]
        assert kept == ["r2", "r3", "r4"]
        assert log.recorded == 5

    def test_zero_capacity_records_nothing(self):
        log = TraceLog(capacity=0)
        log.record(RequestTrace())
        assert len(log) == 0

    def test_summary_aggregates(self):
        log = TraceLog()
        good = RequestTrace(kind="hello")
        good.mark("dispatch", 0.25)
        log.record(good)
        bad = RequestTrace(kind="notify", outcome="error:protocol")
        log.record(bad)
        summary = log.summary()
        assert summary["by_kind"] == {"hello": 1, "notify": 1}
        assert summary["errors"] == 1
        assert summary["phase_seconds"]["dispatch"] == 0.25

    def test_thread_local_active_trace(self):
        trace = RequestTrace()
        set_active_trace(trace)
        try:
            assert active_trace() is trace
            with traced_phase("sub"):
                pass
            assert trace.phase_seconds("sub") >= 0.0
            seen = []
            other = threading.Thread(target=lambda: seen.append(active_trace()))
            other.start()
            other.join()
            assert seen == [None]  # the holder is per-thread
        finally:
            set_active_trace(None)
        with traced_phase("ignored"):
            pass  # no active trace: a clean no-op


class TestServerTracing:
    def test_every_request_leaves_a_trace(self):
        server = ShadowServer()
        server.handle(Hello(client_id="alice@ws", domain="d").to_wire())
        traces = server.traces.snapshot()
        assert len(traces) == 1
        trace = traces[0]
        assert trace.kind == "hello"
        assert trace.client_id == "alice@ws"
        assert trace.outcome == "ok"
        names = [name for name, _ in trace.phases]
        for expected in ("decode", "session-wait", "dispatch", "encode"):
            assert expected in names

    def test_envelope_rid_becomes_request_id(self):
        server = ShadowServer()
        hello = Hello(client_id="alice@ws", domain="d")
        server.handle(Envelope(rid="rid-7", body=hello.to_wire()).to_wire())
        assert server.traces.snapshot()[0].request_id == "rid-7"

    def test_replayed_request_marked(self):
        server = ShadowServer()
        hello = Hello(client_id="alice@ws", domain="d")
        wire = Envelope(rid="rid-1", body=hello.to_wire()).to_wire()
        server.handle(wire)
        server.handle(wire)  # the retry is answered from the reply cache
        outcomes = [trace.outcome for trace in server.traces.snapshot()]
        assert outcomes == ["ok", "replayed"]

    def test_error_outcome_carries_code(self):
        server = ShadowServer()
        server.handle(Notify(client_id="stranger", key="k", version=1).to_wire())
        assert server.traces.snapshot()[0].outcome == "error:protocol"

    def test_job_execution_traced_separately(self):
        server = ShadowServer()
        server.handle(Hello(client_id="alice@ws", domain="d").to_wire())
        server.handle(
            Submit(client_id="alice@ws", script="echo traced").to_wire()
        )
        kinds = [trace.kind for trace in server.traces.snapshot()]
        assert "job" in kinds and "submit" in kinds
        job_trace = next(
            trace for trace in server.traces.snapshot() if trace.kind == "job"
        )
        names = [name for name, _ in job_trace.phases]
        assert "execute" in names

    def test_describe_includes_trace_summary(self):
        server = ShadowServer()
        server.handle(Hello(client_id="alice@ws", domain="d").to_wire())
        description = server.describe()
        assert description["traces"]["recorded"] == 1
        assert description["traces"]["by_kind"] == {"hello": 1}

    def test_format_traces_renders_table(self):
        server = ShadowServer()
        server.handle(Hello(client_id="alice@ws", domain="d").to_wire())
        text = format_traces(server.traces)
        assert "hello" in text and "alice@ws" in text
        assert format_traces(TraceLog()) == "no traces recorded"
