"""Text renderers: format_traces, format_resilience, format_telemetry."""

from __future__ import annotations

from repro.metrics.recorder import ResilienceStats
from repro.metrics.report import (
    format_resilience,
    format_telemetry,
    format_traces,
)
from repro.metrics.tracing import RequestTrace, TraceLog
from repro.telemetry.registry import MetricsRegistry


def make_trace(request_id: str, kind: str = "submit") -> RequestTrace:
    trace = RequestTrace(
        request_id=request_id, client_id="alice@ws", kind=kind
    )
    trace.mark("decode", 0.001)
    trace.mark("dispatch", 0.0042)
    return trace


class TestFormatTraces:
    def test_empty_log(self):
        assert format_traces(TraceLog()) == "no traces recorded"

    def test_renders_phases_and_outcome(self):
        log = TraceLog()
        log.record(make_trace("r-1"))
        text = format_traces(log)
        assert "r-1" in text
        assert "alice@ws" in text
        assert "submit" in text
        assert "decode=1.00ms" in text
        assert "dispatch=4.20ms" in text

    def test_limit_keeps_newest(self):
        log = TraceLog()
        for index in range(30):
            log.record(make_trace(f"r-{index:02d}"))
        text = format_traces(log, limit=5)
        assert "r-29" in text
        assert "r-24" not in text


class TestFormatResilience:
    def test_clean_run_is_quiet(self):
        assert "no faults" in format_resilience(ResilienceStats())

    def test_nonzero_counters_tabulated(self):
        stats = ResilienceStats(retries=3, breaker_opened=1)
        text = format_resilience(stats)
        assert "retries" in text and "3" in text
        assert "breaker_opened" in text
        # Zero counters stay out of the table.
        assert "giveups" not in text


class TestFormatTelemetry:
    def test_empty_registry(self):
        assert (
            format_telemetry(MetricsRegistry().snapshot())
            == "no telemetry recorded"
        )

    def test_all_three_sections(self):
        registry = MetricsRegistry()
        registry.counter("frames_total", {"direction": "in"}).inc(4)
        registry.gauge("queue_depth").set(2)
        registry.histogram("request_seconds").observe(0.2)
        text = format_telemetry(registry.snapshot())
        assert "counters" in text
        assert "frames_total{direction=in}" in text
        assert "gauges" in text and "queue_depth" in text
        assert "histograms" in text and "request_seconds" in text
        assert "p95" in text

    def test_zero_series_elided_unless_asked(self):
        registry = MetricsRegistry()
        registry.counter("quiet_total")
        registry.counter("busy_total").inc()
        assert "quiet_total" not in format_telemetry(registry.snapshot())
        assert "quiet_total" in format_telemetry(
            registry.snapshot(), include_zero=True
        )

    def test_accepts_wire_round_tripped_snapshot(self):
        # Decoding a StatsReply turns lists into tuples; the renderer
        # must not care.
        snapshot = {
            "counters": (
                {"name": "x_total", "labels": {"k": "v"}, "value": 2.0},
            ),
            "gauges": (),
            "histograms": (
                {
                    "name": "h_seconds",
                    "labels": {},
                    "count": 1,
                    "sum": 0.5,
                    "p50": 0.5,
                    "p95": 0.5,
                    "p99": 0.5,
                    "buckets": (("0.5", 1), ("+Inf", 1)),
                },
            ),
        }
        text = format_telemetry(snapshot)
        assert "x_total{k=v}" in text
        assert "h_seconds" in text
