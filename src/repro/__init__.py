"""Shadow Editing: a distributed service for supercomputer access.

A full reproduction of Comer, Griffioen & Yavatkar (Purdue CSD-TR-722,
1987 / ICDCS 1988): a remote-job-entry service that caches submitted
files ("shadow files") at the supercomputer site and ships *differences*
between file versions instead of whole files over slow long-haul links.

Quickstart::

    from repro import SimulatedDeployment, CYPRESS_9600

    deployment = SimulatedDeployment.build(CYPRESS_9600)
    client = deployment.client
    client.write_file("/data/input.dat", b"hello\\nworld\\n")
    job_id = client.submit("wc input.dat", ["/data/input.dat"])
    bundle = client.fetch_output(job_id)
    print(bundle.stdout, deployment.clock.now(), "virtual seconds")

Subpackages:

=====================  ====================================================
``repro.core``         the shadow service: protocol, client, server, editor
``repro.diffing``      Hunt–McIlroy, Myers and Tichy deltas; ed scripts
``repro.versioning``   client-side version chains and pruning
``repro.cache``        best-effort server cache with eviction policies
``repro.naming``       simulated VFS/NFS and global name resolution
``repro.transport``    loopback, simulated-wire and TCP channels
``repro.simnet``       discrete-event simulator, 1987 link/CPU models
``repro.jobs``         batch subsystem: specs, queue, scheduler, executors
``repro.compression``  RLE / LZ77 / Huffman pipelines
``repro.baseline``     conventional batch RJE and remote-login comparators
``repro.workload``     synthetic files, %-modification edits, §8.1 driver
``repro.metrics``      figure/table data structures and reporting
``repro.reverse``      reverse shadow processing experiments (§8.3)
=====================  ====================================================
"""

import warnings

from repro import api
from repro.core.editor import ShadowEditor, scripted_editor
from repro.core.environment import ShadowEnvironment
from repro.core.server import ShadowServer
from repro.core.service import (
    SimulatedDeployment,
    TcpDeployment,
    loopback_pair,
    tcp_pair,
)
from repro.core.workspace import MappingWorkspace, NfsWorkspace
from repro.errors import ShadowError
from repro.simnet.link import ARPANET_56K, CLEAR_56K, CYPRESS_9600, LAN_10M

__version__ = "1.0.0"


def __getattr__(name: str):
    # Legacy alias: ``repro.ShadowClient`` predates the facade.  It now
    # resolves to ``repro.api.ShadowClient`` — the facade delegates any
    # attribute it does not define to the core client, so code written
    # against the old alias keeps working — but the import itself stays
    # deprecated: name the facade (or the core client) explicitly.
    if name == "ShadowClient":
        warnings.warn(
            "importing ShadowClient from 'repro' is deprecated; use "
            "repro.api.ShadowClient (facade) or "
            "repro.core.client.ShadowClient (core)",
            DeprecationWarning,
            stacklevel=2,
        )
        return api.ShadowClient
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "api",
    "ARPANET_56K",
    "CLEAR_56K",
    "CYPRESS_9600",
    "LAN_10M",
    "MappingWorkspace",
    "NfsWorkspace",
    "ShadowClient",
    "ShadowEditor",
    "ShadowEnvironment",
    "ShadowError",
    "ShadowServer",
    "SimulatedDeployment",
    "TcpDeployment",
    "__version__",
    "loopback_pair",
    "scripted_editor",
    "tcp_pair",
]
