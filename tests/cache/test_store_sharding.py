"""Tests for the sharded, thread-safe cache store."""

import sys
import threading
import zlib

import pytest

from repro.cache.store import DEFAULT_SHARDS, CacheStore
from repro.errors import CacheError, CacheMissError


class TestShardSelection:
    def test_default_shard_count(self):
        assert CacheStore().shard_count == DEFAULT_SHARDS

    def test_single_shard_allowed(self):
        store = CacheStore(shards=1)
        store.put("d/f", b"x", 1)
        assert store.get("d/f").content == b"x"

    def test_zero_shards_rejected(self):
        with pytest.raises(CacheError):
            CacheStore(shards=0)

    def test_shard_choice_is_crc_stable(self):
        """Shard selection must not depend on PYTHONHASHSEED."""
        store = CacheStore(shards=4)
        for key in ("a/one", "b/two", "c/three"):
            expected = zlib.crc32(key.encode("utf-8")) % 4
            assert store._shard_for(key) is store._shards[expected]

    def test_keys_spread_over_shards(self):
        store = CacheStore(shards=8)
        for index in range(64):
            store.put(f"d/file-{index}", b"x", 1)
        occupied = sum(1 for shard in store._shards if shard.entries)
        assert occupied >= 4  # crc32 spreads 64 keys over most of 8 shards

    def test_entries_compat_view_is_insertion_ordered(self):
        store = CacheStore(shards=4)
        keys = [f"d/file-{index}" for index in range(12)]
        for key in keys:
            store.put(key, b"x", 1)
        assert list(store._entries) == keys
        store.put(keys[3], b"xx", 2)  # update keeps its slot
        assert list(store._entries) == keys


class TestGlobalByteBudget:
    def test_budget_spans_shards(self):
        store = CacheStore(capacity_bytes=100, shards=4)
        store.put("d/a", b"x" * 40, 1, timestamp=1.0)
        store.put("d/b", b"x" * 40, 1, timestamp=2.0)
        store.put("d/c", b"x" * 40, 1, timestamp=3.0)  # evicts the LRU
        assert store.used_bytes <= 100
        assert store.stats.evictions == 1
        assert "d/a" not in store
        assert store.get("d/c").content == b"x" * 40

    def test_eviction_identical_across_shard_counts(self):
        """Victim choice ranks all entries globally, so any shard count
        evicts the same keys in the same order."""
        def run(shards):
            store = CacheStore(capacity_bytes=1000, shards=shards)
            evicted_before = []
            for index in range(30):
                store.put(f"d/file-{index}", b"x" * 90, 1, timestamp=index)
                evicted_before.append(store.stats.evictions)
            return [f"d/file-{i}" in store for i in range(30)], evicted_before

        assert run(1) == run(4) == run(16)

    def test_concurrent_puts_never_exceed_budget(self):
        store = CacheStore(capacity_bytes=10_000, shards=8)
        errors = []
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            def hammer(worker):
                try:
                    for index in range(50):
                        key = f"d/w{worker}-f{index % 10}"
                        store.put(key, b"x" * 500, index + 1, timestamp=index)
                        assert store.used_bytes <= 10_000
                except Exception as exc:  # noqa: BLE001 - collect for assert
                    errors.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(worker,))
                for worker in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            sys.setswitchinterval(old_interval)
        assert errors == []
        assert store.used_bytes <= 10_000

    def test_concurrent_distinct_keys_all_land(self):
        store = CacheStore(shards=8)
        errors = []

        def writer(worker):
            try:
                for index in range(100):
                    store.put(f"d/w{worker}-f{index}", b"y" * 10, 1)
            except Exception as exc:  # noqa: BLE001 - collect for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(worker,))
            for worker in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(store) == 600
        for worker in range(6):
            assert store.get(f"d/w{worker}-f99").content == b"y" * 10

    def test_concurrent_get_and_invalidate(self):
        store = CacheStore(shards=4)
        for index in range(20):
            store.put(f"d/f{index}", b"z", 1)
        errors = []

        def reader():
            for _ in range(200):
                try:
                    store.get(f"d/f{_ % 20}")
                except CacheMissError:
                    pass  # legal: a concurrent invalidate got there first
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

        def dropper():
            for index in range(20):
                store.invalidate(f"d/f{index}")

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=dropper))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
