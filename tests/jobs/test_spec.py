"""Tests for job command files and job requests."""

import pytest

from repro.errors import JobCommandError
from repro.jobs.spec import JobCommand, JobCommandFile, JobRequest


class TestJobCommandFile:
    def test_parse_single_command(self):
        script = JobCommandFile.parse("wc data.dat")
        assert script.commands == (JobCommand("wc", ("data.dat",)),)

    def test_parse_multiple_lines(self):
        script = JobCommandFile.parse("wc a\nsort a > sorted\n")
        assert len(script) == 2
        assert script.commands[1].arguments == ("a", ">", "sorted")

    def test_comments_and_blanks_skipped(self):
        script = JobCommandFile.parse("# header\n\nwc a\n  # trailing\n")
        assert len(script) == 1

    def test_quoted_arguments(self):
        script = JobCommandFile.parse('grep "two words" file')
        assert script.commands[0].arguments == ("two words", "file")

    def test_empty_script_rejected(self):
        with pytest.raises(JobCommandError):
            JobCommandFile.parse("# only comments\n")

    def test_unbalanced_quote_rejected(self):
        with pytest.raises(JobCommandError):
            JobCommandFile.parse('grep "unterminated file')

    def test_empty_command_tuple_rejected(self):
        with pytest.raises(JobCommandError):
            JobCommandFile(())

    def test_render_roundtrip(self):
        text = "wc a\nsort b > out\n"
        script = JobCommandFile.parse(text)
        assert JobCommandFile.parse(script.render()) == script


class TestJobRequest:
    def test_build_parses_script(self):
        request = JobRequest.build("wc a", data_files=["/data/a"])
        assert request.data_files == ("/data/a",)
        assert len(request.command_file) == 1

    def test_duplicate_data_files_rejected(self):
        with pytest.raises(JobCommandError):
            JobRequest.build("wc a", data_files=["/a", "/a"])

    def test_optional_fields_default_none(self):
        request = JobRequest.build("wc a")
        assert request.output_file is None
        assert request.error_file is None
        assert request.target_host is None
        assert request.deliver_to_host is None

    def test_third_party_delivery_recorded(self):
        request = JobRequest.build("wc a", deliver_to_host="printer-host")
        assert request.deliver_to_host == "printer-host"
