"""Ablation A2: compressing updates (§8.3 future work).

"We also plan to explore data compression techniques to improve the
efficiency of data transfer."

Measures wire bytes and cycle seconds with the LZ77+Huffman pipeline on
versus off, for both first submissions (full files — very compressible
text) and resubmissions (deltas — already dense).
"""

from __future__ import annotations

from functools import lru_cache

from conftest import publish

from repro.metrics.report import format_table
from repro.simnet.link import CYPRESS_9600
from repro.workload.cycles import ExperimentConfig, run_shadow_experiment

FILE_SIZE = 100_000
PERCENT = 5


@lru_cache(maxsize=1)
def run_both():
    plain = ExperimentConfig(link=CYPRESS_9600)
    squeezed = plain.with_environment(compress_updates=True)
    return {
        "plain": run_shadow_experiment(FILE_SIZE, PERCENT, plain),
        "compressed": run_shadow_experiment(FILE_SIZE, PERCENT, squeezed),
    }


def test_compression_ablation(benchmark):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    for mode, (first, resubmission) in results.items():
        rows.append(
            [
                mode,
                f"{first.seconds:.1f}s",
                str(first.uplink_payload_bytes),
                f"{resubmission.seconds:.1f}s",
                str(resubmission.uplink_payload_bytes),
            ]
        )
    publish(
        "ablation_a2_compression",
        format_table(
            [
                "mode",
                "first cycle",
                "first uplink B",
                "resubmit cycle",
                "resubmit uplink B",
            ],
            rows,
        ),
    )
    plain_first, plain_again = results["plain"]
    squeezed_first, squeezed_again = results["compressed"]
    # Synthetic text compresses hard: the full transfer shrinks a lot.
    assert (
        squeezed_first.uplink_payload_bytes
        < plain_first.uplink_payload_bytes * 0.7
    )
    assert squeezed_first.seconds < plain_first.seconds
    # Deltas also shrink (they carry text lines), never grow.
    assert (
        squeezed_again.uplink_payload_bytes
        <= plain_again.uplink_payload_bytes
    )
    # Correctness guard: both modes produced working cycles.
    assert plain_again.seconds > 0 and squeezed_again.seconds > 0
