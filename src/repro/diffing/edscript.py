"""Classic ``ed`` script generation and interpretation.

The prototype computed "changes in a form suitable for an editor (like ed
in Unix) to apply the changes to a previous version" (§7) — i.e. the output
of ``diff -e``.  This module renders a :class:`LineDelta` as a genuine ed
script and interprets such scripts, so deltas interoperate with the
historical format.  The binary encoding in :mod:`repro.diffing.model`
remains the wire format (it is robust and slightly smaller); the ed form is
for interop, debugging and the historical record.

Faithfully to ``diff -e``, commands are emitted in *descending* line order
so sequential application by ed never invalidates later line numbers.

Known historical limitation, shared with real ``diff -e``: a text line
consisting of a single ``.`` terminates ed's input mode and cannot be
represented.  Encoding such content raises :class:`DiffError`; the binary
encoding has no such restriction.
"""

from __future__ import annotations

import re
from typing import List, Sequence, Tuple

from repro.diffing.model import (
    AppendOp,
    ChangeOp,
    DeleteOp,
    LineDelta,
    LineOp,
    checksum,
    join_lines,
    split_lines,
)
from repro.errors import DiffError, PatchConflictError

_COMMAND_RE = re.compile(rb"^(\d+)(?:,(\d+))?([adc])$")
_TERMINATOR = b"."


def _check_encodable(lines: Sequence[bytes]) -> None:
    for line in lines:
        if line == _TERMINATOR:
            raise DiffError(
                "a line consisting of '.' cannot be carried in an ed script "
                "(historical diff -e limitation); use the binary delta form"
            )
        if b"\n" in line:
            raise DiffError("logical lines must not contain newlines")


def to_ed_script(delta: LineDelta) -> bytes:
    """Render ``delta`` as the text of ``diff -e old new``."""
    commands: List[bytes] = []
    for op in reversed(delta.ops):
        if isinstance(op, DeleteOp):
            if op.start == op.end:
                commands.append(b"%dd" % op.start)
            else:
                commands.append(b"%d,%dd" % (op.start, op.end))
        elif isinstance(op, AppendOp):
            _check_encodable(op.lines)
            commands.append(b"%da" % op.after)
            commands.extend(op.lines)
            commands.append(_TERMINATOR)
        else:
            _check_encodable(op.lines)
            if op.start == op.end:
                commands.append(b"%dc" % op.start)
            else:
                commands.append(b"%d,%dc" % (op.start, op.end))
            commands.extend(op.lines)
            commands.append(_TERMINATOR)
    if not commands:
        return b""
    return b"\n".join(commands) + b"\n"


def parse_ed_script(script: bytes) -> List[LineOp]:
    """Parse ed-script text into operations (ascending line order)."""
    ops: List[LineOp] = []
    lines = script.split(b"\n")
    index = 0
    # A trailing newline leaves one empty final segment; tolerate it.
    while index < len(lines):
        raw = lines[index]
        index += 1
        if raw == b"" and index == len(lines):
            break
        match = _COMMAND_RE.match(raw)
        if not match:
            raise DiffError(f"malformed ed command {raw!r}")
        start = int(match.group(1))
        end = int(match.group(2)) if match.group(2) else start
        verb = match.group(3)
        if verb == b"d":
            ops.append(DeleteOp(start, end))
            continue
        body: List[bytes] = []
        while True:
            if index >= len(lines):
                raise DiffError("ed input mode not terminated by '.'")
            text = lines[index]
            index += 1
            if text == _TERMINATOR:
                break
            body.append(text)
        if not body:
            raise DiffError(f"ed command {raw!r} supplied no text")
        if verb == b"a":
            ops.append(AppendOp(start, tuple(body)))
        else:
            ops.append(ChangeOp(start, end, tuple(body)))
    ops.sort(key=lambda op: op.after if isinstance(op, AppendOp) else op.start)
    return ops


def apply_ed_script(base: bytes, script: bytes) -> bytes:
    """Apply ed-script text to ``base``, like piping it through ``ed``.

    Unlike :meth:`LineDelta.apply` there are no checksums to verify — this
    mirrors the blind trust of the historical pipeline — but malformed
    scripts and out-of-range addresses still raise.
    """
    ops = parse_ed_script(script)
    line_count = len(split_lines(base))
    for op in ops:
        end = op.after if isinstance(op, AppendOp) else op.end
        if end > line_count:
            raise PatchConflictError(
                f"ed command addresses line {end} of {line_count}-line file"
            )
    delta = LineDelta(
        ops,
        base_checksum=checksum(base),
        target_checksum="",
        algorithm="ed-script",
    )
    # Bypass target verification: compute then return.
    lines = split_lines(base)
    for op in reversed(delta.ops):
        if isinstance(op, AppendOp):
            lines[op.after : op.after] = list(op.lines)
        elif isinstance(op, DeleteOp):
            del lines[op.start - 1 : op.end]
        else:
            lines[op.start - 1 : op.end] = list(op.lines)
    return join_lines(lines)


def ed_script_roundtrip(delta: LineDelta) -> Tuple[bytes, List[LineOp]]:
    """Encode then re-parse a delta; useful for interop testing."""
    script = to_ed_script(delta)
    return script, parse_ed_script(script)
