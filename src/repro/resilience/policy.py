"""Retry policies: exponential backoff with seeded jitter and deadlines.

The service is *best-effort* (§5.1): a dropped request or a lost reply
must degrade to an extra transfer, never to corruption or a stuck user.
The policy here decides *how hard* to try before giving up.  Two
properties matter for this repository:

* **Determinism** — jitter comes from a seeded :class:`random.Random`,
  and wait time is *charged* to a simulated clock instead of slept when
  the session runs under one, so benchmarks with faults reproduce
  byte- and second-exact.
* **Boundedness** — both an attempt cap and an optional per-request
  deadline, so a dead link turns into a clean
  :class:`~repro.errors.RetryExhaustedError` /
  :class:`~repro.errors.DeadlineExceededError` the caller (or circuit
  breaker) can act on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import ShadowError


@dataclass(frozen=True)
class RetryPolicy:
    """How a :class:`~repro.resilience.session.ResilientSession` retries.

    ``delay(attempt)`` grows as ``base_delay * multiplier**(attempt-1)``,
    capped at ``max_delay``, then jittered by ``±jitter`` (a fraction).
    ``deadline`` bounds the whole request — attempts plus waits — in
    (possibly simulated) seconds; ``None`` means attempts alone bound it.
    """

    max_attempts: int = 6
    base_delay: float = 0.2
    multiplier: float = 2.0
    max_delay: float = 10.0
    jitter: float = 0.25
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ShadowError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ShadowError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ShadowError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ShadowError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline is not None and self.deadline <= 0:
            raise ShadowError(f"deadline must be positive, got {self.deadline}")

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Seconds to wait after failed attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ShadowError(f"attempt numbers are 1-based, got {attempt}")
        raw = min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )
        if self.jitter and raw > 0:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A single attempt, no waiting — faults surface immediately."""
        return cls(max_attempts=1, base_delay=0.0, jitter=0.0)

    @classmethod
    def aggressive(cls) -> "RetryPolicy":
        """Many fast attempts, for chaos tests over a simulated clock."""
        return cls(max_attempts=10, base_delay=0.1, max_delay=5.0)
