"""Background-traffic / congestion models.

The paper attributes ARPANET's poor effective throughput to congestion from
other users (citing Nagle, RFC 896) and argues that reducing traffic volume
is itself a design goal.  These models let experiments vary a link's
congestion level over virtual time — deterministically, so benchmark runs
are reproducible.

A model maps a virtual timestamp to a utilization in ``(0, 1]``; the
:class:`CongestedLink` adaptor applies it to a base :class:`Link`.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.simnet.link import Link


class TrafficModel(ABC):
    """Maps virtual time to the fraction of link capacity available."""

    @abstractmethod
    def utilization_at(self, timestamp: float) -> float:
        """Available capacity fraction in ``(0, 1]`` at ``timestamp``."""

    def _check(self, value: float) -> float:
        if not 0 < value <= 1:
            raise SimulationError(f"utilization {value} out of (0, 1]")
        return value


@dataclass
class ConstantTraffic(TrafficModel):
    """A fixed congestion level (the default for the paper's figures)."""

    available: float = 1.0

    def utilization_at(self, timestamp: float) -> float:  # noqa: ARG002
        return self._check(self.available)


@dataclass
class DiurnalTraffic(TrafficModel):
    """Sinusoidal load: busy mid-day, quiet at night.

    ``peak_load`` is the fraction of capacity consumed by other users at the
    busiest moment; ``period_seconds`` defaults to 24 h of virtual time.
    """

    peak_load: float = 0.8
    base_load: float = 0.1
    period_seconds: float = 86_400.0
    phase_seconds: float = 0.0

    def utilization_at(self, timestamp: float) -> float:
        if not 0 <= self.base_load <= self.peak_load < 1:
            raise SimulationError(
                f"need 0 <= base {self.base_load} <= peak {self.peak_load} < 1"
            )
        angle = 2 * math.pi * (timestamp + self.phase_seconds) / self.period_seconds
        # 0 at night, 1 at mid-day.
        day_fraction = 0.5 * (1 - math.cos(angle))
        load = self.base_load + (self.peak_load - self.base_load) * day_fraction
        return self._check(1.0 - load)


@dataclass
class BurstyTraffic(TrafficModel):
    """Seeded random bursts of cross-traffic.

    The timeline is divided into fixed slots; each slot's load is drawn from
    a seeded PRNG, so a given seed always produces the same congestion
    trace.
    """

    seed: int = 1988
    slot_seconds: float = 30.0
    mean_load: float = 0.5
    burst_load: float = 0.9
    burst_probability: float = 0.2

    def utilization_at(self, timestamp: float) -> float:
        if timestamp < 0:
            raise SimulationError(f"negative timestamp {timestamp}")
        slot = int(timestamp // self.slot_seconds)
        rng = random.Random(str((self.seed, slot)))
        if rng.random() < self.burst_probability:
            load = self.burst_load
        else:
            # Jitter around the mean, clamped away from full saturation.
            load = min(0.95, max(0.0, rng.gauss(self.mean_load, 0.1)))
        return self._check(1.0 - load)


class CongestedLink:
    """A :class:`Link` whose capacity varies under a :class:`TrafficModel`.

    Presents the same timing interface as :class:`Link` but takes the
    transfer's start time so the congestion level can be sampled.
    """

    def __init__(self, base: Link, model: TrafficModel) -> None:
        self.base = base
        self.model = model

    def link_at(self, timestamp: float) -> Link:
        """The effective :class:`Link` at ``timestamp``."""
        available = self.model.utilization_at(timestamp)
        return self.base.scaled(utilization=self.base.utilization * available)

    def transfer_seconds(self, payload_bytes: int, timestamp: float = 0.0) -> float:
        return self.link_at(timestamp).transfer_seconds(payload_bytes)

    def wire_bytes(self, payload_bytes: int) -> int:
        return self.base.wire_bytes(payload_bytes)
