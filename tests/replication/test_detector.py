"""Failure detector: liveness from heartbeats, against both clocks."""

import pytest

from repro.errors import ShadowError
from repro.replication.detector import FailureDetector
from repro.simnet.clock import SimulatedClock


def test_timeout_must_exceed_interval():
    with pytest.raises(ShadowError):
        FailureDetector(interval=1.0, timeout=1.0)
    with pytest.raises(ShadowError):
        FailureDetector(interval=2.0, timeout=0.5)


def test_never_beaten_peer_is_not_expired():
    clock = SimulatedClock()
    detector = FailureDetector(interval=1.0, timeout=3.0, now_fn=clock.now)
    assert detector.age() is None
    assert not detector.expired()
    clock.advance(1_000.0)  # silence forever, but it was never alive
    assert not detector.expired()


def test_expiry_on_the_simulated_clock_is_exact():
    clock = SimulatedClock()
    detector = FailureDetector(interval=1.0, timeout=3.0, now_fn=clock.now)
    detector.beat()
    clock.advance(3.0)
    assert detector.age() == pytest.approx(3.0)
    assert not detector.expired()  # exactly at the timeout: still alive
    clock.advance(0.001)
    assert detector.expired()


def test_beats_refresh_the_deadline():
    clock = SimulatedClock()
    detector = FailureDetector(interval=1.0, timeout=3.0, now_fn=clock.now)
    for _ in range(5):
        detector.beat()
        clock.advance(2.5)  # always inside the timeout
        assert not detector.expired()
    assert detector.beats == 5
    clock.advance(1.0)  # 3.5s of silence now
    assert detector.expired()


def test_reset_forgets_the_peer():
    clock = SimulatedClock()
    detector = FailureDetector(interval=1.0, timeout=3.0, now_fn=clock.now)
    detector.beat()
    clock.advance(10.0)
    assert detector.expired()
    detector.reset()
    assert detector.age() is None
    assert not detector.expired()


def test_wall_clock_default_behaves():
    detector = FailureDetector(interval=0.01, timeout=0.02)
    detector.beat()
    assert detector.age() is not None
    assert detector.age() >= 0.0
    assert not detector.expired()
    described = detector.describe()
    assert described["beats"] == 1
    assert described["expired"] is False
