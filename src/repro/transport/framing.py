"""Length-prefixed message framing for stream transports.

The prototype ran its protocol over TCP (§7); TCP delivers a byte stream,
so message boundaries need framing.  Each frame is a 4-byte big-endian
payload length followed by the payload.  :class:`FrameDecoder` is an
incremental decoder for socket readers that receive arbitrary chunks.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from repro.errors import TransportError

HEADER_SIZE = 4

#: Refuse absurd frames rather than allocating gigabytes on a bad header.
MAX_FRAME_SIZE = 64 * 1024 * 1024


def encode_frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a length header."""
    if len(payload) > MAX_FRAME_SIZE:
        raise TransportError(
            f"frame of {len(payload)} bytes exceeds maximum {MAX_FRAME_SIZE}"
        )
    return struct.pack(">I", len(payload)) + payload


def frame_overhead() -> int:
    """Bytes of framing added per message (for wire accounting)."""
    return HEADER_SIZE


class FrameDecoder:
    """Incremental frame decoder: feed chunks, pop complete frames.

    Completed frames queue internally, so a single chunk carrying several
    frames loses none of them even when the reader pops one at a time.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._ready: List[bytes] = []

    def feed(self, chunk: bytes) -> List[bytes]:
        """Absorb ``chunk``; return every frame completed by it."""
        self._buffer.extend(chunk)
        frames: List[bytes] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                self._ready.extend(frames)
                return frames
            frames.append(frame)

    def pop(self) -> Optional[bytes]:
        """Take the next queued complete frame, or None."""
        if self._ready:
            return self._ready.pop(0)
        return None

    def _next_frame(self) -> Optional[bytes]:
        if len(self._buffer) < HEADER_SIZE:
            return None
        (length,) = struct.unpack(">I", bytes(self._buffer[:HEADER_SIZE]))
        if length > MAX_FRAME_SIZE:
            raise TransportError(
                f"incoming frame of {length} bytes exceeds maximum"
            )
        if len(self._buffer) < HEADER_SIZE + length:
            return None
        payload = bytes(self._buffer[HEADER_SIZE : HEADER_SIZE + length])
        del self._buffer[: HEADER_SIZE + length]
        return payload

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)
