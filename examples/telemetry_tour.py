#!/usr/bin/env python3
"""Telemetry tour: one flaky workload, every observability surface.

Runs an edit/submit/fetch workload over a link that drops requests,
loses replies and garbles bytes, then walks the three telemetry
surfaces the runtime exposes:

1. the unified metrics registry, as human tables and as a Prometheus
   text snapshot (``repro.telemetry.export``);
2. the structured event log (job lifecycle, slow requests, breaker and
   eviction events);
3. one **end-to-end trace**: the client-minted trace id that joins the
   client's span, the server's request span, and the asynchronous job
   execution into a single story.

Everything here runs on wall clocks — trace ids are minted because no
simulated clock is involved.  Under the benchmark rig's virtual clock
the same instrumentation stays dark and the figures are byte-identical.

Run:  python examples/telemetry_tour.py
"""

from repro.core.client import ShadowClient
from repro.core.server import ShadowServer
from repro.core.workspace import MappingWorkspace
from repro.metrics.report import format_telemetry
from repro.resilience.policy import RetryPolicy
from repro.resilience.session import ResilienceConfig
from repro.telemetry.export import render_prometheus
from repro.transport.base import LoopbackChannel
from repro.transport.flaky import FlakyChannel
from repro.transport.framing import ChecksummedChannel, checksummed_handler
from repro.workload.edits import modify_percent
from repro.workload.files import make_text_file

PATH = "/home/alice/input.dat"
CYCLES = 12


def run_workload():
    server = ShadowServer()
    flaky = FlakyChannel(
        LoopbackChannel(checksummed_handler(server.handle)),
        drop_rate=0.10,
        reply_loss_rate=0.10,
        garble_rate=0.05,
    )
    client = ShadowClient(
        "alice@workstation",
        MappingWorkspace(),
        resilience=ResilienceConfig(
            retry=RetryPolicy(max_attempts=8, base_delay=0.002, max_delay=0.02)
        ),
    )
    client.connect(server.name, ChecksummedChannel(flaky))

    data = make_text_file(10_000, seed=1988)
    job_id = None
    for cycle in range(CYCLES):
        data = modify_percent(data, 2, seed=1988 + cycle)
        client.write_file(PATH, data)
        job_id = client.submit("wc input.dat", [PATH])
        client.fetch_output(job_id)
    return server, client, job_id


def show_registry(server: ShadowServer) -> None:
    print("=" * 72)
    print("1. the metrics registry (shadow stats would show this over TCP)")
    print("=" * 72)
    print(format_telemetry(server.telemetry.snapshot()))
    print()
    text = render_prometheus(server.telemetry)
    lines = text.splitlines()
    print(f"-- Prometheus text snapshot ({len(lines)} lines), first 15 --")
    print("\n".join(lines[:15]))
    print()


def show_events(server: ShadowServer) -> None:
    print("=" * 72)
    print("2. structured events (JSON-lines ready; memory ring shown)")
    print("=" * 72)
    for event in server.events.snapshot()[-8:]:
        fields = " ".join(
            f"{key}={value}"
            for key, value in event.items()
            if key not in ("seq", "ts")
        )
        print(f"  #{event['seq']:03d} {fields}")
    print()


def show_trace(server: ShadowServer, client: ShadowClient) -> None:
    print("=" * 72)
    print("3. one end-to-end trace (client span -> request span -> job span)")
    print("=" * 72)
    submit_spans = [
        trace for trace in client.traces.snapshot() if trace.kind == "submit"
    ]
    trace_id = submit_spans[-1].trace_id
    print(f"trace id {trace_id} (minted by the client, carried in the")
    print("envelope's tid field, stamped onto the queued job):\n")
    spans = [submit_spans[-1]] + [
        trace
        for trace in server.traces.snapshot()
        if trace.trace_id == trace_id
    ]
    for side, span in zip(("client", "server", "server"), spans):
        phases = " ".join(
            f"{name}={seconds * 1000:.2f}ms" for name, seconds in span.phases
        )
        print(f"  [{side:6s}] kind={span.kind:7s} outcome={span.outcome:12s} {phases}")
    print()


def main() -> None:
    server, client, _ = run_workload()
    show_registry(server)
    show_events(server)
    show_trace(server, client)
    retries = client.resilience_stats.retries
    print(f"(the flaky link forced {retries} retries; every cycle still")
    print(" completed — and every retry is visible above.)")


if __name__ == "__main__":
    main()
