"""Snapshot schema: fleet sections validate against the checked-in schema.

Imports the same subset validator CI's telemetry smoke test uses, so a
snapshot that passes here is exactly what ``shadow stats --json`` emits.
"""

import importlib.util
import json
import pathlib
import sys

import pytest

from repro.core.protocol import StatsQuery, StatsReply
from repro.core.server import ShadowServer
from repro.fleet import (
    FleetChannel,
    FleetMember,
    FleetRouter,
    HashRing,
    ShardDirectory,
    ShardMap,
    ShardRouter,
)
from repro.resilience.session import RawSession
from repro.transport.base import LoopbackChannel
from repro.transport.dialspec import DialSpec

ROOT = pathlib.Path(__file__).resolve().parents[2]
SCHEMA = json.loads(
    (ROOT / "scripts" / "telemetry_schema.json").read_text()
)


def _load_validator():
    spec = importlib.util.spec_from_file_location(
        "telemetry_smoke", ROOT / "scripts" / "telemetry_smoke.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.validate


validate = _load_validator()


def _validated(snapshot):
    # The CLI prints the snapshot as JSON; round-trip so tuples and
    # other codec artefacts normalise exactly as they would on screen.
    normalised = json.loads(json.dumps(snapshot, default=list))
    try:
        validate(normalised, SCHEMA)
    except SystemExit:
        pytest.fail("snapshot failed schema validation")
    return normalised


def _fleet():
    shard_map = ShardMap({"alpha": "loop:a", "beta": "loop:b"})
    servers = {
        name: ShadowServer(name=name) for name in shard_map.names
    }
    for server in servers.values():
        FleetMember(server, shard_map)
    channel = FleetChannel(
        shard_map,
        channels={
            name: LoopbackChannel(server.handle)
            for name, server in servers.items()
        },
    )
    return shard_map, servers, channel


def test_single_member_snapshot_validates():
    shard_map, servers, channel = _fleet()
    reply = RawSession(
        LoopbackChannel(servers["alpha"].handle)
    ).send(StatsQuery(client_id="test@schema"))
    assert isinstance(reply, StatsReply)
    snapshot = _validated(reply.snapshot)
    assert snapshot["fleet"]["component"] == "fleet-member"
    assert snapshot["fleet"]["shard"] == "alpha"


def test_merged_fleet_snapshot_validates():
    shard_map, servers, channel = _fleet()
    reply = RawSession(channel).send(StatsQuery(client_id="test@schema"))
    assert isinstance(reply, StatsReply)
    snapshot = _validated(reply.snapshot)
    assert snapshot["fleet"]["component"] == "fleet"
    assert snapshot["fleet"]["shards"] == 2
    assert snapshot["server"] == "fleet(2 shards)"


def test_plain_server_snapshot_still_validates():
    server = ShadowServer()
    reply = RawSession(LoopbackChannel(server.handle)).send(
        StatsQuery(client_id="test@schema")
    )
    snapshot = _validated(reply.snapshot)
    assert "fleet" not in snapshot


def test_every_fleet_component_describes_itself():
    shard_map, servers, channel = _fleet()
    directory = ShardDirectory(shard_map)
    expectations = {
        "shard-map": shard_map.describe(),
        "fleet-member": servers["alpha"].fleet.describe(),
        "fleet-channel": channel.describe(),
        "shard-directory": directory.describe(),
        "shard-router": ShardRouter(directory).describe(),
        "fleet-router": FleetRouter(shard_map).describe(),
        "dial-spec": DialSpec.parse("fleet:a=h:1,b=h:2").describe(),
    }
    for expected, described in expectations.items():
        assert described["component"] == expected
    assert "component" not in HashRing(["a"]).__dict__  # rings are plain
