"""Fleet self-healing: detect a dead shard, recover it, republish.

PR 9 left recovery to an operator: notice the dead shard, run
``migrate``, bring up a replacement by hand.  The
:class:`FleetSupervisor` closes that loop with **no operator
commands** — the detection → decision → recovery sequence is:

1. **Detect** — every tick, probe each shard's active endpoint (the
   first entry of its dial list) with the ``probe`` verb and feed a
   per-shard PR 6 :class:`~repro.replication.detector.FailureDetector`.
   Silence past the detector timeout marks the shard *suspect*.
2. **Confirm** — a suspect shard gets a dedicated probe round (the
   detector can expire over one dropped packet; a death verdict must
   not).  Only a shard that stays silent through the confirmation
   round is declared dead.
3. **Recover** — in preference order:

   * the rest of the shard's dial list answers *serving* (a
     replication pair already auto-promoted): adopt it;
   * a standby answers: promote it with ``Promote(min_epoch=...)`` at
     a fenced epoch, so the dead primary is refused if it resurrects;
   * no standby: ask the injected ``spawner`` for a replacement (it
     replays the dead peer's journal — shard transfers were journaled
     as cache-puts exactly so this replay needs no new code);
   * none of the above: the key range is *unserved* and the fleet is
     degraded — live shards keep serving their own ranges.
4. **Republish** — build an epoch-bumped :class:`ShardMap` whose dial
   list for the healed shard leads with the live endpoint, push it to
   every member with ``map-publish``, and hand it to registered
   subscribers (in-process routers and clients).

Everything is injectable — clock, channel opener, spawner — so the
same supervisor drives deterministic virtual-time chaos tests and a
live TCP fleet (``shadow supervise``).  Default-off like every layer
above the core: nothing constructs a supervisor unless asked.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.core.protocol import (
    MapPublish,
    Ok,
    Probe,
    ProbeReply,
    Promote,
    decode_message,
)
from repro.errors import FleetError, ShadowError, TransportError
from repro.fleet.ring import ShardMap
from repro.replication.detector import FailureDetector
from repro.telemetry.registry import MetricsRegistry
from repro.transport.base import RequestChannel

#: ``(shard name, endpoint token)`` -> channel.  Endpoint tokens are the
#: comma-separated entries of the shard's dial text — ``host:port`` in a
#: TCP fleet, opaque labels under an injected opener in tests.
EndpointOpener = Callable[[str, str], RequestChannel]

#: ``(shard name, dead endpoint token)`` -> replacement endpoint token,
#: or None when no replacement can be brought up.
Spawner = Callable[[str, str], Optional[str]]


def _default_opener(shard: str, token: str) -> RequestChannel:
    from repro.transport.dialspec import DialSpec

    spec = DialSpec.parse(token)
    if spec.kind != "single":
        raise FleetError(
            f"supervisor endpoints are single 'host:port' tokens, "
            f"got {token!r} for shard {shard!r}"
        )
    return spec.connect(lazy=True)


class _ShardWatch:
    """Per-shard liveness bookkeeping."""

    def __init__(self, detector: FailureDetector) -> None:
        self.detector = detector
        #: Consecutive failed probes; catches shards that were already
        #: dead at supervisor start (a never-beaten detector never
        #: expires — it cannot distinguish "dead" from "not yet up").
        self.fail_streak = 0
        #: Highest server epoch seen in any probe reply, fed into
        #: ``Promote.min_epoch`` so promotion always fences the dead
        #: primary's last known epoch.
        self.epoch = 0
        self.role = "unknown"
        #: Clock reading when the shard first went silent; anchors the
        #: detection-to-heal time the chaos matrix bounds.
        self.suspect_since: Optional[float] = None


class FleetSupervisor:
    """Probes every shard, confirms deaths, and orchestrates recovery."""

    def __init__(
        self,
        shard_map: ShardMap,
        opener: Optional[EndpointOpener] = None,
        spawner: Optional[Spawner] = None,
        now_fn: Optional[Callable[[], float]] = None,
        probe_interval: float = 1.0,
        probe_timeout: float = 3.0,
        confirm_probes: int = 2,
        telemetry: Optional[MetricsRegistry] = None,
        name: str = "fleet-supervisor",
    ) -> None:
        self.name = name
        self._lock = threading.RLock()
        self._map = shard_map
        self._opener = opener if opener is not None else _default_opener
        self._spawner = spawner
        self._now = now_fn if now_fn is not None else time.monotonic
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.confirm_probes = confirm_probes
        self.telemetry = (
            telemetry if telemetry is not None else MetricsRegistry()
        )
        self._channels: Dict[tuple, RequestChannel] = {}
        self._watches: Dict[str, _ShardWatch] = {}
        self._subscribers: List[Callable[[ShardMap], None]] = []
        self._unserved: set = set()
        self._nonce = 0
        self.ticks = 0
        #: Heal ledger: one dict per recovery (shard, action, epoch,
        #: heal_seconds) — what the chaos matrix asserts bounds on.
        self.heals: List[Dict[str, Any]] = []
        self._probes_total = self.telemetry.counter("fleet_probes_total")
        self._deaths_total = self.telemetry.counter(
            "fleet_deaths_confirmed_total"
        )
        self._promotions_total = self.telemetry.counter(
            "fleet_promotions_total"
        )
        self._replacements_total = self.telemetry.counter(
            "fleet_replacements_total"
        )
        self._publishes_total = self.telemetry.counter(
            "fleet_maps_published_total"
        )
        self._heal_seconds = self.telemetry.histogram("fleet_heal_seconds")
        self.telemetry.gauge(
            "fleet_unserved_ranges", callback=lambda: len(self._unserved)
        )
        for shard in shard_map.names:
            self._watches[shard] = self._new_watch()

    def _new_watch(self) -> _ShardWatch:
        return _ShardWatch(
            FailureDetector(
                interval=self.probe_interval,
                timeout=self.probe_timeout,
                now_fn=self._now,
            )
        )

    # ------------------------------------------------------------------
    # the map
    # ------------------------------------------------------------------
    @property
    def shard_map(self) -> ShardMap:
        with self._lock:
            return self._map

    @property
    def unserved(self) -> List[str]:
        with self._lock:
            return sorted(self._unserved)

    def subscribe(self, callback: Callable[[ShardMap], None]) -> None:
        """Register an in-process listener for every published map."""
        with self._lock:
            self._subscribers.append(callback)

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------
    def _tokens(self, shard: str) -> List[str]:
        """The shard's dial list, primary first."""
        return [
            token
            for token in self.shard_map.dial(shard).split(",")
            if token.strip()
        ]

    def _channel(self, shard: str, token: str) -> RequestChannel:
        key = (shard, token)
        channel = self._channels.get(key)
        if channel is None or channel.closed:
            channel = self._opener(shard, token)
            self._channels[key] = channel
        return channel

    def _drop_channel(self, shard: str, token: str) -> None:
        channel = self._channels.pop((shard, token), None)
        if channel is not None:
            try:
                channel.close()
            except (TransportError, OSError):
                pass

    def _probe(self, shard: str, token: str) -> Optional[ProbeReply]:
        """One probe round-trip; None when the endpoint is unreachable."""
        self._nonce += 1
        self._probes_total.inc()
        message = Probe(sender=self.name, nonce=self._nonce)
        try:
            raw = self._channel(shard, token).request(message.to_wire())
            reply = decode_message(raw)
        except (TransportError, OSError):
            self._drop_channel(shard, token)
            return None
        except ShadowError:
            return None
        if not isinstance(reply, ProbeReply):
            return None
        return reply

    def _observe(self, shard: str, reply: ProbeReply) -> None:
        """Fold a live probe reply into the shard's watch + our map."""
        watch = self._watches[shard]
        watch.detector.beat()
        watch.fail_streak = 0
        watch.suspect_since = None
        watch.epoch = max(watch.epoch, reply.epoch)
        watch.role = reply.role
        self._unserved.discard(shard)
        if reply.shard_map:
            self._adopt(reply.shard_map)

    def _adopt(self, payload: Dict[str, Any]) -> None:
        """Adopt a newer map a member advertised (it may have healed
        itself, or another supervisor instance may have published)."""
        try:
            new_map = ShardMap.from_payload(payload)
        except FleetError:
            return
        with self._lock:
            if new_map.epoch <= self._map.epoch:
                return
            self._map = new_map
            for shard in new_map.names:
                if shard not in self._watches:
                    self._watches[shard] = self._new_watch()
            for shard in list(self._watches):
                if shard not in new_map.names:
                    del self._watches[shard]

    # ------------------------------------------------------------------
    # the tick
    # ------------------------------------------------------------------
    def tick(self) -> List[Dict[str, Any]]:
        """One supervision pass; returns the heals it performed."""
        with self._lock:
            self.ticks += 1
            performed: List[Dict[str, Any]] = []
            for shard in list(self.shard_map.names):
                watch = self._watches[shard]
                tokens = self._tokens(shard)
                reply = self._probe(shard, tokens[0])
                if reply is not None and reply.serving:
                    self._observe(shard, reply)
                    continue
                watch.fail_streak += 1
                if watch.suspect_since is None:
                    watch.suspect_since = self._now()
                if not self._declared_dead(watch):
                    continue
                if self._confirm_alive(shard, tokens[0]):
                    continue
                heal = self._heal(shard, tokens, watch)
                if heal is not None:
                    performed.append(heal)
            return performed

    def _declared_dead(self, watch: _ShardWatch) -> bool:
        """Detector expiry, or enough consecutive failures for a shard
        the detector never saw alive (dead before our first probe)."""
        if watch.detector.expired():
            return True
        if watch.detector.age() is None:
            return watch.fail_streak > self.confirm_probes
        return False

    def _confirm_alive(self, shard: str, token: str) -> bool:
        """The confirmation round: a death verdict needs more than one
        silent probe — re-probe before declaring anything."""
        for _ in range(self.confirm_probes):
            reply = self._probe(shard, token)
            if reply is not None and reply.serving:
                self._observe(shard, reply)
                return True
        return False

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _heal(
        self, shard: str, tokens: List[str], watch: _ShardWatch
    ) -> Optional[Dict[str, Any]]:
        self._deaths_total.inc()
        detected_at = (
            watch.suspect_since
            if watch.suspect_since is not None
            else self._now()
        )
        dead = tokens[0]
        for token in tokens[1:]:
            reply = self._probe(shard, token)
            if reply is None:
                continue
            rest = [t for t in tokens if t not in (token, dead)]
            if reply.serving:
                # A replication pair already auto-promoted: nothing to
                # command, just publish the map that points at it.
                return self._finish_heal(
                    shard, [token] + rest, "adopt", detected_at, watch
                )
            min_epoch = max(watch.epoch, reply.epoch)
            if self._promote(shard, token, min_epoch):
                self._promotions_total.inc()
                return self._finish_heal(
                    shard, [token] + rest, "promote", detected_at, watch
                )
        if self._spawner is not None:
            replacement = self._spawner(shard, dead)
            if replacement:
                reply = self._probe(shard, replacement)
                if reply is not None and reply.serving:
                    self._replacements_total.inc()
                    return self._finish_heal(
                        shard, [replacement], "replace", detected_at, watch
                    )
        # Nothing to promote, nothing to spawn: the range is unserved
        # until an operator (or a later tick) brings something back.
        self._unserved.add(shard)
        return None

    def _promote(self, shard: str, token: str, min_epoch: int) -> bool:
        """Promote a standby at a fenced epoch; True on its Ok."""
        try:
            raw = self._channel(shard, token).request(
                Promote(min_epoch=min_epoch).to_wire()
            )
            reply = decode_message(raw)
        except (TransportError, OSError):
            self._drop_channel(shard, token)
            return False
        except ShadowError:
            return False
        return isinstance(reply, Ok)

    def _finish_heal(
        self,
        shard: str,
        tokens: List[str],
        action: str,
        detected_at: float,
        watch: _ShardWatch,
    ) -> Dict[str, Any]:
        with self._lock:
            old_map = self._map
            shards = dict(old_map.shards)
            shards[shard] = ",".join(tokens)
            new_map = old_map.with_shards(shards)
            self._map = new_map
            self._unserved.discard(shard)
        watch.detector.reset()
        watch.fail_streak = 0
        watch.suspect_since = None
        self.publish(new_map)
        healed_at = self._now()
        heal = {
            "shard": shard,
            "action": action,
            "epoch": new_map.epoch,
            "dial": ",".join(tokens),
            "heal_seconds": max(0.0, healed_at - detected_at),
        }
        self._heal_seconds.observe(heal["heal_seconds"])
        self.heals.append(heal)
        return heal

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def publish(self, new_map: ShardMap) -> int:
        """Push a map to every member + subscriber; count member acks.

        Publication is idempotent (members ignore stale epochs), so a
        shard missed here learns the map on its next wrong-shard
        exchange — publication failures degrade convergence latency,
        never correctness."""
        self._publishes_total.inc()
        payload = new_map.to_payload()
        message = MapPublish(sender=self.name, shard_map=payload)
        acked = 0
        for shard in new_map.names:
            for token in self._tokens(shard):
                try:
                    raw = self._channel(shard, token).request(
                        message.to_wire()
                    )
                    reply = decode_message(raw)
                except (TransportError, OSError):
                    self._drop_channel(shard, token)
                    continue
                except ShadowError:
                    continue
                if isinstance(reply, Ok):
                    acked += 1
                break  # one live endpoint per shard is enough
        for callback in list(self._subscribers):
            try:
                callback(new_map)
            except ShadowError:
                pass
        return acked

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            for key in list(self._channels):
                channel = self._channels.pop(key)
                try:
                    channel.close()
                except (TransportError, OSError):
                    pass

    def status(self) -> Dict[str, Any]:
        with self._lock:
            shard_map = self._map
            shards: Dict[str, Any] = {}
            for shard in shard_map.names:
                watch = self._watches[shard]
                shards[shard] = {
                    "dial": shard_map.dial(shard),
                    "role": watch.role,
                    "epoch": watch.epoch,
                    "alive": not self._declared_dead(watch),
                    "unserved": shard in self._unserved,
                    "last_beat_age": watch.detector.age(),
                }
            return {
                "component": "fleet-supervisor",
                "name": self.name,
                "map_epoch": shard_map.epoch,
                "ticks": self.ticks,
                "heals": list(self.heals),
                "unserved": sorted(self._unserved),
                "shards": shards,
            }

    def describe(self) -> Dict[str, Any]:
        return self.status()
