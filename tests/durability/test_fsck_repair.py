"""Crash-safe offline repair: journal_fsck --repair survives a kill.

The repair follows the snapshot discipline — valid prefix to a temp
file, fsync, atomic rename — so a kill at ANY instant mid-repair leaves
the journal path naming either the original damaged file or the fully
healed one.  These tests inject the kill at both windows (before the
temp file is durable, and before the rename lands) and assert recovery
still works from whatever was left behind.
"""

import importlib.util
import os
import pathlib

import pytest

from repro.core.client import ShadowClient
from repro.core.server import ShadowServer
from repro.core.workspace import MappingWorkspace
from repro.durability.journal import read_journal, truncate_tail_atomic
from repro.transport.base import LoopbackChannel
from repro.workload.files import make_text_file

ROOT = pathlib.Path(__file__).resolve().parents[2]


def load_fsck():
    spec = importlib.util.spec_from_file_location(
        "journal_fsck", ROOT / "scripts" / "journal_fsck.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def build_damaged_journal(journal_dir):
    """A real journal with a torn tail appended, like a mid-append kill."""
    server = ShadowServer(journal_dir=str(journal_dir))
    client = ShadowClient("alice@ws", MappingWorkspace())
    client.connect(server.name, LoopbackChannel(server.handle))
    for index in range(3):
        client.write_file(
            f"/data/file{index}.dat", make_text_file(1_500, seed=index)
        )
    server.durability.flush()
    server.durability.abandon()
    path = os.path.join(str(journal_dir), "journal.wal")
    with open(path, "ab") as handle:
        handle.write(b"torn-tail-garbage")
    return path


def test_repair_heals_a_torn_tail(tmp_path):
    fsck = load_fsck()
    path = build_damaged_journal(tmp_path)
    damaged = read_journal(path)
    assert damaged.truncated

    assert fsck.main([str(tmp_path)]) == 1  # damage found, left in place
    assert fsck.main(["--repair", str(tmp_path)]) == 0
    healed = read_journal(path)
    assert not healed.truncated
    assert len(healed.records) == len(damaged.records)
    assert fsck.main([str(tmp_path)]) == 0  # clean now

    # And the healed journal boots a server with every write intact.
    server = ShadowServer(journal_dir=str(tmp_path))
    assert server.durability.last_recovery["replayed_records"] == len(
        healed.records
    )
    server.close()


def test_kill_before_temp_is_durable_leaves_the_original(tmp_path, monkeypatch):
    path = build_damaged_journal(tmp_path)
    damaged_bytes = open(path, "rb").read()
    scan = read_journal(path)

    real_fsync = os.fsync

    def dying_fsync(fd):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr(os, "fsync", dying_fsync)
    with pytest.raises(OSError):
        truncate_tail_atomic(path, scan)
    monkeypatch.setattr(os, "fsync", real_fsync)

    # Nothing moved: the journal is byte-identical, the temp was removed.
    assert open(path, "rb").read() == damaged_bytes
    assert not os.path.exists(path + ".repair-tmp")
    # Recovery still works on the untouched damaged file.
    server = ShadowServer(journal_dir=str(tmp_path))
    assert server.durability.last_recovery["replayed_records"] == len(
        scan.records
    )
    server.close()


def test_kill_before_rename_leaves_the_original_then_repairs(tmp_path, monkeypatch):
    path = build_damaged_journal(tmp_path)
    damaged_bytes = open(path, "rb").read()
    scan = read_journal(path)

    real_replace = os.replace

    def dying_replace(src, dst):
        raise OSError(5, "killed before the rename landed")

    monkeypatch.setattr(os, "replace", dying_replace)
    with pytest.raises(OSError):
        truncate_tail_atomic(path, scan)
    monkeypatch.setattr(os, "replace", real_replace)

    # The journal path still names the original damaged file; a stale
    # temp may linger, exactly as after a real kill.
    assert open(path, "rb").read() == damaged_bytes

    # Re-running the repair (the operator's natural next step) heals it,
    # stale temp and all.
    removed = truncate_tail_atomic(path, scan)
    assert removed == scan.truncated_bytes
    healed = read_journal(path)
    assert not healed.truncated
    assert len(healed.records) == len(scan.records)
    assert not os.path.exists(path + ".repair-tmp")


def test_repair_with_a_stale_temp_from_a_previous_kill(tmp_path):
    path = build_damaged_journal(tmp_path)
    scan = read_journal(path)
    # A previous repair died after writing garbage to the temp file.
    with open(path + ".repair-tmp", "wb") as handle:
        handle.write(b"half-written nonsense from the dead repair")

    removed = truncate_tail_atomic(path, scan)
    assert removed == scan.truncated_bytes
    healed = read_journal(path)
    assert not healed.truncated
    assert len(healed.records) == len(scan.records)
