"""Tests for the §8.1 experiment driver."""

import pytest

from repro.core.service import SimulatedDeployment
from repro.simnet.link import ARPANET_56K, CYPRESS_9600
from repro.workload.cycles import (
    EditSubmitFetchDriver,
    ExperimentConfig,
    figure_data,
    figure_point,
    run_conventional_experiment,
    run_shadow_experiment,
)
from repro.workload.files import make_text_file


@pytest.fixture
def config():
    return ExperimentConfig(link=CYPRESS_9600)


class TestDriver:
    def test_cycle_outcome_fields(self, config):
        deployment = SimulatedDeployment.build(config.link)
        driver = EditSubmitFetchDriver(deployment)
        outcome = driver.run_cycle(make_text_file(5_000, seed=100))
        assert outcome.seconds > 0
        assert outcome.uplink_payload_bytes > 5_000
        assert outcome.downlink_payload_bytes > 0
        assert outcome.job_id

    def test_cycles_counted(self, config):
        deployment = SimulatedDeployment.build(config.link)
        driver = EditSubmitFetchDriver(deployment)
        driver.run_cycle(b"one\n")
        driver.run_cycle(b"two\n")
        assert driver.cycles_run == 2


class TestShadowExperiment:
    def test_resubmission_faster_than_first(self, config):
        first, resubmission = run_shadow_experiment(20_000, 5, config)
        assert resubmission.seconds < first.seconds

    def test_more_modification_costs_more(self, config):
        _, light = run_shadow_experiment(20_000, 1, config)
        _, heavy = run_shadow_experiment(20_000, 40, config)
        assert heavy.seconds > light.seconds

    def test_bigger_files_cost_more(self, config):
        _, small = run_shadow_experiment(10_000, 5, config)
        _, large = run_shadow_experiment(50_000, 5, config)
        assert large.seconds > small.seconds

    def test_deterministic(self, config):
        a = run_shadow_experiment(10_000, 5, config)
        b = run_shadow_experiment(10_000, 5, config)
        assert a[1].seconds == b[1].seconds


class TestConventionalExperiment:
    def test_time_scales_with_size(self, config):
        small = run_conventional_experiment(10_000, config)
        large = run_conventional_experiment(50_000, config)
        assert large.seconds > small.seconds * 3

    def test_conventional_ships_full_file(self, config):
        outcome = run_conventional_experiment(20_000, config)
        assert outcome.uplink_payload_bytes > 20_000


class TestFigureAssembly:
    def test_figure_point_speedup_positive(self, config):
        point = figure_point(10_000, 5, config)
        assert point.speedup > 1.0

    def test_figure_data_structure(self, config):
        figure = figure_data(
            "test figure", [10_000, 20_000], [1, 10], config
        )
        assert set(figure.shadow_series) == {10_000, 20_000}
        assert set(figure.conventional_levels) == {10_000, 20_000}
        assert figure.shadow_series[10_000].xs() == [1, 10]
        speedups = figure.speedups()
        assert (10_000, 1) in speedups

    def test_environment_override_plumbs_through(self):
        config = ExperimentConfig(link=ARPANET_56K).with_environment(
            diff_algorithm="tichy"
        )
        assert config.environment.diff_algorithm == "tichy"
        _, resubmission = run_shadow_experiment(10_000, 5, config)
        assert resubmission.seconds > 0
