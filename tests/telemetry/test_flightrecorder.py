"""Flight recorder: triggers, rate limiting, bundle round trips."""

from __future__ import annotations

import json
import os

from repro.telemetry.events import EventLog
from repro.telemetry.flightrecorder import (
    FlightRecorder,
    load_bundle,
    summarize_bundle,
)
from repro.telemetry.registry import MetricsRegistry


def collect():
    return {
        "server": "test",
        "health": {"status": "ok", "objectives": []},
        "registry": {"counters": [], "gauges": [], "histograms": []},
        "events": [{"kind": "slow_request"}],
        "spans": [],
        "traces": [],
    }


def test_triggers_counted_even_without_dump_dir():
    registry = MetricsRegistry()
    recorder = FlightRecorder(collect, dump_dir=None, telemetry=registry)
    assert recorder.trigger("slow-request", seconds=1.2) is None
    assert recorder.describe()["triggers"] == 1
    assert recorder.describe()["dumps"] == 0
    assert (
        registry.counter(
            "flight_triggers_total", {"trigger": "slow-request"}
        ).value
        == 1
    )


def test_dump_writes_bundle_and_emits_event(tmp_path):
    registry = MetricsRegistry()
    events = EventLog()
    recorder = FlightRecorder(
        collect,
        dump_dir=str(tmp_path),
        telemetry=registry,
        events=events,
    )
    path = recorder.trigger("handler-error", request_id="r-9")
    assert path is not None and os.path.exists(path)
    assert os.path.basename(path).startswith("flight-")
    assert path.endswith("handler-error.json")
    bundle = load_bundle(path)
    assert bundle["trigger"] == "handler-error"
    assert bundle["detail"] == {"request_id": "r-9"}
    assert bundle["server"] == "test"
    assert registry.counter("flight_dumps_total").value == 1
    kinds = [event["kind"] for event in events.snapshot()]
    assert "flight_dump" in kinds
    summary = summarize_bundle(bundle)
    assert "handler-error" in summary
    assert "events" in summary


def test_rate_limit_and_force(tmp_path):
    recorder = FlightRecorder(
        collect, dump_dir=str(tmp_path), min_interval_seconds=3600.0
    )
    first = recorder.trigger("slow-request")
    assert first is not None
    assert recorder.trigger("slow-request") is None  # inside the window
    forced = recorder.trigger("sigterm", force=True)
    assert forced is not None and forced != first
    assert recorder.describe() == {
        "dump_dir": str(tmp_path),
        "min_interval_seconds": 3600.0,
        "triggers": 3,
        "dumps": 2,
    }


def test_unsafe_reason_characters_are_sanitised(tmp_path):
    recorder = FlightRecorder(collect, dump_dir=str(tmp_path))
    path = recorder.trigger("weird reason/$evil")
    assert path is not None
    name = os.path.basename(path)
    assert "/" not in name and "$" not in name and " " not in name
    assert "weird_reason" in name and name.endswith(".json")


def test_collect_failure_still_writes_a_bundle(tmp_path):
    def broken():
        raise RuntimeError("rings unavailable")

    recorder = FlightRecorder(broken, dump_dir=str(tmp_path))
    path = recorder.trigger("crash")
    assert path is not None
    bundle = load_bundle(path)
    assert bundle["collect_error"] is True
    assert bundle["trigger"] == "crash"


def test_dump_failure_is_swallowed(tmp_path):
    missing = tmp_path / "file-not-dir"
    missing.write_text("occupied")
    recorder = FlightRecorder(collect, dump_dir=str(missing))
    assert recorder.trigger("slow-request") is None  # makedirs fails
    assert recorder.describe()["dumps"] == 0
    assert recorder.describe()["triggers"] == 1


def test_bundle_is_valid_json_on_disk(tmp_path):
    recorder = FlightRecorder(collect, dump_dir=str(tmp_path))
    path = recorder.trigger("slow-request")
    with open(path, "r", encoding="utf-8") as handle:
        assert json.load(handle)["server"] == "test"
